// Fuzz target: REST request-line + query-string parsing, plus the built-in
// /metrics and /traces endpoints behind them (the surface every untrusted
// experimenter request crosses first).
//
// Invariants checked on accepted input:
//   - endpoint names respect the documented charset and length limits;
//   - parse_query never yields empty keys, never exceeds kMaxQueryParams,
//     and is idempotent on already-decoded text without '%', '+', '&', '=';
//   - a full backend dispatch returns a Result, never throws or crashes.
#include <string>

#include "controller/rest_backend.hpp"
#include "fuzz_input.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

using blab::controller::RestBackend;

blab::util::Result<std::string> dispatch(const std::string& name,
                                         const std::string& query) {
  // One long-lived backend across all iterations, like a real deployment.
  static blab::sim::Simulator sim;
  static blab::net::Network net{sim, 0x5EED};
  static RestBackend backend{net, "fuzz-ctrl"};
  static bool init = [] {
    backend.register_endpoint("echo", [](const std::string& q) {
      return blab::util::Result<std::string>{"echo:" + q};
    });
    return true;
  }();
  (void)init;
  return backend.call(name, query);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string payload{reinterpret_cast<const char*>(data), size};

  auto request = blab::controller::parse_request_line(payload);
  if (request.ok()) {
    const auto& name = request.value().name;
    FUZZ_ASSERT(!name.empty());
    FUZZ_ASSERT(name.size() <= blab::controller::kMaxEndpointBytes);
    FUZZ_ASSERT(payload.size() <= blab::controller::kMaxRequestBytes);
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.';
      FUZZ_ASSERT(ok);
    }
    (void)dispatch(request.value().name, request.value().query);
  }

  // Query parsing must be total on arbitrary bytes, with the documented
  // shape guarantees.
  const auto params = blab::controller::parse_query(payload);
  FUZZ_ASSERT(params.size() <= blab::controller::kMaxQueryParams);
  for (const auto& [key, value] : params) {
    FUZZ_ASSERT(!key.empty());
    // Decoding is a single pass: text with no metacharacters re-parses to
    // itself ("a%2520b" decodes to "a%20b", never to "a b").
    if (key.find_first_of("%+&=") == std::string::npos) {
      const auto again = blab::controller::parse_query(key);
      FUZZ_ASSERT(again.size() == 1 && again.begin()->first == key);
    }
    (void)value;
  }
  return 0;
}
