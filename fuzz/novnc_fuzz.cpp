// Fuzz target: the RFC 6455 websocket frame codec behind the noVNC gateway —
// the only parser in the platform that consumes raw bytes straight from an
// untrusted viewer's browser.
//
// Modes (first input byte):
//   0: arbitrary bytes through decode_ws_frame and decode_client_frames;
//      accepted frames must re-encode to exactly the consumed prefix;
//   1: structured frame round-trip — legal frames built from carved fields
//      must encode, decode back field-for-field, and pass the client-packet
//      parser iff masked;
//   2: structured client packets — concatenated masked text/ping frames must
//      parse, and a single unmasked byte (client frames MUST be masked) or
//      trailing garbage must fail the whole packet.
#include <string>
#include <vector>

#include "fuzz_input.hpp"
#include "mirror/ws_frame.hpp"

namespace {

using blab::mirror::WsFrame;
using blab::mirror::WsOpcode;

WsOpcode carve_opcode(std::uint8_t raw) {
  static constexpr WsOpcode kOps[] = {WsOpcode::kContinuation, WsOpcode::kText,
                                      WsOpcode::kBinary,       WsOpcode::kClose,
                                      WsOpcode::kPing,         WsOpcode::kPong};
  return kOps[raw % 6];
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  blab::fuzz::FuzzInput in{data, size};
  switch (in.u8() % 3) {
    case 0: {
      const std::string bytes{in.rest()};
      std::size_t consumed = 0;
      const auto frame = blab::mirror::decode_ws_frame(bytes, &consumed);
      if (frame.ok()) {
        FUZZ_ASSERT(consumed > 0 && consumed <= bytes.size());
        // Minimal-length encoding: accepted bytes re-encode identically.
        FUZZ_ASSERT(blab::mirror::encode_ws_frame(frame.value()) ==
                    bytes.substr(0, consumed));
      }
      (void)blab::mirror::decode_client_frames(bytes);
      break;
    }
    case 1: {
      WsFrame frame;
      frame.opcode = carve_opcode(in.u8());
      const bool control = blab::mirror::is_control_opcode(frame.opcode);
      frame.fin = control ? true : (in.u8() & 1) != 0;
      frame.masked = (in.u8() & 1) != 0;
      for (auto& b : frame.mask_key) b = in.u8();
      // Control frames cap at 125 bytes; text frames must be UTF-8, so keep
      // the carved payload in the ASCII range for that opcode.
      const std::size_t max_payload = control ? 125 : 4096;
      frame.payload = in.bytes(max_payload);
      if (frame.opcode == WsOpcode::kText) {
        for (auto& c : frame.payload) c = static_cast<char>(c & 0x7F);
      }
      const std::string wire = blab::mirror::encode_ws_frame(frame);
      std::size_t consumed = 0;
      const auto back = blab::mirror::decode_ws_frame(wire, &consumed);
      FUZZ_ASSERT(back.ok());
      FUZZ_ASSERT(consumed == wire.size());
      FUZZ_ASSERT(back.value().fin == frame.fin);
      FUZZ_ASSERT(back.value().opcode == frame.opcode);
      FUZZ_ASSERT(back.value().masked == frame.masked);
      FUZZ_ASSERT(back.value().payload == frame.payload);
      const auto packet = blab::mirror::decode_client_frames(wire);
      FUZZ_ASSERT(packet.ok() == frame.masked);
      break;
    }
    case 2: {
      const std::size_t frames = 1 + in.u8() % 4;
      std::string packet;
      for (std::size_t i = 0; i < frames; ++i) {
        if (in.u8() & 1) {
          packet += blab::mirror::encode_client_text(
              "input tap " + std::to_string(in.u16() % 1080) + " " +
                  std::to_string(in.u16() % 1920),
              in.u64());
        } else {
          WsFrame ping;
          ping.opcode = WsOpcode::kPing;
          ping.masked = true;
          for (auto& b : ping.mask_key) b = in.u8();
          ping.payload = std::to_string(in.u16());
          packet += blab::mirror::encode_ws_frame(ping);
        }
      }
      const auto parsed = blab::mirror::decode_client_frames(packet);
      FUZZ_ASSERT(parsed.ok());
      FUZZ_ASSERT(parsed.value().size() == frames);
      for (const auto& f : parsed.value()) FUZZ_ASSERT(f.masked);
      // Clearing one MASK bit must fail the whole packet (RFC 6455 §5.1).
      std::string unmasked = packet;
      unmasked[1] = static_cast<char>(unmasked[1] & 0x7F);
      FUZZ_ASSERT(!blab::mirror::decode_client_frames(unmasked).ok());
      // So must trailing garbage after the last complete frame.
      FUZZ_ASSERT(!blab::mirror::decode_client_frames(packet + "\x81").ok());
      break;
    }
  }
  return 0;
}
