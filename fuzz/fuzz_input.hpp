// Structure-aware input splitting for the fuzz harnesses.
//
// FuzzInput carves the raw fuzzer byte stream into typed fields (the same
// idea as LLVM's FuzzedDataProvider, without the libFuzzer dependency so
// the harnesses also build in driver mode). Exhausted input yields zeros —
// deterministic, so a minimized corpus file replays identically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

/// Harness invariant check: violations abort so both libFuzzer and the
/// standalone driver report the input as a crash.
#define FUZZ_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

namespace blab::fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_{data}, size_{size} {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  std::uint8_t u8() {
    if (empty()) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (u8() << 8));
  }

  std::uint32_t u32() {
    return static_cast<std::uint32_t>(u16()) |
           (static_cast<std::uint32_t>(u16()) << 16);
  }

  std::uint64_t u64() {
    return static_cast<std::uint64_t>(u32()) |
           (static_cast<std::uint64_t>(u32()) << 32);
  }

  /// Uniform-ish pick in [lo, hi] (inclusive); lo when the range is empty.
  std::uint64_t uint_in_range(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    return lo + u64() % (hi - lo + 1);
  }

  float f32_bits() {
    const std::uint32_t bits = u32();
    float f = 0.0f;
    std::memcpy(&f, &bits, sizeof f);
    return f;
  }

  /// Up to `max` raw bytes (fewer when the input runs out).
  std::string bytes(std::size_t max) {
    const std::size_t n = max < remaining() ? max : remaining();
    std::string out{reinterpret_cast<const char*>(data_ + pos_), n};
    pos_ += n;
    return out;
  }

  /// Everything left, without consuming-position bookkeeping overhead.
  std::string_view rest() const {
    return {reinterpret_cast<const char*>(data_ + pos_), remaining()};
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace blab::fuzz
