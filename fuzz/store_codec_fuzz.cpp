// Fuzz target: the store codec — LEB128 varint/zigzag/delta sample coding
// and the chunked-capture container with its footer parsing.
//
// Modes (first input byte):
//   0: arbitrary bytes through decode_samples; accepted payloads must
//      re-encode byte-identically (canonical varints make this total);
//   1: structured sample round-trip — arbitrary bit patterns encode, decode
//      bit-exactly, and decoding with the wrong count must fail;
//   2: arbitrary bytes through ChunkedCapture::deserialize; accepted
//      captures must re-serialize byte-identically and answer every footer
//      query without crashing;
//   3: encode a valid capture, corrupt one byte, deserialize — must either
//      reject or stay internally consistent, never crash.
#include <cmath>
#include <cstring>
#include <vector>

#include "fuzz_input.hpp"
#include "store/chunked_capture.hpp"
#include "store/codec.hpp"
#include "util/time.hpp"

namespace {

void exercise_queries(const blab::store::ChunkedCapture& cc) {
  (void)cc.sum_ma();
  (void)cc.mean_ma();
  (void)cc.min_ma();
  (void)cc.max_ma();
  (void)cc.charge_mah();
  (void)cc.energy_mwh();
  (void)cc.byte_size();
  (void)cc.duration();
  (void)cc.coarsest_tier_with(1);
  for (std::size_t i = 0; i < cc.chunk_count(); ++i) {
    const auto& footer = cc.footer(i);
    FUZZ_ASSERT(std::isfinite(footer.sum_ma));
    (void)cc.decode_chunk(i);  // ok or typed error, never UB
  }
  (void)cc.decode();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  blab::fuzz::FuzzInput in{data, size};
  switch (in.u8() % 4) {
    case 0: {
      const std::size_t n = in.u16();
      const std::string bytes{in.rest()};
      std::vector<float> out;
      if (blab::store::decode_samples(bytes, n, out)) {
        FUZZ_ASSERT(out.size() == n);
        // Canonical varints: decode-ok implies re-encode is byte-identical.
        FUZZ_ASSERT(blab::store::encode_samples(out.data(), out.size()) ==
                    bytes);
      }
      break;
    }
    case 1: {
      const std::size_t n = in.u16() % 256;
      std::vector<float> samples;
      samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) samples.push_back(in.f32_bits());
      const std::string bytes =
          blab::store::encode_samples(samples.data(), samples.size());
      std::vector<float> decoded;
      FUZZ_ASSERT(blab::store::decode_samples(bytes, n, decoded));
      FUZZ_ASSERT(decoded.size() == n);
      // Bit-exact, including NaN payloads and negative zero. (Empty vectors
      // have no storage to compare — memcmp's pointers must be non-null.)
      FUZZ_ASSERT(n == 0 || std::memcmp(decoded.data(), samples.data(),
                                        n * sizeof(float)) == 0);
      // The count is part of the contract: any other count must fail.
      std::vector<float> wrong;
      FUZZ_ASSERT(!blab::store::decode_samples(bytes, n + 1, wrong));
      if (n > 0) {
        wrong.clear();
        FUZZ_ASSERT(!blab::store::decode_samples(bytes, n - 1, wrong));
      }
      break;
    }
    case 2: {
      const std::string bytes{in.rest()};
      const auto result = blab::store::ChunkedCapture::deserialize(bytes);
      if (result.ok()) {
        FUZZ_ASSERT(result.value().serialize() == bytes);
        exercise_queries(result.value());
      }
      break;
    }
    case 3: {
      const std::size_t flip_pos = in.u16();
      const std::uint8_t flip_mask = in.u8() | 1;  // always change something
      const bool purge = in.u8() & 1;
      const std::size_t chunk_samples = 1 + in.u8() % 64;
      const std::size_t n = in.u16() % 512;
      std::vector<float> samples;
      samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        samples.push_back(static_cast<float>(in.u16()) / 7.0f);
      }
      const blab::hw::Capture capture{blab::util::TimePoint::epoch(), 5000.0,
                                      3.7, std::move(samples)};
      auto cc = blab::store::ChunkedCapture::encode(capture, chunk_samples);
      if (purge) cc.drop_raw();
      std::string bytes = cc.serialize();
      {
        // Sanity: the untampered image must round-trip.
        const auto clean = blab::store::ChunkedCapture::deserialize(bytes);
        FUZZ_ASSERT(clean.ok());
        FUZZ_ASSERT(clean.value().serialize() == bytes);
      }
      if (!bytes.empty()) {
        bytes[flip_pos % bytes.size()] ^= static_cast<char>(flip_mask);
        const auto tampered = blab::store::ChunkedCapture::deserialize(bytes);
        if (tampered.ok()) {
          // Corruption that still parses must stay internally consistent.
          FUZZ_ASSERT(tampered.value().serialize() == bytes);
          exercise_queries(tampered.value());
        }
      }
      break;
    }
  }
  return 0;
}
