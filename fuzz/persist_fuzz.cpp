// Fuzz target: the persistent capture store's wire formats — WAL framing,
// segment index/trailer parsing, and the versioned manifest.
//
// Modes (first input byte):
//   0: arbitrary bytes through parse_wal; the replay must account for every
//      byte (clean + dropped == size) and re-encoding the recovered records
//      must reproduce the committed prefix byte-identically;
//   1: structured WAL — build records from the input, then truncate or
//      byte-flip the image; recovery must yield an exact prefix of the
//      originals, never a record that was not written;
//   2: arbitrary bytes through parse_segment_index; accepted images must
//      have a dense, in-bounds index, per-entry CRCs must police every
//      payload slice, and when all payloads checksum, rebuilding from the
//      parsed entries must be byte-identical. Also a structured
//      build/parse round-trip;
//   3: arbitrary bytes through parse_manifest; accepted manifests must
//      re-encode byte-identically (canonical format). Also a structured
//      round-trip with a corruption pass.
#include <string>
#include <vector>

#include "fuzz_input.hpp"
#include "store/persist/crc32c.hpp"
#include "store/persist/formats.hpp"
#include "util/time.hpp"

namespace {

namespace persist = blab::store::persist;
using blab::util::TimePoint;

persist::WalRecord make_record(blab::fuzz::FuzzInput& in) {
  persist::WalRecord record;
  switch (in.u8() % 3) {
    case 0: record.op = persist::WalOp::kAppend; break;
    case 1: record.op = persist::WalOp::kDropRaw; break;
    case 2: record.op = persist::WalOp::kErase; break;
  }
  record.id.workspace = "ws-" + std::to_string(in.u8() % 8);
  record.id.seq = in.u16();
  if (record.op == persist::WalOp::kAppend) {
    record.name = in.bytes(in.u8() % 24);
    record.stored_at = TimePoint::from_micros(
        static_cast<std::int64_t>(in.u32()));
    record.capture = in.bytes(in.u8());  // arbitrary payload bytes are fine
  }
  return record;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  blab::fuzz::FuzzInput in{data, size};
  switch (in.u8() % 4) {
    case 0: {
      const std::string bytes{in.rest()};
      const persist::WalReplay replay = persist::parse_wal(bytes);
      FUZZ_ASSERT(replay.clean_bytes + replay.dropped_bytes == bytes.size());
      FUZZ_ASSERT(replay.clean_bytes <= bytes.size());
      // Canonical framing: what parsed back is exactly what the committed
      // prefix encodes.
      std::string reencoded;
      for (const persist::WalRecord& r : replay.records) {
        FUZZ_ASSERT(r.capture_offset + r.capture.size() <=
                    replay.clean_bytes);
        persist::append_wal_record(reencoded, r);
      }
      FUZZ_ASSERT(reencoded == bytes.substr(0, replay.clean_bytes));
      break;
    }
    case 1: {
      const std::size_t count = 1 + in.u8() % 6;
      std::vector<persist::WalRecord> originals;
      std::string image;
      for (std::size_t i = 0; i < count; ++i) {
        originals.push_back(make_record(in));
        persist::append_wal_record(image, originals.back());
      }
      {
        const persist::WalReplay replay = persist::parse_wal(image);
        FUZZ_ASSERT(replay.records.size() == originals.size());
        FUZZ_ASSERT(replay.dropped_bytes == 0);
        for (std::size_t i = 0; i < originals.size(); ++i) {
          FUZZ_ASSERT(replay.records[i] == originals[i]);
        }
      }
      // Torn write: cut or flip anywhere. Recovery keeps an exact prefix.
      std::string tampered = image;
      if (in.u8() & 1) {
        tampered.resize(in.u64() % (tampered.size() + 1));
      } else if (!tampered.empty()) {
        tampered[in.u64() % tampered.size()] ^=
            static_cast<char>(in.u8() | 1);
      }
      const persist::WalReplay replay = persist::parse_wal(tampered);
      FUZZ_ASSERT(replay.records.size() <= originals.size());
      for (std::size_t i = 0; i < replay.records.size(); ++i) {
        FUZZ_ASSERT(replay.records[i] == originals[i]);
      }
      break;
    }
    case 2: {
      if (in.u8() & 1) {
        const std::string bytes{in.rest()};
        const auto parsed = persist::parse_segment_index(bytes);
        if (parsed.ok()) {
          // The index CRC seals only the index region: an image can carry a
          // valid index over corrupt payload bytes, which the per-entry CRC
          // then catches. Canonical rebuild only holds when every payload
          // checksums.
          std::vector<persist::SegmentRecord> records;
          bool payloads_ok = true;
          for (const persist::SegmentEntry& e : parsed.value().entries) {
            const auto payload = persist::segment_capture_bytes(bytes, e);
            if (!payload.ok()) {
              payloads_ok = false;
              break;
            }
            records.push_back({e.id, e.name, e.stored_at,
                               std::string{payload.value()}});
          }
          if (payloads_ok) {
            FUZZ_ASSERT(persist::build_segment(parsed.value().tier, records) ==
                        bytes);
          }
        }
        break;
      }
      const std::uint8_t tier =
          (in.u8() & 1) ? persist::kTierSummary : persist::kTierRaw;
      const std::size_t count = in.u8() % 5;
      std::vector<persist::SegmentRecord> records;
      for (std::size_t i = 0; i < count; ++i) {
        persist::SegmentRecord r;
        r.id.workspace = "ws-" + std::to_string(in.u8() % 4);
        r.id.seq = in.u16();
        r.name = in.bytes(in.u8() % 16);
        r.stored_at =
            TimePoint::from_micros(static_cast<std::int64_t>(in.u32()));
        r.capture = in.bytes(in.u8());
        records.push_back(std::move(r));
      }
      std::string image = persist::build_segment(tier, records);
      {
        const auto parsed = persist::parse_segment_index(image);
        FUZZ_ASSERT(parsed.ok());
        FUZZ_ASSERT(parsed.value().tier == tier);
        FUZZ_ASSERT(parsed.value().entries.size() == records.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
          const persist::SegmentEntry& e = parsed.value().entries[i];
          FUZZ_ASSERT(e.id == records[i].id);
          FUZZ_ASSERT(e.name == records[i].name);
          FUZZ_ASSERT(e.stored_at == records[i].stored_at);
          const auto payload = persist::segment_capture_bytes(image, e);
          FUZZ_ASSERT(payload.ok());
          FUZZ_ASSERT(payload.value() == records[i].capture);
        }
      }
      // One flipped byte: the parse must fail or the per-entry CRCs must
      // still police every payload slice — never silently wrong bytes.
      if (!image.empty()) {
        const std::size_t pos = in.u64() % image.size();
        image[pos] ^= static_cast<char>(in.u8() | 1);
        const auto tampered = persist::parse_segment_index(image);
        if (tampered.ok()) {
          for (const persist::SegmentEntry& e : tampered.value().entries) {
            const auto payload = persist::segment_capture_bytes(image, e);
            if (payload.ok()) {
              FUZZ_ASSERT(persist::crc32c(payload.value()) == e.crc);
            }
          }
        }
      }
      break;
    }
    case 3: {
      if (in.u8() & 1) {
        const std::string bytes{in.rest()};
        const auto parsed = persist::parse_manifest(bytes);
        if (parsed.ok()) {
          FUZZ_ASSERT(persist::encode_manifest(parsed.value()) == bytes);
          FUZZ_ASSERT(parsed.value().shards.size() <=
                      persist::kMaxManifestShards);
        }
        break;
      }
      persist::Manifest manifest;
      manifest.version = in.u32();
      manifest.next_seq = in.u32();
      const std::size_t shards = in.u8() % 8;
      for (std::size_t s = 0; s < shards; ++s) {
        std::vector<persist::ManifestSegment> segs;
        const std::size_t count = in.u8() % 4;
        for (std::size_t i = 0; i < count; ++i) {
          segs.push_back({in.bytes(in.u8() % 20),
                          (in.u8() & 1) ? persist::kTierSummary
                                        : persist::kTierRaw});
        }
        manifest.shards.push_back(std::move(segs));
      }
      std::string image = persist::encode_manifest(manifest);
      const auto parsed = persist::parse_manifest(image);
      FUZZ_ASSERT(parsed.ok());
      FUZZ_ASSERT(parsed.value() == manifest);
      if (!image.empty()) {
        image[in.u64() % image.size()] ^= static_cast<char>(in.u8() | 1);
        const auto tampered = persist::parse_manifest(image);
        // The trailing CRC makes single-byte corruption detectable; if the
        // flip landed such that parsing still succeeds, the result must
        // still be canonical.
        if (tampered.ok()) {
          FUZZ_ASSERT(persist::encode_manifest(tampered.value()) == image);
        }
      }
      break;
    }
  }
  return 0;
}
