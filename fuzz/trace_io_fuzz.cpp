// Fuzz target: the trace_io readers — Monsoon CSV and the chunked binary
// capture format — which parse experimenter-supplied files in the offline
// analysis app.
//
// Modes (first input byte):
//   0: arbitrary bytes through the CSV reader;
//   1: arbitrary bytes through the chunked binary reader;
//   2: structured round-trip — synthesize a well-formed capture from the
//      input, write CSV (optionally strided), read it back, and require
//      success with the right sample count.
#include <cmath>
#include <sstream>
#include <vector>

#include "analysis/trace_io.hpp"
#include "fuzz_input.hpp"

namespace {

void check_accepted(const blab::hw::Capture& capture) {
  FUZZ_ASSERT(capture.sample_count() > 0);
  FUZZ_ASSERT(std::isfinite(capture.sample_hz()) && capture.sample_hz() > 0);
  FUZZ_ASSERT(std::isfinite(capture.voltage()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  blab::fuzz::FuzzInput in{data, size};
  switch (in.u8() % 3) {
    case 0: {
      std::istringstream is{std::string{in.rest()}};
      const auto result = blab::analysis::read_capture_csv_stream(is);
      if (result.ok()) check_accepted(result.value());
      break;
    }
    case 1: {
      std::istringstream is{std::string{in.rest()}};
      const auto result = blab::analysis::read_capture_chunked_stream(is);
      if (result.ok()) check_accepted(result.value());
      break;
    }
    case 2: {
      const double rates[] = {1.0, 50.0, 685.714286, 5000.0};
      const double hz = rates[in.u8() % 4];
      const std::size_t stride = 1 + in.u8() % 16;
      const std::size_t n = 1 + in.u16() % 512;
      std::vector<float> samples;
      samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Keep the synthesized signal in the printable range the writer's
        // fixed-precision formatter can represent.
        samples.push_back(static_cast<float>(in.u16()) / 10.0f);
      }
      const blab::hw::Capture capture{blab::util::TimePoint::epoch(), hz,
                                      3.3 + (in.u8() % 80) / 10.0, samples};
      std::ostringstream os;
      blab::analysis::write_capture_csv(capture, os, stride);
      std::istringstream is{os.str()};
      const auto loaded = blab::analysis::read_capture_csv_stream(is);
      FUZZ_ASSERT(loaded.ok());
      FUZZ_ASSERT(loaded.value().sample_count() ==
                  (n + stride - 1) / stride);
      break;
    }
  }
  return 0;
}
