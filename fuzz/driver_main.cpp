// Standalone driver for the fuzz harnesses (no libFuzzer required).
//
// Each harness defines the libFuzzer entry point; this main makes it run
// anywhere the repo builds — the g++-only CI sanitizer lane, a plain ctest
// corpus replay, a developer laptop. The CLI is a subset of libFuzzer's so
// scripts work unchanged against either engine:
//
//   <target> [corpus dir or files...]       replay every input, then exit
//   <target> -runs=N [-seed=S] [corpus...]  replay, then N deterministic
//                                           mutation rounds over the corpus
//
// The mutator is a fixed splitmix64-driven byte mangler: flip, overwrite,
// truncate, insert, splice. It is no coverage-guided engine, but 10k
// mutation rounds over a curated corpus under ASan/UBSan is exactly the
// regression smoke the CI lane needs, and it reproduces byte-for-byte from
// the seed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>{in},
             std::istreambuf_iterator<char>{});
  return true;
}

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

std::string mutate(const std::vector<std::string>& seeds, std::uint64_t& rng,
                   std::size_t max_len) {
  std::string input;
  if (!seeds.empty()) input = seeds[splitmix64(rng) % seeds.size()];
  const int ops = 1 + static_cast<int>(splitmix64(rng) % 4);
  for (int op = 0; op < ops; ++op) {
    switch (splitmix64(rng) % 6) {
      case 0:  // flip one bit
        if (!input.empty()) {
          const std::size_t i = splitmix64(rng) % input.size();
          input[i] = static_cast<char>(
              input[i] ^ static_cast<char>(1 << (splitmix64(rng) % 8)));
        }
        break;
      case 1:  // overwrite a byte
        if (!input.empty()) {
          input[splitmix64(rng) % input.size()] =
              static_cast<char>(splitmix64(rng) & 0xFF);
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(splitmix64(rng) % input.size());
        break;
      case 3: {  // insert a short random run
        const std::size_t n = 1 + splitmix64(rng) % 8;
        std::string run;
        for (std::size_t i = 0; i < n; ++i) {
          run.push_back(static_cast<char>(splitmix64(rng) & 0xFF));
        }
        const std::size_t at =
            input.empty() ? 0 : splitmix64(rng) % (input.size() + 1);
        input.insert(at, run);
        break;
      }
      case 4:  // splice a prefix of another seed onto a prefix of this one
        if (!seeds.empty()) {
          const std::string& other = seeds[splitmix64(rng) % seeds.size()];
          const std::size_t keep =
              input.empty() ? 0 : splitmix64(rng) % input.size();
          const std::size_t take =
              other.empty() ? 0 : splitmix64(rng) % other.size();
          input = input.substr(0, keep) + other.substr(0, take);
        }
        break;
      case 5: {  // fresh random blob
        const std::size_t n = splitmix64(rng) % 64;
        input.clear();
        for (std::size_t i = 0; i < n; ++i) {
          input.push_back(static_cast<char>(splitmix64(rng) & 0xFF));
        }
        break;
      }
    }
  }
  if (input.size() > max_len) input.resize(max_len);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 0;
  std::uint64_t seed = 0x42;
  std::size_t max_len = 1 << 16;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(std::atoll(arg.c_str() + 9));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "driver: ignoring unknown flag %s\n", arg.c_str());
    } else {
      paths.push_back(arg);
    }
  }

  // Replay phase: every corpus file, in sorted order for determinism.
  std::vector<std::string> seeds;
  std::size_t replayed = 0;
  for (const auto& path : paths) {
    std::vector<std::string> files;
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator{path}) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());
    } else {
      files.push_back(path);
    }
    for (const auto& file : files) {
      std::string bytes;
      if (!read_file(file, bytes)) {
        std::fprintf(stderr, "driver: cannot read %s\n", file.c_str());
        return 2;
      }
      run_one(bytes);
      seeds.push_back(std::move(bytes));
      ++replayed;
    }
  }

  // Mutation phase.
  std::uint64_t rng = seed;
  for (long long i = 0; i < runs; ++i) {
    run_one(mutate(seeds, rng, max_len));
  }

  std::fprintf(stderr,
               "driver: replayed %zu corpus inputs, ran %lld mutation rounds "
               "(seed=%llu) — OK\n",
               replayed, runs, static_cast<unsigned long long>(seed));
  return 0;
}
