// Deterministic regenerator for the sample-bearing fuzz corpus seeds.
//
// Most seeds under tests/fuzz_corpus/ are tiny hand-written byte strings
// (bad magics, overlong varints, truncated escapes) that never go stale.
// The exceptions are the seeds that embed *real* encoded captures — WAL and
// segment images whose payloads are serialized ChunkedCaptures, and codec
// seeds carrying canonical sample streams. Those samples come from the
// repo's own noise sampler, so a deliberate sampler change (e.g. the
// Box-Muller -> ziggurat switch) leaves the checked-in bytes encoding draws
// the current Rng can no longer produce. The replay lane still passes —
// the parsers don't care where the floats came from — but the corpus slowly
// drifts away from the byte patterns the live system actually writes, which
// is exactly the distribution fuzz coverage should anchor on.
//
// This tool rebuilds those seeds from the current sampler, deterministically
// (fixed Rng seed, fixed timestamps), so regeneration is a reviewable
// one-commit diff:
//
//   build/fuzz/make_seed_corpus [corpus_root]   # default tests/fuzz_corpus
//
// Regenerated seeds (everything else is left untouched):
//   store_codec_fuzz/roundtrip_seed   mode 0: canonical encoded stream
//   store_codec_fuzz/flip_seed        mode 3: capture + one-byte corruption
//   persist_fuzz/wal_valid            mode 0: committed WAL image
//   persist_fuzz/wal_torn_tail        mode 0: same image, torn final frame
//   persist_fuzz/segment_valid        mode 2: raw-tier segment image
//   persist_fuzz/segment_summary      mode 2: summary-tier segment image
//   persist_fuzz/segment_payload_corrupt  mode 2: valid index, bad payload
//   persist_fuzz/manifest_valid       mode 3: canonical manifest image
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "hw/power_monitor.hpp"
#include "store/chunked_capture.hpp"
#include "store/codec.hpp"
#include "store/persist/formats.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace {

namespace persist = blab::store::persist;
using blab::util::TimePoint;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8));
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_seed_corpus: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

/// A realistic current trace: steady draw plus sampler noise, clamped at
/// zero like the monitor's synthesis path.
std::vector<float> make_samples(blab::util::Rng& rng, std::size_t n) {
  std::vector<double> noise(n);
  rng.fill_normal(noise, 230.0, 35.0);
  std::vector<float> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = static_cast<float>(std::max(0.0, noise[i]));
  }
  return samples;
}

std::string make_capture_bytes(blab::util::Rng& rng, std::size_t n,
                               std::size_t chunk_samples, bool purge_raw) {
  blab::hw::Capture capture{TimePoint::epoch(), 5000.0, 3.7,
                            make_samples(rng, n)};
  auto cc = blab::store::ChunkedCapture::encode(capture, chunk_samples);
  if (purge_raw) cc.drop_raw();
  return cc.serialize();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "tests/fuzz_corpus";
  // Fixed seed: reruns on an unchanged sampler are byte-for-byte no-ops.
  blab::util::Rng rng{0xB10C5EEDU};
  bool ok = true;

  // store_codec_fuzz/roundtrip_seed — mode 0 (arbitrary-bytes decode) fed a
  // canonical stream, so the decode-implies-reencode-identity oracle runs
  // on the accepting path, not just on rejections.
  {
    const std::vector<float> samples = make_samples(rng, 24);
    std::string seed;
    seed.push_back('\x00');
    put_u16(seed, static_cast<std::uint16_t>(samples.size()));
    seed += blab::store::encode_samples(samples.data(), samples.size());
    ok &= write_file(root + "/store_codec_fuzz/roundtrip_seed", seed);
  }

  // store_codec_fuzz/flip_seed — mode 3 (encode, flip one byte, reparse).
  // The harness scales the u16 words by 1/7 mA; draw them from the sampler
  // so the encoded deltas look like a real trace's.
  {
    std::string seed;
    seed.push_back('\x03');
    put_u16(seed, 0x0011);    // flip_pos
    seed.push_back('\xA5');   // flip_mask
    seed.push_back('\x00');   // keep the raw tier
    seed.push_back('\x3C');   // chunk_samples -> 1 + 0x3C % 64 = 61
    constexpr std::size_t kWords = 96;
    put_u16(seed, kWords);
    std::vector<double> draws(kWords);
    rng.fill_normal(std::span<double>{draws}, 1600.0, 240.0);
    for (double d : draws) {
      put_u16(seed, static_cast<std::uint16_t>(
                        std::clamp(d, 0.0, 65535.0)));
    }
    ok &= write_file(root + "/store_codec_fuzz/flip_seed", seed);
  }

  // persist_fuzz WAL seeds — a committed journal: two appends with real
  // capture payloads, a raw purge, an erase. wal_valid replays all four;
  // wal_torn_tail cuts into the final frame, so replay must keep the exact
  // three-record prefix and report the tail as dropped.
  {
    std::string image;
    persist::WalRecord append1;
    append1.op = persist::WalOp::kAppend;
    append1.id = {"vp-oslo", 3};
    append1.name = "SM-G960F";
    append1.stored_at = TimePoint::from_micros(1500000);
    append1.capture = make_capture_bytes(rng, 64, 16, false);
    persist::append_wal_record(image, append1);

    persist::WalRecord append2;
    append2.op = persist::WalOp::kAppend;
    append2.id = {"vp-turin", 4};
    append2.name = "J7DUO";
    append2.stored_at = TimePoint::from_micros(2750000);
    append2.capture = make_capture_bytes(rng, 48, 16, true);
    persist::append_wal_record(image, append2);

    persist::WalRecord drop;
    drop.op = persist::WalOp::kDropRaw;
    drop.id = {"vp-oslo", 3};
    persist::append_wal_record(image, drop);

    persist::WalRecord erase;
    erase.op = persist::WalOp::kErase;
    erase.id = {"vp-turin", 4};
    persist::append_wal_record(image, erase);

    ok &= write_file(root + "/persist_fuzz/wal_valid",
                     std::string{"\x00", 1} + image);
    ok &= write_file(root + "/persist_fuzz/wal_torn_tail",
                     std::string{"\x00", 1} +
                         image.substr(0, image.size() - 5));
  }

  // persist_fuzz segment seeds — mode 2 with an odd selector byte routes
  // the rest through parse_segment_index as an arbitrary image.
  {
    std::vector<persist::SegmentRecord> records;
    persist::SegmentRecord r1;
    r1.id = {"vp-oslo", 7};
    r1.name = "SM-G960F";
    r1.stored_at = TimePoint::from_micros(9000000);
    r1.capture = make_capture_bytes(rng, 128, 32, false);
    records.push_back(r1);
    persist::SegmentRecord r2;
    r2.id = {"vp-oslo", 9};
    r2.name = "BacoX";
    r2.stored_at = TimePoint::from_micros(12500000);
    r2.capture = make_capture_bytes(rng, 96, 32, false);
    records.push_back(r2);

    const std::string raw = persist::build_segment(persist::kTierRaw, records);
    ok &= write_file(root + "/persist_fuzz/segment_valid",
                     std::string{"\x02\x01"} + raw);

    std::vector<persist::SegmentRecord> summaries = records;
    for (persist::SegmentRecord& r : summaries) {
      // Summary tier: same captures with the raw chunks purged.
      auto cc = blab::store::ChunkedCapture::deserialize(r.capture);
      cc.value().drop_raw();
      r.capture = cc.value().serialize();
    }
    ok &= write_file(
        root + "/persist_fuzz/segment_summary",
        std::string{"\x02\x01"} +
            persist::build_segment(persist::kTierSummary, summaries));

    // Valid index over a corrupt payload: the index CRC seals only the
    // index region, so the flip must be caught by the per-entry CRC.
    std::string corrupt = raw;
    const auto parsed = persist::parse_segment_index(corrupt);
    const std::size_t payload_pos =
        static_cast<std::size_t>(parsed.value().entries.front().offset) + 9;
    corrupt[payload_pos] = static_cast<char>(corrupt[payload_pos] ^ 0x40);
    ok &= write_file(root + "/persist_fuzz/segment_payload_corrupt",
                     std::string{"\x02\x01"} + corrupt);
  }

  // persist_fuzz/manifest_valid — mode 3, odd selector: canonical manifest.
  {
    persist::Manifest manifest;
    manifest.version = 4;
    manifest.next_seq = 17;
    manifest.shards.resize(3);
    manifest.shards[0].push_back({"seg-r-1.blsg", persist::kTierRaw});
    manifest.shards[0].push_back({"seg-s-2.blsg", persist::kTierSummary});
    manifest.shards[2].push_back({"seg-r-3.blsg", persist::kTierRaw});
    ok &= write_file(root + "/persist_fuzz/manifest_valid",
                     std::string{"\x03\x01"} +
                         persist::encode_manifest(manifest));
  }

  return ok ? 0 : 1;
}
