// CaptureStore: the storage/query tier job workspaces sit on top of.
//
// Per-job workspaces of ChunkedCapture records, TTL-tiered retention (raw
// chunk payloads expire first; footer/tier summaries persist until the
// summary TTL), an LRU cache of decoded chunks shared across readers, and a
// query API that answers from the coarsest tier adequate for the request.
// Deterministic: iteration orders are sorted, eviction is strict LRU, and no
// operation consumes randomness — safe to run inside DST scenarios.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/power_monitor.hpp"
#include "store/chunked_capture.hpp"
#include "util/result.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace blab::obs {
class Counter;
class Gauge;
class MetricsRegistry;
class Tracer;
}  // namespace blab::obs

namespace blab::store {

namespace persist {
class PersistEngine;
}  // namespace persist

/// Stable handle to one stored capture: workspace + per-store sequence.
struct CaptureId {
  std::string workspace;
  std::uint64_t seq = 0;

  bool operator==(const CaptureId&) const = default;
  auto operator<=>(const CaptureId&) const = default;
  std::string str() const { return workspace + "#" + std::to_string(seq); }
};

/// One `aggregate()` window: [t_begin, t_end) reduced to mean/min/max.
struct AggregateBucket {
  util::TimePoint t_begin;
  util::TimePoint t_end;
  std::size_t samples = 0;
  double mean_ma = 0.0;
  double min_ma = 0.0;
  double max_ma = 0.0;
};

struct RetentionPolicy {
  /// Raw chunk payloads older than this are purged; summaries remain.
  util::Duration raw_ttl = util::Duration::minutes(30);
  /// Whole records (footers + tiers) older than this are dropped.
  util::Duration summary_ttl = util::Duration::minutes(240);
};

/// Footer/tier-level description of one capture — everything the rollup
/// engine needs, computable without decoding raw chunks (and therefore
/// still available after the raw tier is purged by retention).
struct CaptureSummary {
  CaptureId id;
  std::string name;
  util::TimePoint stored_at;  ///< when the record entered the store
  util::TimePoint start;      ///< capture start (device time)
  util::Duration duration;
  std::size_t samples = 0;
  double sample_hz = 0.0;
  double voltage = 0.0;
  double mean_ma = 0.0;
  double min_ma = 0.0;
  double max_ma = 0.0;
  double charge_mah = 0.0;
  double energy_mwh = 0.0;
};

struct StoreStats {
  std::uint64_t captures_appended = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t bytes_raw = 0;      ///< float32 payload before encoding
  std::uint64_t bytes_encoded = 0;  ///< columnar payload after encoding
  std::uint64_t raw_chunk_decodes = 0;  ///< cache misses that decoded a chunk
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t raw_purges = 0;     ///< records whose raw tier was dropped
  std::uint64_t record_purges = 0;  ///< records dropped entirely
  std::uint64_t tier_queries = 0;   ///< queries served from tiers/footers
  std::uint64_t disk_loads = 0;     ///< cold records warmed from persistence
  std::uint64_t retention_bytes_reclaimed = 0;  ///< on-disk bytes freed
};

/// Where a capture's data currently lives, for the REST `captures_source`
/// endpoint: resident in memory with raw chunks, cold on disk with raw
/// chunks, or reduced to downsample tiers (raw purged by retention).
enum class CaptureSource { kMemory, kDisk, kTier };
const char* capture_source_name(CaptureSource source);

class CaptureStore {
 public:
  static constexpr std::size_t kDefaultCacheChunks = 64;

  explicit CaptureStore(RetentionPolicy policy = {},
                        std::size_t cache_chunks = kDefaultCacheChunks)
      : policy_{policy}, cache_capacity_{cache_chunks} {}

  // -- ingest ------------------------------------------------------------
  /// Encode and archive a capture into `workspace`. `now` stamps the record
  /// for retention (simulated time; the store holds no simulator reference).
  CaptureId append(const std::string& workspace, std::string name,
                   const hw::Capture& capture, util::TimePoint now);

  // -- lookup ------------------------------------------------------------
  /// True for warm (in-memory) and cold (persisted-only) records alike.
  bool contains(const CaptureId& id) const;
  /// Warm records only; cold records surface through the query API, which
  /// loads them transparently.
  const ChunkedCapture* find(const CaptureId& id) const;
  std::optional<std::string> name_of(const CaptureId& id) const;
  /// Ids in `workspace` (warm and cold), ascending by sequence.
  std::vector<CaptureId> list(const std::string& workspace) const;
  /// All workspaces with at least one record (warm or cold), sorted.
  std::vector<std::string> workspaces() const;
  std::size_t size() const { return records_.size(); }
  /// Which tier would serve `id` right now (memory | disk | tier).
  util::Result<CaptureSource> source_of(const CaptureId& id) const;

  // -- queries -----------------------------------------------------------
  /// Raw samples in [t0, t1) — sample-exact, decoded chunk-by-chunk via the
  /// LRU cache. Fails if the raw tier was purged.
  util::Result<hw::Capture> range(const CaptureId& id, util::TimePoint t0,
                                  util::TimePoint t1);
  /// Windowed mean/min/max over the whole capture, served from the coarsest
  /// tier whose buckets are no wider than `window` (footers if window spans
  /// the capture). Never decodes raw chunks.
  util::Result<std::vector<AggregateBucket>> aggregate(const CaptureId& id,
                                                       util::Duration window);
  /// Current distribution from the finest surviving tier's bucket means.
  /// Never decodes raw chunks.
  util::Result<util::Cdf> percentiles(const CaptureId& id);
  /// Integrated energy in mWh, from chunk footers alone.
  util::Result<double> energy_mwh(const CaptureId& id);
  /// Mean current in mA, from chunk footers alone.
  util::Result<double> mean_ma(const CaptureId& id);
  /// Footer-level summary of one capture (cold records load transparently).
  util::Result<CaptureSummary> summary(const CaptureId& id);

  // -- catalog -----------------------------------------------------------
  /// Every capture id (warm or cold) whose stored_at falls in [t0, t1),
  /// ascending — the rollup engine's scan surface. Cold entries come from
  /// the persist engine's catalog without loading their payloads.
  std::vector<CaptureId> catalog(util::TimePoint t0, util::TimePoint t1) const;

  // -- retention ---------------------------------------------------------
  const RetentionPolicy& policy() const { return policy_; }
  /// Apply TTLs as of `now`. Returns the number of records touched (raw
  /// purged + records dropped). Wired into server/maintenance.
  std::size_t run_retention(util::TimePoint now);
  /// Purge raw payloads for every record in `workspace` (job workspace
  /// purge); summaries persist until their own TTL.
  std::size_t drop_workspace_raw(const std::string& workspace);

  const StoreStats& stats() const { return stats_; }

  /// Mirror StoreStats into a metrics registry (normally the owning
  /// deployment's Simulator registry). Null-safe: detached stores keep
  /// updating only their local StoreStats. The registry must outlive the
  /// store's last mutation — true for deployments, where the Simulator is
  /// constructed first and destroyed last.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Span coverage for archival: appends open a `store/append_capture` span
  /// (joining the caller's trace — e.g. a job's stop_monitor) annotated with
  /// chunk and byte counts. Null-safe like attach_metrics.
  void attach_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach an opened durability engine: appends archive through to its WAL,
  /// cold queries load transparently from its segments, retention reclaims
  /// its expired on-disk bytes, and the sequence counter resumes past the
  /// largest persisted sequence. Null detaches. The engine must outlive the
  /// store's last mutation (true for AccessServer, which owns both).
  void attach_persistence(persist::PersistEngine* engine);
  persist::PersistEngine* persistence() { return persist_; }

 private:
  struct Record {
    std::string name;
    util::TimePoint stored_at;
    ChunkedCapture capture;
  };
  struct CacheKey {
    CaptureId id;
    std::size_t chunk = 0;
    auto operator<=>(const CacheKey&) const = default;
  };
  struct CacheEntry {
    CacheKey key;
    std::vector<float> samples;
  };

  /// Cached registry instruments; all null until attach_metrics().
  struct Metrics {
    obs::Counter* appended = nullptr;
    obs::Counter* chunks_written = nullptr;
    obs::Counter* bytes_raw = nullptr;
    obs::Counter* bytes_encoded = nullptr;
    obs::Counter* decodes = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Counter* raw_purges = nullptr;
    obs::Counter* record_purges = nullptr;
    obs::Counter* tier_queries = nullptr;
    obs::Gauge* records = nullptr;
  };
  static void bump(obs::Counter* c, std::uint64_t n = 1);
  void sync_record_gauge();

  const Record* find_record(const CaptureId& id) const;
  /// find_record, loading a cold record from the persist engine on miss.
  const Record* warm_record(const CaptureId& id);
  /// Decoded samples for one chunk, through the LRU cache.
  util::Result<std::vector<float>> chunk_samples(const CaptureId& id,
                                                 const Record& record,
                                                 std::size_t chunk);
  void evict_capture(const CaptureId& id);

  RetentionPolicy policy_;
  std::size_t cache_capacity_;
  std::uint64_t next_seq_ = 1;
  // std::map keeps workspace/sequence iteration deterministic.
  std::map<CaptureId, Record> records_;
  std::list<CacheEntry> cache_lru_;  // front = most recent
  std::map<CacheKey, std::list<CacheEntry>::iterator> cache_index_;
  StoreStats stats_;
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  persist::PersistEngine* persist_ = nullptr;
};

}  // namespace blab::store
