// Byte-level primitives for the chunked capture format.
//
// Current samples are IEEE-754 floats; consecutive samples differ mostly in
// low mantissa bits (signal plus calibration noise), so the 32-bit patterns
// of neighbours are numerically close. Encoding the delta of the bit
// patterns with zigzag + LEB128 varints is lossless and shrinks a typical
// 5 kHz browser capture to 2-3 bytes per sample.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace blab::store {

/// LEB128 varint append / bounded read. `get_varint` returns the position
/// after the value, or nullptr on truncated, overlong (non-canonical
/// trailing zero byte, >10 bytes) or overflowing (bits above 63) input.
/// Accepting exactly the encodings put_varint emits makes decode followed
/// by re-encode byte-identical — the codec fuzz harness relies on that.
void put_varint(std::string& out, std::uint64_t v);
const char* get_varint(const char* p, const char* end, std::uint64_t& v);

constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Fixed-width little-endian scalar append / bounded read (nullptr on short
/// input), used for header fields where varints buy nothing.
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f32(std::string& out, float v);
void put_f64(std::string& out, double v);
const char* get_u32(const char* p, const char* end, std::uint32_t& v);
const char* get_u64(const char* p, const char* end, std::uint64_t& v);
const char* get_f32(const char* p, const char* end, float& v);
const char* get_f64(const char* p, const char* end, double& v);

/// Encode `n` float samples: first bit pattern as a varint, then
/// delta(bit pattern) + zigzag + varint for the rest. Deterministic: the
/// same samples always produce the same bytes.
std::string encode_samples(const float* samples, std::size_t n);

/// Decode exactly `n` samples appended to `out`; false on malformed input
/// (truncated or trailing bytes, overlong varints, deltas leaving the
/// 32-bit range, or a count larger than the payload could possibly hold —
/// rejected before any allocation).
bool decode_samples(std::string_view bytes, std::size_t n,
                    std::vector<float>& out);

}  // namespace blab::store
