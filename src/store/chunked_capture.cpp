#include "store/chunked_capture.hpp"

#include <algorithm>
#include <cmath>

#include "store/codec.hpp"

namespace blab::store {
namespace {

constexpr char kMagic[4] = {'B', 'L', 'C', '1'};

util::Error malformed(std::string what) {
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "chunked capture: " + std::move(what));
}

Tier build_tier(const std::vector<float>& samples, std::size_t factor,
                double raw_hz) {
  Tier tier;
  tier.factor = factor;
  tier.rate_hz = raw_hz / static_cast<double>(factor);
  const std::size_t buckets = (samples.size() + factor - 1) / factor;
  tier.mean_ma.reserve(buckets);
  tier.min_ma.reserve(buckets);
  tier.max_ma.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * factor;
    const std::size_t end = std::min(begin + factor, samples.size());
    float lo = samples[begin];
    float hi = samples[begin];
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, samples[i]);
      hi = std::max(hi, samples[i]);
      sum += static_cast<double>(samples[i]);
    }
    tier.mean_ma.push_back(
        static_cast<float>(sum / static_cast<double>(end - begin)));
    tier.min_ma.push_back(lo);
    tier.max_ma.push_back(hi);
  }
  return tier;
}

void put_tier(std::string& out, const Tier& tier) {
  put_u64(out, tier.factor);
  put_f64(out, tier.rate_hz);
  put_u64(out, tier.buckets());
  for (float v : tier.mean_ma) put_f32(out, v);
  for (float v : tier.min_ma) put_f32(out, v);
  for (float v : tier.max_ma) put_f32(out, v);
}

const char* get_tier(const char* p, const char* end, Tier& tier) {
  std::uint64_t factor = 0;
  std::uint64_t buckets = 0;
  p = get_u64(p, end, factor);
  if (p == nullptr) return nullptr;
  p = get_f64(p, end, tier.rate_hz);
  if (p == nullptr) return nullptr;
  p = get_u64(p, end, buckets);
  if (p == nullptr || factor == 0) return nullptr;
  if (!std::isfinite(tier.rate_hz) || tier.rate_hz <= 0.0) return nullptr;
  // 12 bytes per bucket; reject counts the payload cannot hold.
  if (buckets > static_cast<std::uint64_t>(end - p) / 12) return nullptr;
  tier.factor = static_cast<std::size_t>(factor);
  auto read_column = [&](std::vector<float>& column) {
    column.resize(static_cast<std::size_t>(buckets));
    for (auto& v : column) {
      p = get_f32(p, end, v);
      if (p == nullptr) return false;
    }
    return true;
  };
  if (!read_column(tier.mean_ma) || !read_column(tier.min_ma) ||
      !read_column(tier.max_ma)) {
    return nullptr;
  }
  return p;
}

}  // namespace

ChunkedCapture ChunkedCapture::encode(const hw::Capture& capture,
                                      std::size_t chunk_samples) {
  ChunkedCapture cc;
  cc.t0_ = capture.start();
  cc.sample_hz_ = capture.sample_hz();
  cc.voltage_ = capture.voltage();
  cc.chunk_samples_ = std::max<std::size_t>(chunk_samples, 1);
  const auto& samples = capture.samples_ma();
  cc.sample_count_ = samples.size();

  for (std::size_t begin = 0; begin < samples.size();
       begin += cc.chunk_samples_) {
    const std::size_t end =
        std::min(begin + cc.chunk_samples_, samples.size());
    EncodedChunk chunk;
    chunk.footer.count = static_cast<std::uint32_t>(end - begin);
    float lo = samples[begin];
    float hi = samples[begin];
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, samples[i]);
      hi = std::max(hi, samples[i]);
      sum += static_cast<double>(samples[i]);
    }
    chunk.footer.min_ma = lo;
    chunk.footer.max_ma = hi;
    chunk.footer.sum_ma = sum;
    chunk.bytes = encode_samples(samples.data() + begin, end - begin);
    cc.chunks_.push_back(std::move(chunk));
  }

  if (!samples.empty()) {
    for (double rate : kTierRatesHz) {
      if (rate >= cc.sample_hz_) continue;
      const auto factor =
          static_cast<std::size_t>(std::llround(cc.sample_hz_ / rate));
      if (factor < 2) continue;
      if (!cc.tiers_.empty() && cc.tiers_.back().factor == factor) continue;
      cc.tiers_.push_back(build_tier(samples, factor, cc.sample_hz_));
    }
  }
  return cc;
}

util::Result<std::vector<float>> ChunkedCapture::decode_chunk(
    std::size_t chunk) const {
  if (chunk >= chunks_.size()) {
    return malformed("chunk index out of range");
  }
  if (!raw_available_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "raw chunks purged by retention");
  }
  const EncodedChunk& encoded = chunks_[chunk];
  std::vector<float> samples;
  if (!decode_samples(encoded.bytes, encoded.footer.count, samples)) {
    return malformed("corrupt chunk payload");
  }
  return samples;
}

void ChunkedCapture::drop_raw() {
  for (auto& chunk : chunks_) {
    chunk.bytes.clear();
    chunk.bytes.shrink_to_fit();
  }
  raw_available_ = false;
}

double ChunkedCapture::sum_ma() const {
  double sum = 0.0;
  for (const auto& chunk : chunks_) sum += chunk.footer.sum_ma;
  return sum;
}

double ChunkedCapture::mean_ma() const {
  if (sample_count_ == 0) return 0.0;
  return sum_ma() / static_cast<double>(sample_count_);
}

double ChunkedCapture::min_ma() const {
  if (chunks_.empty()) return 0.0;
  float lo = chunks_.front().footer.min_ma;
  for (const auto& chunk : chunks_) lo = std::min(lo, chunk.footer.min_ma);
  return lo;
}

double ChunkedCapture::max_ma() const {
  if (chunks_.empty()) return 0.0;
  float hi = chunks_.front().footer.max_ma;
  for (const auto& chunk : chunks_) hi = std::max(hi, chunk.footer.max_ma);
  return hi;
}

double ChunkedCapture::charge_mah() const {
  return mean_ma() * duration().to_seconds() / 3600.0;
}

const Tier* ChunkedCapture::coarsest_tier_with(std::size_t min_buckets) const {
  const Tier* best = nullptr;
  for (const auto& tier : tiers_) {
    if (tier.buckets() >= min_buckets) best = &tier;
  }
  return best;
}

util::Result<hw::Capture> ChunkedCapture::decode() const {
  if (!raw_available_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "raw chunks purged by retention");
  }
  std::vector<float> samples;
  samples.reserve(sample_count_);
  for (const auto& chunk : chunks_) {
    if (!decode_samples(chunk.bytes, chunk.footer.count, samples)) {
      return malformed("corrupt chunk payload");
    }
  }
  if (samples.size() != sample_count_) {
    return malformed("chunk counts disagree with header");
  }
  return hw::Capture{t0_, sample_hz_, voltage_, std::move(samples)};
}

std::size_t ChunkedCapture::byte_size() const {
  // Header + per-chunk footer (count, min, max, sum) + payload + tiers.
  std::size_t size = 4 + 8 + 8 + 8 + 8 + 8 + 1 + 8;
  for (const auto& chunk : chunks_) {
    size += 4 + 4 + 4 + 8 + 8 + chunk.bytes.size();
  }
  size += 8;
  for (const auto& tier : tiers_) {
    size += 8 + 8 + 8 + tier.buckets() * 12;
  }
  return size;
}

std::string ChunkedCapture::serialize() const {
  std::string out;
  out.reserve(byte_size());
  out.append(kMagic, sizeof(kMagic));
  put_u64(out, static_cast<std::uint64_t>(t0_.us()));
  put_f64(out, sample_hz_);
  put_f64(out, voltage_);
  put_u64(out, sample_count_);
  put_u64(out, chunk_samples_);
  out.push_back(raw_available_ ? 1 : 0);
  put_u64(out, chunks_.size());
  for (const auto& chunk : chunks_) {
    put_u32(out, chunk.footer.count);
    put_f32(out, chunk.footer.min_ma);
    put_f32(out, chunk.footer.max_ma);
    put_f64(out, chunk.footer.sum_ma);
    put_u64(out, chunk.bytes.size());
    out.append(chunk.bytes);
  }
  put_u64(out, tiers_.size());
  for (const auto& tier : tiers_) put_tier(out, tier);
  return out;
}

util::Result<ChunkedCapture> ChunkedCapture::deserialize(
    std::string_view bytes) {
  const char* p = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (bytes.size() < sizeof(kMagic) ||
      std::string_view{p, sizeof(kMagic)} !=
          std::string_view{kMagic, sizeof(kMagic)}) {
    return malformed("bad magic");
  }
  p += sizeof(kMagic);

  ChunkedCapture cc;
  std::uint64_t t0_us = 0;
  std::uint64_t sample_count = 0;
  std::uint64_t chunk_samples = 0;
  p = get_u64(p, end, t0_us);
  if (p != nullptr) p = get_f64(p, end, cc.sample_hz_);
  if (p != nullptr) p = get_f64(p, end, cc.voltage_);
  if (p != nullptr) p = get_u64(p, end, sample_count);
  if (p != nullptr) p = get_u64(p, end, chunk_samples);
  if (p == nullptr || p == end) return malformed("truncated header");
  cc.t0_ = util::TimePoint::from_micros(static_cast<std::int64_t>(t0_us));
  cc.sample_count_ = static_cast<std::size_t>(sample_count);
  cc.chunk_samples_ = static_cast<std::size_t>(chunk_samples);
  if (cc.chunk_samples_ == 0 || !(cc.sample_hz_ > 0.0) ||
      !std::isfinite(cc.sample_hz_) || !std::isfinite(cc.voltage_)) {
    return malformed("bad header fields");
  }
  const std::uint8_t raw_flag = static_cast<std::uint8_t>(*p++);
  if (raw_flag > 1) return malformed("bad raw-tier flag");
  cc.raw_available_ = raw_flag == 1;
  // While the raw tier is present the delta codec spends at least one byte
  // per sample, so a sample count the input cannot possibly back must die
  // here — before decode() sizes a vector from it. Purged captures carry
  // footers only; their counts are bounded by the per-chunk checks below.
  if (cc.raw_available_ && sample_count > bytes.size()) {
    return malformed("bad header fields");
  }

  std::uint64_t chunk_count = 0;
  p = get_u64(p, end, chunk_count);
  if (p == nullptr) return malformed("truncated chunk table");
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    EncodedChunk chunk;
    std::uint64_t payload = 0;
    p = get_u32(p, end, chunk.footer.count);
    if (p != nullptr) p = get_f32(p, end, chunk.footer.min_ma);
    if (p != nullptr) p = get_f32(p, end, chunk.footer.max_ma);
    if (p != nullptr) p = get_f64(p, end, chunk.footer.sum_ma);
    if (p != nullptr) p = get_u64(p, end, payload);
    if (p == nullptr || payload > static_cast<std::uint64_t>(end - p)) {
      return malformed("truncated chunk");
    }
    // With the raw tier present every sample costs at least one payload
    // byte and empty chunks carry none; purged chunks carry footers only.
    // Either way a chunk never holds more than chunk_samples_ samples.
    const bool payload_consistent =
        cc.raw_available_
            ? chunk.footer.count <= payload &&
                  (chunk.footer.count > 0 || payload == 0)
            : payload == 0;
    if (!payload_consistent || chunk.footer.count > cc.chunk_samples_) {
      return malformed("chunk count disagrees with payload");
    }
    if (!std::isfinite(chunk.footer.sum_ma)) {
      return malformed("bad chunk footer");
    }
    chunk.bytes.assign(p, static_cast<std::size_t>(payload));
    p += payload;
    total += chunk.footer.count;
    cc.chunks_.push_back(std::move(chunk));
  }
  if (total != cc.sample_count_) {
    return malformed("chunk counts disagree with header");
  }

  std::uint64_t tier_count = 0;
  p = get_u64(p, end, tier_count);
  if (p == nullptr) return malformed("truncated tier table");
  for (std::uint64_t i = 0; i < tier_count; ++i) {
    Tier tier;
    p = get_tier(p, end, tier);
    if (p == nullptr) return malformed("truncated tier");
    cc.tiers_.push_back(std::move(tier));
  }
  if (p != end) return malformed("trailing bytes");
  return cc;
}

}  // namespace blab::store
