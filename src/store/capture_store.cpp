#include "store/capture_store.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "store/persist/engine.hpp"
#include "util/logging.hpp"

namespace blab::store {
namespace {

util::Error not_found(const CaptureId& id) {
  return util::make_error(util::ErrorCode::kNotFound,
                          "no capture " + id.str());
}

}  // namespace

const char* capture_source_name(CaptureSource source) {
  switch (source) {
    case CaptureSource::kMemory: return "memory";
    case CaptureSource::kDisk: return "disk";
    case CaptureSource::kTier: return "tier";
  }
  return "?";
}

void CaptureStore::bump(obs::Counter* c, std::uint64_t n) {
  if (c != nullptr && n > 0) c->inc(n);
}

void CaptureStore::sync_record_gauge() {
  if (metrics_.records != nullptr) {
    metrics_.records->set(static_cast<double>(records_.size()));
  }
}

void CaptureStore::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  obs::MetricsRegistry& m = *registry;
  metrics_.appended = &m.counter("blab_store_captures_appended_total");
  metrics_.chunks_written = &m.counter("blab_store_chunks_written_total");
  metrics_.bytes_raw = &m.counter("blab_store_bytes_raw_total");
  metrics_.bytes_encoded = &m.counter("blab_store_bytes_encoded_total");
  metrics_.decodes = &m.counter("blab_store_chunk_decodes_total");
  metrics_.cache_hits = &m.counter("blab_store_cache_hits_total");
  metrics_.cache_evictions = &m.counter("blab_store_cache_evictions_total");
  metrics_.raw_purges = &m.counter("blab_store_raw_purges_total");
  metrics_.record_purges = &m.counter("blab_store_record_purges_total");
  metrics_.tier_queries = &m.counter("blab_store_tier_queries_total");
  metrics_.records = &m.gauge("blab_store_records");
  // A store attached mid-life publishes what it has accumulated so far, so
  // the registry never under-reports relative to StoreStats.
  bump(metrics_.appended, stats_.captures_appended);
  bump(metrics_.chunks_written, stats_.chunks_written);
  bump(metrics_.bytes_raw, stats_.bytes_raw);
  bump(metrics_.bytes_encoded, stats_.bytes_encoded);
  bump(metrics_.decodes, stats_.raw_chunk_decodes);
  bump(metrics_.cache_hits, stats_.cache_hits);
  bump(metrics_.cache_evictions, stats_.cache_evictions);
  bump(metrics_.raw_purges, stats_.raw_purges);
  bump(metrics_.record_purges, stats_.record_purges);
  bump(metrics_.tier_queries, stats_.tier_queries);
  sync_record_gauge();
}

CaptureId CaptureStore::append(const std::string& workspace, std::string name,
                               const hw::Capture& capture,
                               util::TimePoint now) {
  CaptureId id{workspace, next_seq_++};
  obs::ScopedSpan span{tracer_, "store", "append_capture"};
  Record record;
  record.name = std::move(name);
  record.stored_at = now;
  record.capture = ChunkedCapture::encode(capture);
  const std::uint64_t chunks = record.capture.chunk_count();
  const std::uint64_t raw_bytes =
      static_cast<std::uint64_t>(capture.sample_count()) * sizeof(float);
  const std::uint64_t encoded_bytes = record.capture.byte_size();
  span.attr("workspace", workspace);
  span.attr("samples", static_cast<std::int64_t>(capture.sample_count()));
  span.attr("chunks", static_cast<std::int64_t>(chunks));
  span.attr("bytes_raw", static_cast<std::int64_t>(raw_bytes));
  span.attr("bytes_encoded", static_cast<std::int64_t>(encoded_bytes));
  const auto [it, inserted] = records_.emplace(id, std::move(record));
  if (persist_ != nullptr && inserted) {
    // Archive-through: the capture is durable once append() returns. A
    // failed archive keeps the in-memory record (still queryable this
    // process lifetime) and is surfaced as a warning, not an exception.
    if (auto st = persist_->append(id, it->second.name, now,
                                   it->second.capture);
        !st.ok()) {
      BLAB_WARN("store", "archive-through failed for " << id.str() << ": "
                                                       << st.str());
    }
  }
  ++stats_.captures_appended;
  stats_.chunks_written += chunks;
  stats_.bytes_raw += raw_bytes;
  stats_.bytes_encoded += encoded_bytes;
  bump(metrics_.appended);
  bump(metrics_.chunks_written, chunks);
  bump(metrics_.bytes_raw, raw_bytes);
  bump(metrics_.bytes_encoded, encoded_bytes);
  sync_record_gauge();
  return id;
}

void CaptureStore::attach_persistence(persist::PersistEngine* engine) {
  persist_ = engine;
  if (persist_ != nullptr) {
    // Resume sequencing past everything ever persisted (including erased
    // records, via the manifest floor) so recovered ids never collide.
    next_seq_ = std::max(next_seq_, persist_->next_seq());
  }
}

bool CaptureStore::contains(const CaptureId& id) const {
  return records_.contains(id) ||
         (persist_ != nullptr && persist_->contains(id));
}

const ChunkedCapture* CaptureStore::find(const CaptureId& id) const {
  const Record* record = find_record(id);
  return record != nullptr ? &record->capture : nullptr;
}

std::optional<std::string> CaptureStore::name_of(const CaptureId& id) const {
  if (const Record* record = find_record(id)) return record->name;
  if (persist_ != nullptr) {
    if (const auto info = persist_->info(id)) return info->name;
  }
  return std::nullopt;
}

std::vector<CaptureId> CaptureStore::list(const std::string& workspace) const {
  std::vector<CaptureId> ids;
  for (const auto& [id, record] : records_) {
    if (id.workspace == workspace) ids.push_back(id);
  }
  if (persist_ != nullptr) {
    // Warm records are also persisted, so the union is a sorted merge.
    std::vector<CaptureId> merged;
    const std::vector<CaptureId> cold = persist_->list(workspace);
    std::merge(ids.begin(), ids.end(), cold.begin(), cold.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
  }
  return ids;
}

std::vector<std::string> CaptureStore::workspaces() const {
  std::vector<std::string> names;
  for (const auto& [id, record] : records_) {
    if (names.empty() || names.back() != id.workspace) {
      names.push_back(id.workspace);
    }
  }
  // CaptureId ordering is (workspace, seq), so names is already sorted but
  // may repeat across interleaved appends only if sequences interleave —
  // they cannot, map order guarantees grouping. Dedup defensively anyway.
  names.erase(std::unique(names.begin(), names.end()), names.end());
  if (persist_ != nullptr) {
    std::vector<std::string> merged;
    const std::vector<std::string> cold = persist_->workspaces();
    std::merge(names.begin(), names.end(), cold.begin(), cold.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
  }
  return names;
}

util::Result<CaptureSource> CaptureStore::source_of(
    const CaptureId& id) const {
  if (const Record* record = find_record(id)) {
    return record->capture.raw_available() ? CaptureSource::kMemory
                                           : CaptureSource::kTier;
  }
  if (persist_ != nullptr) {
    if (const auto info = persist_->info(id)) {
      return info->raw_dropped ? CaptureSource::kTier : CaptureSource::kDisk;
    }
  }
  return not_found(id);
}

const CaptureStore::Record* CaptureStore::find_record(
    const CaptureId& id) const {
  const auto it = records_.find(id);
  return it != records_.end() ? &it->second : nullptr;
}

const CaptureStore::Record* CaptureStore::warm_record(const CaptureId& id) {
  if (const Record* record = find_record(id)) return record;
  if (persist_ == nullptr) return nullptr;
  const auto info = persist_->info(id);
  if (!info.has_value()) return nullptr;
  auto cc = persist_->load(id);
  if (!cc.ok()) {
    BLAB_WARN("store", "cold load failed for " << id.str() << ": "
                                               << cc.error().str());
    return nullptr;
  }
  Record record;
  record.name = info->name;
  record.stored_at = info->stored_at;
  record.capture = std::move(cc).take();
  ++stats_.disk_loads;
  const auto [it, inserted] = records_.emplace(id, std::move(record));
  sync_record_gauge();
  return &it->second;
}

util::Result<std::vector<float>> CaptureStore::chunk_samples(
    const CaptureId& id, const Record& record, std::size_t chunk) {
  const CacheKey key{id, chunk};
  if (const auto it = cache_index_.find(key); it != cache_index_.end()) {
    ++stats_.cache_hits;
    bump(metrics_.cache_hits);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->samples;
  }
  auto samples = record.capture.decode_chunk(chunk);
  if (!samples.ok()) return samples;
  ++stats_.raw_chunk_decodes;
  bump(metrics_.decodes);
  cache_lru_.push_front(CacheEntry{key, samples.value()});
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++stats_.cache_evictions;
    bump(metrics_.cache_evictions);
  }
  return samples;
}

void CaptureStore::evict_capture(const CaptureId& id) {
  for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
    if (it->key.id == id) {
      cache_index_.erase(it->key);
      it = cache_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

util::Result<hw::Capture> CaptureStore::range(const CaptureId& id,
                                              util::TimePoint t0,
                                              util::TimePoint t1) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  const ChunkedCapture& cc = record->capture;
  if (!cc.raw_available()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "raw samples for " + id.str() +
                                " purged by retention; summaries remain");
  }
  if (t1 < t0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "range end precedes start");
  }
  // Clamp [t0, t1) to the capture and convert to sample indices.
  const double hz = cc.sample_hz();
  const auto to_index = [&](util::TimePoint t) -> std::size_t {
    if (t <= cc.start()) return 0;
    const double offset = (t - cc.start()).to_seconds() * hz;
    const auto index = static_cast<std::size_t>(std::ceil(offset));
    return std::min(index, cc.sample_count());
  };
  const std::size_t first = to_index(t0);
  const std::size_t last = to_index(t1);

  std::vector<float> samples;
  samples.reserve(last - first);
  const std::size_t per_chunk = cc.chunk_samples();
  for (std::size_t chunk = first / per_chunk;
       chunk * per_chunk < last && chunk < cc.chunk_count(); ++chunk) {
    auto decoded = chunk_samples(id, *record, chunk);
    if (!decoded.ok()) return decoded.error();
    const std::size_t base = chunk * per_chunk;
    const std::size_t begin = std::max(first, base) - base;
    const std::size_t end = std::min(last - base, decoded.value().size());
    samples.insert(samples.end(), decoded.value().begin() + begin,
                   decoded.value().begin() + end);
  }
  return hw::Capture{cc.start() + util::Duration::seconds(
                                      static_cast<double>(first) / hz),
                     hz, cc.voltage(), std::move(samples)};
}

util::Result<std::vector<AggregateBucket>> CaptureStore::aggregate(
    const CaptureId& id, util::Duration window) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  if (window <= util::Duration::zero()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "aggregate window must be positive");
  }
  const ChunkedCapture& cc = record->capture;
  ++stats_.tier_queries;
  bump(metrics_.tier_queries);

  std::vector<AggregateBucket> buckets;
  if (cc.sample_count() == 0) return buckets;

  // Whole-capture window: answer straight from chunk footers.
  if (window >= cc.duration()) {
    AggregateBucket bucket;
    bucket.t_begin = cc.start();
    bucket.t_end = cc.start() + cc.duration();
    bucket.samples = cc.sample_count();
    bucket.mean_ma = cc.mean_ma();
    bucket.min_ma = cc.min_ma();
    bucket.max_ma = cc.max_ma();
    buckets.push_back(bucket);
    return buckets;
  }

  // Coarsest tier whose bucket period still resolves the window.
  const Tier* chosen = nullptr;
  for (const auto& tier : cc.tiers()) {
    const auto bucket_period = util::Duration::seconds(1.0 / tier.rate_hz);
    if (bucket_period <= window) chosen = &tier;
  }
  if (chosen == nullptr) {
    return util::make_error(
        util::ErrorCode::kUnsupported,
        "window finer than finest tier; use range() on raw samples");
  }

  const std::size_t group = std::max<std::size_t>(
      1, static_cast<std::size_t>(window.to_seconds() * chosen->rate_hz));
  const std::size_t raw_per_out = group * chosen->factor;
  for (std::size_t b = 0; b < chosen->buckets(); b += group) {
    const std::size_t end = std::min(b + group, chosen->buckets());
    AggregateBucket bucket;
    const std::size_t raw_begin = b * chosen->factor;
    const std::size_t raw_end =
        std::min(raw_begin + raw_per_out, cc.sample_count());
    bucket.t_begin =
        cc.start() + util::Duration::seconds(static_cast<double>(raw_begin) /
                                             cc.sample_hz());
    bucket.t_end =
        cc.start() + util::Duration::seconds(static_cast<double>(raw_end) /
                                             cc.sample_hz());
    bucket.samples = raw_end - raw_begin;
    bucket.min_ma = chosen->min_ma[b];
    bucket.max_ma = chosen->max_ma[b];
    // Weight tier means by their raw sample counts (tail bucket is short).
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = b; i < end; ++i) {
      const std::size_t tier_begin = i * chosen->factor;
      const std::size_t tier_end =
          std::min(tier_begin + chosen->factor, cc.sample_count());
      const std::size_t count = tier_end - tier_begin;
      sum += static_cast<double>(chosen->mean_ma[i]) *
             static_cast<double>(count);
      n += count;
      bucket.min_ma = std::min(bucket.min_ma,
                               static_cast<double>(chosen->min_ma[i]));
      bucket.max_ma = std::max(bucket.max_ma,
                               static_cast<double>(chosen->max_ma[i]));
    }
    bucket.mean_ma = n > 0 ? sum / static_cast<double>(n) : 0.0;
    buckets.push_back(bucket);
  }
  return buckets;
}

util::Result<util::Cdf> CaptureStore::percentiles(const CaptureId& id) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  const ChunkedCapture& cc = record->capture;
  ++stats_.tier_queries;
  bump(metrics_.tier_queries);
  util::Cdf cdf;
  const Tier* tier = cc.finest_tier();
  if (tier != nullptr) {
    for (float v : tier->mean_ma) cdf.add(static_cast<double>(v));
    return cdf;
  }
  // Short captures may have no tier (fewer samples than the finest factor);
  // footers still give one point per chunk.
  for (std::size_t chunk = 0; chunk < cc.chunk_count(); ++chunk) {
    const ChunkFooter& footer = cc.footer(chunk);
    if (footer.count > 0) {
      cdf.add(footer.sum_ma / static_cast<double>(footer.count));
    }
  }
  return cdf;
}

util::Result<double> CaptureStore::energy_mwh(const CaptureId& id) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  ++stats_.tier_queries;
  bump(metrics_.tier_queries);
  return record->capture.energy_mwh();
}

util::Result<double> CaptureStore::mean_ma(const CaptureId& id) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  ++stats_.tier_queries;
  bump(metrics_.tier_queries);
  return record->capture.mean_ma();
}

util::Result<CaptureSummary> CaptureStore::summary(const CaptureId& id) {
  const Record* record = warm_record(id);
  if (record == nullptr) return not_found(id);
  ++stats_.tier_queries;
  bump(metrics_.tier_queries);
  const ChunkedCapture& cc = record->capture;
  CaptureSummary s;
  s.id = id;
  s.name = record->name;
  s.stored_at = record->stored_at;
  s.start = cc.start();
  s.duration = cc.duration();
  s.samples = cc.sample_count();
  s.sample_hz = cc.sample_hz();
  s.voltage = cc.voltage();
  s.mean_ma = cc.mean_ma();
  s.min_ma = cc.min_ma();
  s.max_ma = cc.max_ma();
  s.charge_mah = cc.charge_mah();
  s.energy_mwh = cc.energy_mwh();
  return s;
}

std::vector<CaptureId> CaptureStore::catalog(util::TimePoint t0,
                                             util::TimePoint t1) const {
  std::vector<CaptureId> ids;
  for (const auto& [id, record] : records_) {
    if (record.stored_at >= t0 && record.stored_at < t1) ids.push_back(id);
  }
  if (persist_ != nullptr) {
    // Warm records are also persisted, so the union is a sorted merge.
    std::vector<CaptureId> cold;
    persist_->scan_catalog(
        t0, t1,
        [&cold](const persist::PersistEngine::EntryInfo& entry) {
          cold.push_back(entry.id);
        });
    std::vector<CaptureId> merged;
    std::merge(ids.begin(), ids.end(), cold.begin(), cold.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
  }
  return ids;
}

std::size_t CaptureStore::run_retention(util::TimePoint now) {
  std::size_t touched = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    Record& record = it->second;
    const util::Duration age = now - record.stored_at;
    if (age >= policy_.summary_ttl) {
      evict_capture(it->first);
      it = records_.erase(it);
      ++stats_.record_purges;
      bump(metrics_.record_purges);
      ++touched;
      continue;
    }
    if (age >= policy_.raw_ttl && record.capture.raw_available()) {
      evict_capture(it->first);
      record.capture.drop_raw();
      ++stats_.raw_purges;
      bump(metrics_.raw_purges);
      ++touched;
    }
    ++it;
  }
  if (persist_ != nullptr) {
    // The on-disk copy ages by the same policy: expired segments records are
    // erased or demoted to the summary stream, segments are compacted, and
    // the freed bytes feed blab_store_retention_bytes_reclaimed_total.
    stats_.retention_bytes_reclaimed += persist_->run_retention(now, policy_);
  }
  sync_record_gauge();
  return touched;
}

std::size_t CaptureStore::drop_workspace_raw(const std::string& workspace) {
  std::size_t touched = 0;
  for (auto& [id, record] : records_) {
    if (id.workspace != workspace || !record.capture.raw_available()) {
      continue;
    }
    evict_capture(id);
    record.capture.drop_raw();
    ++stats_.raw_purges;
    bump(metrics_.raw_purges);
    ++touched;
  }
  if (persist_ != nullptr) {
    // Journal the purge for every persisted copy — including cold records
    // this process never warmed — so a restart cannot resurrect raw samples
    // the workspace purge already discarded.
    for (const CaptureId& id : persist_->list(workspace)) {
      const auto info = persist_->info(id);
      if (!info.has_value() || info->raw_dropped) continue;
      (void)persist_->note_drop_raw(id);
      if (!records_.contains(id)) ++touched;  // warm ones counted above
    }
  }
  return touched;
}

}  // namespace blab::store
