#include "store/codec.hpp"

#include <bit>

namespace blab::store {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

const char* get_varint(const char* p, const char* end, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(*p++);
    // Tenth byte: only the low bit may be set, anything above bit 63 would
    // silently wrap. Rejecting here also rejects >10-byte encodings.
    if (shift == 63 && byte > 0x01) return nullptr;
    // Canonical LEB128 only: a trailing 0x00 continuation byte ("\x80\x00"
    // for 0) is an overlong encoding of a value put_varint would have
    // emitted shorter. One codeword per value keeps decode->re-encode
    // byte-identical, which the fuzz harness asserts.
    if (byte == 0x00 && shift > 0) return nullptr;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return p;
    shift += 7;
  }
  return nullptr;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f32(std::string& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

const char* get_u32(const char* p, const char* end, std::uint32_t& v) {
  if (end - p < 4) return nullptr;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return p + 4;
}

const char* get_u64(const char* p, const char* end, std::uint64_t& v) {
  if (end - p < 8) return nullptr;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return p + 8;
}

const char* get_f32(const char* p, const char* end, float& v) {
  std::uint32_t bits = 0;
  p = get_u32(p, end, bits);
  if (p != nullptr) v = std::bit_cast<float>(bits);
  return p;
}

const char* get_f64(const char* p, const char* end, double& v) {
  std::uint64_t bits = 0;
  p = get_u64(p, end, bits);
  if (p != nullptr) v = std::bit_cast<double>(bits);
  return p;
}

std::string encode_samples(const float* samples, std::size_t n) {
  std::string out;
  if (n == 0) return out;
  out.reserve(n * 3);
  std::int64_t prev = std::bit_cast<std::uint32_t>(samples[0]);
  put_varint(out, static_cast<std::uint64_t>(prev));
  for (std::size_t i = 1; i < n; ++i) {
    const std::int64_t bits = std::bit_cast<std::uint32_t>(samples[i]);
    put_varint(out, zigzag_encode(bits - prev));
    prev = bits;
  }
  return out;
}

bool decode_samples(std::string_view bytes, std::size_t n,
                    std::vector<float>& out) {
  const char* p = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (n == 0) return p == end;
  // Every sample takes at least one payload byte, so a count beyond the
  // payload size is malformed. Checking before the reserve keeps a hostile
  // 32-bit count from forcing a multi-GB allocation up front.
  if (n > bytes.size()) return false;
  out.reserve(out.size() + n);
  std::uint64_t first = 0;
  p = get_varint(p, end, first);
  if (p == nullptr || first > 0xFFFFFFFFULL) return false;
  std::int64_t prev = static_cast<std::int64_t>(first);
  out.push_back(std::bit_cast<float>(static_cast<std::uint32_t>(prev)));
  for (std::size_t i = 1; i < n; ++i) {
    std::uint64_t encoded = 0;
    p = get_varint(p, end, encoded);
    if (p == nullptr) return false;
    prev += zigzag_decode(encoded);
    if (prev < 0 || prev > 0xFFFFFFFFLL) return false;
    out.push_back(std::bit_cast<float>(static_cast<std::uint32_t>(prev)));
  }
  return p == end;
}

}  // namespace blab::store
