#include "store/persist/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/metrics.hpp"
#include "store/persist/crc32c.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace blab::store::persist {
namespace fs = std::filesystem;

namespace {

util::Error io_error(const std::string& what) {
  return util::make_error(util::ErrorCode::kUnavailable, what);
}

util::Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return io_error("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    out.append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return io_error("read failed for " + path);
  return out;
}

util::Result<std::string> read_file_slice(const std::string& path,
                                          std::uint64_t offset,
                                          std::uint64_t length) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return io_error("cannot open " + path);
  std::string out;
  out.resize(length);
  bool bad = std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0;
  if (!bad && length > 0) {
    bad = std::fread(out.data(), 1, length, f) != length;
  }
  std::fclose(f);
  if (bad) return io_error("short read at " + path);
  return out;
}

/// Temp-write + rename, so a crash never leaves a half-written file under
/// the final name (the manifest swap protocol relies on this).
util::Status write_file_atomic(const std::string& path,
                               std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return io_error("cannot create " + tmp);
  bool bad = bytes.size() > 0 &&
             std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size();
  bad = (std::fflush(f) != 0) || bad;
  bad = (std::fclose(f) != 0) || bad;
  if (bad) return io_error("write failed for " + tmp);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return io_error("rename failed for " + path);
  return util::Status::ok_status();
}

/// Re-serialize capture bytes with the raw tier dropped (segment demotion
/// from the raw stream into the summary stream).
util::Result<std::string> demote_to_summary(std::string_view bytes) {
  auto cc = ChunkedCapture::deserialize(bytes);
  if (!cc.ok()) return cc.error();
  cc.value().drop_raw();
  return cc.value().serialize();
}

std::string shard_dir_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%03zu", index);
  return buf;
}

/// Version of a "manifest-<N>" file name, or nullopt.
std::optional<std::uint64_t> manifest_version_of(std::string_view name) {
  constexpr std::string_view prefix = "manifest-";
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  std::uint64_t version = 0;
  for (char c : name.substr(prefix.size())) {
    if (c < '0' || c > '9') return std::nullopt;
    version = version * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return version;
}

/// Sequence counter of a "seg-{r,s}-<N>.blsg" file name, or nullopt.
std::optional<std::uint64_t> segment_number_of(std::string_view name) {
  constexpr std::string_view suffix = ".blsg";
  if (name.size() < 7 + suffix.size() || name.substr(0, 4) != "seg-") {
    return std::nullopt;
  }
  if (name[4] != 'r' && name[4] != 's') return std::nullopt;
  if (name[5] != '-') return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  std::uint64_t number = 0;
  for (char c : name.substr(6, name.size() - 6 - suffix.size())) {
    if (c < '0' || c > '9') return std::nullopt;
    number = number * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return number;
}

}  // namespace

PersistEngine::PersistEngine(std::string dir, PersistOptions options)
    : dir_{std::move(dir)}, options_{options} {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.ring_points == 0) options_.ring_points = 1;
}

PersistEngine::~PersistEngine() {
  // Close handles only. Deliberately no checkpoint: destroying a deployment
  // must leave exactly the bytes a crash would have left.
  for (Shard& shard : shards_) {
    if (shard.wal != nullptr) std::fclose(shard.wal);
  }
}

void PersistEngine::bump(obs::Counter* c, std::uint64_t n) {
  if (c != nullptr && n > 0) c->inc(n);
}

void PersistEngine::sync_gauges() {
  if (metrics_.disk_entries != nullptr) {
    metrics_.disk_entries->set(static_cast<double>(index_.size()));
  }
  if (metrics_.recovery_ms != nullptr) {
    metrics_.recovery_ms->set(stats_.recovery_ms);
  }
}

void PersistEngine::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  obs::MetricsRegistry& m = *registry;
  metrics_.wal_appends = &m.counter("blab_persist_wal_appends_total");
  metrics_.wal_bytes = &m.counter("blab_persist_wal_bytes_total");
  metrics_.segment_flushes = &m.counter("blab_persist_segment_flushes_total");
  metrics_.segment_bytes = &m.counter("blab_persist_segment_bytes_total");
  for (std::size_t c = 0; c < kCheckpointCauses; ++c) {
    metrics_.checkpoints[c] = &m.counter(
        "blab_persist_checkpoints_total",
        {{"cause", checkpoint_cause_name(static_cast<CheckpointCause>(c))}});
  }
  metrics_.compactions = &m.counter("blab_persist_compactions_total");
  metrics_.compaction_bytes = &m.counter("blab_persist_compaction_bytes_total");
  metrics_.recovered = &m.counter("blab_persist_recovered_records_total");
  metrics_.torn_tail_bytes = &m.counter("blab_persist_torn_tail_bytes_total");
  metrics_.disk_loads = &m.counter("blab_persist_disk_loads_total");
  metrics_.reclaimed = &m.counter("blab_store_retention_bytes_reclaimed_total");
  metrics_.recovery_ms = &m.gauge("blab_persist_recovery_ms");
  metrics_.disk_entries = &m.gauge("blab_persist_disk_entries");
  bump(metrics_.wal_appends, stats_.wal_appends);
  bump(metrics_.wal_bytes, stats_.wal_bytes);
  bump(metrics_.segment_flushes, stats_.segment_flushes);
  bump(metrics_.segment_bytes, stats_.segment_bytes);
  for (std::size_t c = 0; c < kCheckpointCauses; ++c) {
    bump(metrics_.checkpoints[c], stats_.checkpoints_by_cause[c]);
  }
  bump(metrics_.compactions, stats_.compactions);
  bump(metrics_.compaction_bytes, stats_.compaction_bytes);
  bump(metrics_.recovered, stats_.recovered_records);
  bump(metrics_.torn_tail_bytes, stats_.torn_tail_bytes);
  bump(metrics_.disk_loads, stats_.disk_loads);
  bump(metrics_.reclaimed, stats_.retention_bytes_reclaimed);
  sync_gauges();
}

std::string PersistEngine::shard_path(const Shard& shard) const {
  return dir_ + "/" + shard.name;
}

std::string PersistEngine::wal_path(const Shard& shard) const {
  return shard_path(shard) + "/wal.log";
}

namespace {

/// fnv1a alone clusters similar keys ("vp-1"/"vp-2" differ only in trailing
/// bytes, which one FNV multiply cannot push into the high bits a 64-bit
/// ring compare is dominated by), so ring placement finalizes it with a
/// full-avalanche mix (Murmur3 fmix64 constants).
std::uint64_t ring_hash(std::string_view key) {
  std::uint64_t x = util::fnv1a(key);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void PersistEngine::build_ring() {
  ring_.clear();
  ring_.reserve(shards_.size() * options_.ring_points);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t v = 0; v < options_.ring_points; ++v) {
      const std::string label =
          shards_[s].name + "#" + std::to_string(v);
      ring_.emplace_back(ring_hash(label), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t PersistEngine::shard_of(std::string_view workspace) const {
  if (ring_.empty()) return 0;
  const std::uint64_t h = ring_hash(workspace);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& point, std::uint64_t key) { return point.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

util::Status PersistEngine::open() {
  if (opened_) return util::Status::ok_status();
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec && !fs::is_directory(dir_)) {
    return io_error("cannot create store directory " + dir_);
  }

  Manifest manifest;
  if (auto st = recover_manifest(manifest); !st.ok()) return st;

  const std::size_t count =
      manifest.shards.empty() ? options_.shards : manifest.shards.size();
  shards_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_[i].name = shard_dir_name(i);
    fs::create_directories(shard_path(shards_[i]), ec);
    if (ec && !fs::is_directory(shard_path(shards_[i]))) {
      return io_error("cannot create " + shard_path(shards_[i]));
    }
  }
  build_ring();
  next_seq_ = std::max<std::uint64_t>(1, manifest.next_seq);
  manifest_version_ = manifest.version;

  for (std::size_t i = 0; i < count; ++i) {
    const auto& listed =
        i < manifest.shards.size()
            ? manifest.shards[i]
            : std::vector<ManifestSegment>{};
    if (auto st = recover_shard(i, listed); !st.ok()) return st;
  }

  // Garbage-collect: segment files a crashed checkpoint wrote but never
  // installed, and manifests other than the chosen one and its predecessor.
  for (Shard& shard : shards_) {
    for (const auto& entry : fs::directory_iterator(shard_path(shard), ec)) {
      const std::string name = entry.path().filename().string();
      if (segment_number_of(name).has_value() &&
          !shard.segments.contains(name)) {
        fs::remove(entry.path(), ec);
      }
    }
  }
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const auto version = manifest_version_of(name);
    if (version.has_value() &&
        (*version > manifest_version_ || *version + 1 < manifest_version_)) {
      fs::remove(entry.path(), ec);
    }
  }

  opened_ = true;
  stats_.recovered_records = index_.size();
  stats_.recovery_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  bump(metrics_.recovered, stats_.recovered_records);
  sync_gauges();
  return util::Status::ok_status();
}

util::Status PersistEngine::recover_manifest(Manifest& manifest) {
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto version = manifest_version_of(name); version.has_value()) {
      candidates.emplace_back(*version, entry.path().string());
    }
  }
  // Highest version that parses wins: a torn write of manifest-<N+1> simply
  // falls back to manifest-<N>.
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [version, path] : candidates) {
    auto bytes = read_file(path);
    if (!bytes.ok()) continue;
    auto parsed = parse_manifest(bytes.value());
    if (!parsed.ok()) {
      BLAB_WARN("persist", path << " unreadable (" << parsed.error().str()
                                << "); trying predecessor");
      continue;
    }
    manifest = std::move(parsed).take();
    return util::Status::ok_status();
  }
  manifest = Manifest{};  // fresh store
  return util::Status::ok_status();
}

util::Status PersistEngine::recover_shard(
    std::size_t shard_index, const std::vector<ManifestSegment>& segments) {
  Shard& shard = shards_[shard_index];

  for (const ManifestSegment& seg : segments) {
    if (const auto number = segment_number_of(seg.file)) {
      shard.next_segment = std::max(shard.next_segment, *number + 1);
    }
    const std::string path = shard_path(shard) + "/" + seg.file;
    auto bytes = read_file(path);
    auto parsed = bytes.ok()
                      ? parse_segment_index(bytes.value())
                      : util::Result<SegmentIndex>{bytes.error()};
    if (!parsed.ok()) {
      // A corrupt segment is dropped whole; any of its records still in the
      // WAL are recovered below, the rest are cleanly lost.
      BLAB_WARN("persist", "dropping segment " << path << ": "
                                               << parsed.error().str());
      ++stats_.segments_dropped;
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    SegmentMeta meta;
    meta.tier = parsed.value().tier;
    meta.entry_count = parsed.value().entries.size();
    for (SegmentEntry& e : parsed.value().entries) {
      next_seq_ = std::max(next_seq_, e.id.seq + 1);
      if (index_.contains(e.id)) {
        meta.dirty = true;  // duplicate — compaction will drop it
        continue;
      }
      Entry entry;
      entry.name = std::move(e.name);
      entry.stored_at = e.stored_at;
      entry.raw_dropped = meta.tier == kTierSummary;
      entry.shard = shard_index;
      entry.segment = seg.file;
      entry.offset = e.offset;
      entry.length = e.length;
      entry.crc = e.crc;
      index_.emplace(std::move(e.id), std::move(entry));
      ++meta.live_count;
    }
    shard.segments.emplace(seg.file, meta);
  }

  // WAL replay on top of the segments. Idempotent: a crash after manifest
  // install but before WAL truncation replays records that are already in
  // segments — appends of known ids and redundant notes are no-ops.
  const std::string path = wal_path(shard);
  std::error_code ec;
  if (!fs::exists(path, ec)) return util::Status::ok_status();
  auto bytes = read_file(path);
  if (!bytes.ok()) return bytes.error();
  WalReplay replay = parse_wal(bytes.value());
  if (replay.dropped_bytes > 0) {
    BLAB_WARN("persist", path << ": dropping " << replay.dropped_bytes
                              << " torn tail byte(s)");
    stats_.torn_tail_bytes += replay.dropped_bytes;
    bump(metrics_.torn_tail_bytes, replay.dropped_bytes);
    fs::resize_file(path, replay.clean_bytes, ec);
    if (ec) return io_error("cannot truncate torn tail of " + path);
  }
  for (WalRecord& record : replay.records) {
    next_seq_ = std::max(next_seq_, record.id.seq + 1);
    switch (record.op) {
      case WalOp::kAppend: {
        if (index_.contains(record.id)) break;
        auto cc = ChunkedCapture::deserialize(record.capture);
        if (!cc.ok()) {
          BLAB_WARN("persist", "skipping unreadable WAL record "
                                   << record.id.str() << ": "
                                   << cc.error().str());
          break;
        }
        Entry entry;
        entry.name = std::move(record.name);
        entry.stored_at = record.stored_at;
        entry.raw_dropped = !cc.value().raw_available();
        entry.shard = shard_index;
        entry.offset = record.capture_offset;
        entry.length = record.capture.size();
        index_.emplace(std::move(record.id), std::move(entry));
        break;
      }
      case WalOp::kDropRaw: {
        const auto it = index_.find(record.id);
        if (it == index_.end() || it->second.raw_dropped) break;
        it->second.raw_dropped = true;
        if (!it->second.segment.empty()) {
          const auto seg = shard.segments.find(it->second.segment);
          if (seg != shard.segments.end() && seg->second.tier == kTierRaw) {
            seg->second.dirty = true;
          }
        }
        break;
      }
      case WalOp::kErase: {
        const auto it = index_.find(record.id);
        if (it == index_.end()) break;
        if (!it->second.segment.empty()) {
          const auto seg = shard.segments.find(it->second.segment);
          if (seg != shard.segments.end()) {
            seg->second.dirty = true;
            if (seg->second.live_count > 0) --seg->second.live_count;
          }
        }
        index_.erase(it);
        break;
      }
    }
  }
  shard.wal_size = replay.clean_bytes;
  return util::Status::ok_status();
}

util::Status PersistEngine::ensure_wal(Shard& shard) {
  if (shard.wal != nullptr) return util::Status::ok_status();
  const std::string path = wal_path(shard);
  shard.wal = std::fopen(path.c_str(), "ab");
  if (shard.wal == nullptr) return io_error("cannot open " + path);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  shard.wal_size = ec ? 0 : size;
  return util::Status::ok_status();
}

util::Status PersistEngine::wal_write(Shard& shard, const WalRecord& record) {
  if (auto st = ensure_wal(shard); !st.ok()) return st;
  std::string frame;
  append_wal_record(frame, record);
  if (std::fwrite(frame.data(), 1, frame.size(), shard.wal) != frame.size() ||
      std::fflush(shard.wal) != 0) {
    return io_error("WAL append failed in " + shard.name);
  }
  shard.wal_size += frame.size();
  ++stats_.wal_appends;
  stats_.wal_bytes += frame.size();
  bump(metrics_.wal_appends);
  bump(metrics_.wal_bytes, frame.size());
  return util::Status::ok_status();
}

util::Status PersistEngine::append(const CaptureId& id,
                                   const std::string& name,
                                   util::TimePoint stored_at,
                                   const ChunkedCapture& cc) {
  if (!opened_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "persist engine not opened");
  }
  const std::size_t shard_index = shard_of(id.workspace);
  Shard& shard = shards_[shard_index];
  WalRecord record;
  record.op = WalOp::kAppend;
  record.id = id;
  record.name = name;
  record.stored_at = stored_at;
  record.capture = cc.serialize();
  if (auto st = wal_write(shard, record); !st.ok()) return st;

  Entry entry;
  entry.name = name;
  entry.stored_at = stored_at;
  entry.raw_dropped = !cc.raw_available();
  entry.shard = shard_index;
  // The capture bytes are the frame's final field.
  entry.offset = shard.wal_size - record.capture.size();
  entry.length = record.capture.size();
  index_[id] = std::move(entry);
  next_seq_ = std::max(next_seq_, id.seq + 1);
  sync_gauges();
  if (shard.wal_size > options_.wal_checkpoint_bytes) {
    return checkpoint(CheckpointCause::kBytes);
  }
  return util::Status::ok_status();
}

util::Status PersistEngine::note_drop_raw(const CaptureId& id) {
  if (!opened_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "persist engine not opened");
  }
  const auto it = index_.find(id);
  if (it == index_.end() || it->second.raw_dropped) {
    return util::Status::ok_status();
  }
  WalRecord record;
  record.op = WalOp::kDropRaw;
  record.id = id;
  Shard& shard = shards_[it->second.shard];
  if (auto st = wal_write(shard, record); !st.ok()) return st;
  it->second.raw_dropped = true;
  if (!it->second.segment.empty()) {
    const auto seg = shard.segments.find(it->second.segment);
    if (seg != shard.segments.end() && seg->second.tier == kTierRaw) {
      seg->second.dirty = true;
    }
  }
  return util::Status::ok_status();
}

util::Status PersistEngine::note_erase(const CaptureId& id) {
  if (!opened_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "persist engine not opened");
  }
  const auto it = index_.find(id);
  if (it == index_.end()) return util::Status::ok_status();
  WalRecord record;
  record.op = WalOp::kErase;
  record.id = id;
  Shard& shard = shards_[it->second.shard];
  if (auto st = wal_write(shard, record); !st.ok()) return st;
  if (!it->second.segment.empty()) {
    const auto seg = shard.segments.find(it->second.segment);
    if (seg != shard.segments.end()) {
      seg->second.dirty = true;
      if (seg->second.live_count > 0) --seg->second.live_count;
    }
  }
  index_.erase(it);
  sync_gauges();
  return util::Status::ok_status();
}

util::Status PersistEngine::checkpoint_shard(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];

  // Gather everything the new segments must hold, by destination tier.
  std::vector<SegmentRecord> raw_records;
  std::vector<SegmentRecord> summary_records;
  const auto add_record = [&](const CaptureId& id, const Entry& entry,
                              std::string bytes) -> util::Status {
    SegmentRecord record;
    record.id = id;
    record.name = entry.name;
    record.stored_at = entry.stored_at;
    if (entry.raw_dropped) {
      auto demoted = demote_to_summary(bytes);
      if (!demoted.ok()) return demoted.error();
      record.capture = std::move(demoted).take();
      summary_records.push_back(std::move(record));
    } else {
      record.capture = std::move(bytes);
      raw_records.push_back(std::move(record));
    }
    return util::Status::ok_status();
  };

  // WAL-resident entries, in id order (map order).
  if (shard.wal != nullptr) std::fflush(shard.wal);
  for (const auto& [id, entry] : index_) {
    if (entry.shard != shard_index || !entry.segment.empty()) continue;
    auto bytes = read_file_slice(wal_path(shard), entry.offset, entry.length);
    if (!bytes.ok()) return bytes.error();
    if (auto st = add_record(id, entry, std::move(bytes).take()); !st.ok()) {
      return st;
    }
  }

  // Dirty segments: rewrite their surviving records into the new streams.
  std::vector<std::string> replaced;
  for (const auto& [file, meta] : shard.segments) {
    if (!meta.dirty) continue;
    replaced.push_back(file);
    const std::string path = shard_path(shard) + "/" + file;
    auto bytes = read_file(path);
    auto parsed = bytes.ok()
                      ? parse_segment_index(bytes.value())
                      : util::Result<SegmentIndex>{bytes.error()};
    if (!parsed.ok()) {
      // Externally corrupted since open; its live records are lost. Drop
      // the dangling index entries so queries fail NOT_FOUND, not I/O.
      BLAB_WARN("persist", "compaction dropping segment " << path << ": "
                                                          << parsed.error()
                                                                 .str());
      ++stats_.segments_dropped;
      std::erase_if(index_, [&](const auto& kv) {
        return kv.second.shard == shard_index && kv.second.segment == file;
      });
      continue;
    }
    ++stats_.compactions;
    stats_.compaction_bytes += bytes.value().size();
    bump(metrics_.compactions);
    bump(metrics_.compaction_bytes, bytes.value().size());
    for (const SegmentEntry& e : parsed.value().entries) {
      const auto it = index_.find(e.id);
      if (it == index_.end() || it->second.segment != file ||
          it->second.shard != shard_index) {
        continue;  // erased, or superseded by a duplicate elsewhere
      }
      auto slice = segment_capture_bytes(bytes.value(), e);
      if (!slice.ok()) return slice.error();
      if (auto st = add_record(e.id, it->second, std::string{slice.value()});
          !st.ok()) {
        return st;
      }
    }
  }

  // Write the new tier streams and repoint the index.
  const auto write_stream =
      [&](std::uint8_t tier,
          const std::vector<SegmentRecord>& records) -> util::Status {
    if (records.empty()) return util::Status::ok_status();
    const std::string file = std::string("seg-") +
                             (tier == kTierRaw ? "r" : "s") + "-" +
                             std::to_string(shard.next_segment++) + ".blsg";
    const std::string image = build_segment(tier, records);
    // Write-time self check: what we just built must parse back.
    auto parsed = parse_segment_index(image);
    if (!parsed.ok()) return parsed.error();
    if (auto st = write_file_atomic(shard_path(shard) + "/" + file, image);
        !st.ok()) {
      return st;
    }
    for (SegmentEntry& e : parsed.value().entries) {
      Entry& entry = index_[e.id];
      entry.shard = shard_index;
      entry.segment = file;
      entry.offset = e.offset;
      entry.length = e.length;
      entry.crc = e.crc;
      entry.raw_dropped = tier == kTierSummary;
    }
    SegmentMeta meta;
    meta.tier = tier;
    meta.entry_count = records.size();
    meta.live_count = records.size();
    shard.segments.emplace(file, meta);
    ++stats_.segment_flushes;
    stats_.segment_bytes += image.size();
    bump(metrics_.segment_flushes);
    bump(metrics_.segment_bytes, image.size());
    return util::Status::ok_status();
  };
  if (auto st = write_stream(kTierRaw, raw_records); !st.ok()) return st;
  if (auto st = write_stream(kTierSummary, summary_records); !st.ok()) {
    return st;
  }

  // Replaced segments leave the catalog now; their files are deleted by
  // checkpoint() only after the new manifest is installed.
  for (const std::string& file : replaced) shard.segments.erase(file);
  return util::Status::ok_status();
}

util::Status PersistEngine::install_manifest() {
  Manifest manifest;
  manifest.version = ++manifest_version_;
  manifest.next_seq = next_seq_;
  manifest.shards.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (const auto& [file, meta] : shards_[i].segments) {
      manifest.shards[i].push_back(ManifestSegment{file, meta.tier});
    }
  }
  return write_file_atomic(dir_ + "/manifest-" +
                               std::to_string(manifest.version),
                           encode_manifest(manifest));
}

const char* checkpoint_cause_name(CheckpointCause cause) {
  switch (cause) {
    case CheckpointCause::kBytes: return "bytes";
    case CheckpointCause::kScheduled: return "scheduled";
    case CheckpointCause::kRetention: return "retention";
    case CheckpointCause::kManual: return "manual";
  }
  return "?";
}

util::Status PersistEngine::checkpoint(CheckpointCause cause) {
  if (!opened_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "persist engine not opened");
  }
  bool changed = false;
  std::vector<std::size_t> touched;
  // Old segment files must outlive the manifest install, so note what the
  // catalog held before compaction rewrites it.
  std::vector<std::string> before;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    const bool has_dirty =
        std::any_of(shard.segments.begin(), shard.segments.end(),
                    [](const auto& kv) { return kv.second.dirty; });
    if (shard.wal_size == 0 && !has_dirty) continue;
    for (const auto& [file, meta] : shard.segments) {
      before.push_back(shard_path(shard) + "/" + file);
    }
    if (auto st = checkpoint_shard(i); !st.ok()) return st;
    touched.push_back(i);
    changed = true;
  }
  if (!changed) return util::Status::ok_status();

  // Manifest install is the commit point: everything before it is invisible
  // to recovery, everything after it is cleanup a crash may skip.
  if (auto st = install_manifest(); !st.ok()) return st;

  std::error_code ec;
  for (std::size_t i : touched) {
    Shard& shard = shards_[i];
    if (shard.wal != nullptr) {
      std::fclose(shard.wal);
      shard.wal = nullptr;
    }
    fs::resize_file(wal_path(shard), 0, ec);
    shard.wal_size = 0;
  }
  for (const std::string& path : before) {
    const std::string file = fs::path(path).filename().string();
    bool still_live = false;
    for (const Shard& shard : shards_) {
      if (shard.segments.contains(file) &&
          path == shard_path(shard) + "/" + file) {
        still_live = true;
        break;
      }
    }
    if (!still_live) fs::remove(path, ec);
  }
  // Keep the previous manifest as the recovery fallback; prune older ones.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const auto version = manifest_version_of(entry.path().filename().string());
    if (version.has_value() && *version + 1 < manifest_version_) {
      fs::remove(entry.path(), ec);
    }
  }
  ++stats_.checkpoints;
  ++stats_.checkpoints_by_cause[static_cast<std::size_t>(cause)];
  bump(metrics_.checkpoints[static_cast<std::size_t>(cause)]);
  return util::Status::ok_status();
}

void PersistEngine::scan_catalog(
    util::TimePoint t0, util::TimePoint t1,
    const std::function<void(const EntryInfo&)>& fn) const {
  for (const auto& [id, entry] : index_) {
    if (entry.stored_at < t0 || entry.stored_at >= t1) continue;
    fn(EntryInfo{id, entry.name, entry.stored_at, entry.raw_dropped});
  }
}

std::uint64_t PersistEngine::run_retention(util::TimePoint now,
                                           const RetentionPolicy& policy) {
  if (!opened_) return 0;
  const std::uint64_t before = disk_usage_bytes();
  std::vector<CaptureId> erase_ids;
  std::vector<CaptureId> drop_ids;
  for (const auto& [id, entry] : index_) {
    const util::Duration age = now - entry.stored_at;
    if (age >= policy.summary_ttl) {
      erase_ids.push_back(id);
    } else if (age >= policy.raw_ttl && !entry.raw_dropped) {
      drop_ids.push_back(id);
    }
  }
  for (const CaptureId& id : erase_ids) (void)note_erase(id);
  for (const CaptureId& id : drop_ids) (void)note_drop_raw(id);
  if (auto st = checkpoint(CheckpointCause::kRetention); !st.ok()) {
    BLAB_WARN("persist", "retention checkpoint failed: " << st.str());
  }
  const std::uint64_t after = disk_usage_bytes();
  const std::uint64_t reclaimed = before > after ? before - after : 0;
  stats_.retention_bytes_reclaimed += reclaimed;
  bump(metrics_.reclaimed, reclaimed);
  return reclaimed;
}

bool PersistEngine::contains(const CaptureId& id) const {
  return index_.contains(id);
}

std::optional<PersistEngine::EntryInfo> PersistEngine::info(
    const CaptureId& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return EntryInfo{id, it->second.name, it->second.stored_at,
                   it->second.raw_dropped};
}

std::vector<PersistEngine::EntryInfo> PersistEngine::entries() const {
  std::vector<EntryInfo> out;
  out.reserve(index_.size());
  for (const auto& [id, entry] : index_) {
    out.push_back(EntryInfo{id, entry.name, entry.stored_at,
                            entry.raw_dropped});
  }
  return out;
}

std::vector<CaptureId> PersistEngine::list(
    const std::string& workspace) const {
  std::vector<CaptureId> ids;
  for (auto it = index_.lower_bound(CaptureId{workspace, 0});
       it != index_.end() && it->first.workspace == workspace; ++it) {
    ids.push_back(it->first);
  }
  return ids;
}

std::vector<std::string> PersistEngine::workspaces() const {
  std::vector<std::string> names;
  for (const auto& [id, entry] : index_) {
    if (names.empty() || names.back() != id.workspace) {
      names.push_back(id.workspace);
    }
  }
  return names;
}

util::Result<ChunkedCapture> PersistEngine::load(const CaptureId& id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no persisted capture " + id.str());
  }
  const Entry& entry = it->second;
  Shard& shard = shards_[entry.shard];
  std::string bytes;
  if (entry.segment.empty()) {
    if (shard.wal != nullptr) std::fflush(shard.wal);
    auto slice = read_file_slice(wal_path(shard), entry.offset, entry.length);
    if (!slice.ok()) return slice.error();
    bytes = std::move(slice).take();
  } else {
    auto slice = read_file_slice(shard_path(shard) + "/" + entry.segment,
                                 entry.offset, entry.length);
    if (!slice.ok()) return slice.error();
    bytes = std::move(slice).take();
    if (crc32c(bytes) != entry.crc) {
      return util::make_error(util::ErrorCode::kUnavailable,
                              "checksum mismatch loading " + id.str() +
                                  " from " + entry.segment);
    }
  }
  auto cc = ChunkedCapture::deserialize(bytes);
  if (!cc.ok()) return cc.error();
  if (entry.raw_dropped && cc.value().raw_available()) {
    cc.value().drop_raw();
  }
  ++stats_.disk_loads;
  bump(metrics_.disk_loads);
  return cc;
}

std::uint64_t PersistEngine::disk_usage_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir_, ec)) {
    std::error_code file_ec;
    if (entry.is_regular_file(file_ec)) {
      const auto size = entry.file_size(file_ec);
      if (!file_ec) total += size;
    }
  }
  return total;
}

}  // namespace blab::store::persist
