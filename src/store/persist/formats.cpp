#include "store/persist/formats.hpp"

#include "store/codec.hpp"
#include "store/persist/crc32c.hpp"

namespace blab::store::persist {
namespace {

util::Error format_error(const std::string& what) {
  return util::make_error(util::ErrorCode::kInvalidArgument, what);
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounded string read: length prefix must fit the remaining input.
const char* get_string(const char* p, const char* end, std::string& out) {
  std::uint32_t len = 0;
  p = get_u32(p, end, len);
  if (p == nullptr || len > static_cast<std::size_t>(end - p)) return nullptr;
  out.assign(p, len);
  return p + len;
}

const char* get_time(const char* p, const char* end, util::TimePoint& t) {
  std::uint64_t us = 0;
  p = get_u64(p, end, us);
  if (p == nullptr) return nullptr;
  t = util::TimePoint::from_micros(static_cast<std::int64_t>(us));
  return p;
}

/// Parse one WAL payload (everything inside the frame). The capture bytes
/// are the payload's final field — their length is implied by the frame, so
/// the encoding is canonical by construction.
bool parse_wal_payload(std::string_view payload, WalRecord& record) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  if (p == end) return false;
  const auto op = static_cast<std::uint8_t>(*p++);
  if (op < static_cast<std::uint8_t>(WalOp::kAppend) ||
      op > static_cast<std::uint8_t>(WalOp::kErase)) {
    return false;
  }
  record.op = static_cast<WalOp>(op);
  p = get_string(p, end, record.id.workspace);
  if (p == nullptr) return false;
  p = get_u64(p, end, record.id.seq);
  if (p == nullptr) return false;
  if (record.op != WalOp::kAppend) {
    record.name.clear();
    record.stored_at = util::TimePoint::epoch();
    record.capture.clear();
    return p == end;  // exact consumption
  }
  p = get_string(p, end, record.name);
  if (p == nullptr) return false;
  p = get_time(p, end, record.stored_at);
  if (p == nullptr) return false;
  record.capture.assign(p, static_cast<std::size_t>(end - p));
  return true;
}

}  // namespace

void append_wal_record(std::string& out, const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.op));
  put_string(payload, record.id.workspace);
  put_u64(payload, record.id.seq);
  if (record.op == WalOp::kAppend) {
    put_string(payload, record.name);
    put_u64(payload, static_cast<std::uint64_t>(record.stored_at.us()));
    payload.append(record.capture);
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32c(payload));
  out.append(payload);
}

WalReplay parse_wal(std::string_view bytes) {
  WalReplay replay;
  const char* begin = bytes.data();
  const char* p = begin;
  const char* end = begin + bytes.size();
  while (p != end) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    const char* q = get_u32(p, end, len);
    if (q != nullptr) q = get_u32(q, end, crc);
    // Any violation from here on is a torn tail: stop, keep the prefix.
    if (q == nullptr || len > static_cast<std::size_t>(end - q)) break;
    const std::string_view payload{q, len};
    if (crc32c(payload) != crc) break;
    WalRecord record;
    if (!parse_wal_payload(payload, record)) break;
    record.capture_offset = static_cast<std::uint64_t>(
        (q - begin) + (len - record.capture.size()));
    replay.records.push_back(std::move(record));
    p = q + len;
  }
  replay.clean_bytes = static_cast<std::size_t>(p - begin);
  replay.dropped_bytes = bytes.size() - replay.clean_bytes;
  return replay;
}

std::string build_segment(std::uint8_t tier,
                          const std::vector<SegmentRecord>& records) {
  std::string out{kSegmentMagic};
  out.push_back(static_cast<char>(tier));
  std::vector<SegmentEntry> entries;
  entries.reserve(records.size());
  for (const SegmentRecord& record : records) {
    SegmentEntry entry;
    entry.id = record.id;
    entry.name = record.name;
    entry.stored_at = record.stored_at;
    entry.offset = out.size();
    entry.length = record.capture.size();
    entry.crc = crc32c(record.capture);
    out.append(record.capture);
    entries.push_back(std::move(entry));
  }
  const std::uint64_t index_offset = out.size();
  put_u64(out, entries.size());
  for (const SegmentEntry& entry : entries) {
    put_string(out, entry.id.workspace);
    put_u64(out, entry.id.seq);
    put_string(out, entry.name);
    put_u64(out, static_cast<std::uint64_t>(entry.stored_at.us()));
    put_u64(out, entry.offset);
    put_u64(out, entry.length);
    put_u32(out, entry.crc);
  }
  const std::uint32_t index_crc =
      crc32c(std::string_view{out}.substr(index_offset));
  put_u64(out, index_offset);
  put_u32(out, index_crc);
  out.append(kSegmentEndMagic);
  return out;
}

util::Result<SegmentIndex> parse_segment_index(std::string_view file) {
  const std::size_t header = kSegmentMagic.size() + 1;
  if (file.size() < header + 8 + kSegmentTrailerBytes) {
    return format_error("segment too short");
  }
  if (file.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    return format_error("bad segment magic");
  }
  SegmentIndex index;
  index.tier = static_cast<std::uint8_t>(file[kSegmentMagic.size()]);
  if (index.tier != kTierRaw && index.tier != kTierSummary) {
    return format_error("unknown segment tier");
  }
  const std::string_view trailer =
      file.substr(file.size() - kSegmentTrailerBytes);
  if (trailer.substr(kSegmentTrailerBytes - kSegmentEndMagic.size()) !=
      kSegmentEndMagic) {
    return format_error("bad segment end magic");
  }
  std::uint64_t index_offset = 0;
  std::uint32_t index_crc = 0;
  const char* t = trailer.data();
  const char* t_end = t + trailer.size();
  t = get_u64(t, t_end, index_offset);
  t = get_u32(t, t_end, index_crc);
  const std::size_t index_end = file.size() - kSegmentTrailerBytes;
  if (t == nullptr || index_offset < header ||
      index_offset + 8 > index_end) {
    return format_error("segment index offset out of range");
  }
  const std::string_view index_bytes =
      file.substr(index_offset, index_end - index_offset);
  if (crc32c(index_bytes) != index_crc) {
    return format_error("segment index checksum mismatch");
  }
  const char* p = index_bytes.data();
  const char* end = p + index_bytes.size();
  std::uint64_t count = 0;
  p = get_u64(p, end, count);
  // Each entry is at least 44 bytes, so a huge count cannot be honest.
  if (p == nullptr || count > index_bytes.size() / 44) {
    return format_error("segment entry count implausible");
  }
  index.entries.reserve(count);
  // The payload region must be tiled densely, in order, with no gaps: that
  // makes the file canonical and every payload byte accounted for.
  std::uint64_t expected_offset = header;
  for (std::uint64_t i = 0; i < count; ++i) {
    SegmentEntry entry;
    p = get_string(p, end, entry.id.workspace);
    if (p != nullptr) p = get_u64(p, end, entry.id.seq);
    if (p != nullptr) p = get_string(p, end, entry.name);
    if (p != nullptr) p = get_time(p, end, entry.stored_at);
    if (p != nullptr) p = get_u64(p, end, entry.offset);
    if (p != nullptr) p = get_u64(p, end, entry.length);
    if (p != nullptr) p = get_u32(p, end, entry.crc);
    if (p == nullptr) return format_error("segment index entry truncated");
    if (entry.offset != expected_offset ||
        entry.length > index_offset - entry.offset) {
      return format_error("segment payload not densely tiled");
    }
    expected_offset = entry.offset + entry.length;
    index.entries.push_back(std::move(entry));
  }
  if (p != end) return format_error("trailing bytes after segment index");
  if (expected_offset != index_offset) {
    return format_error("segment payload region not fully covered");
  }
  return index;
}

util::Result<std::string_view> segment_capture_bytes(std::string_view file,
                                                     const SegmentEntry& e) {
  if (file.size() < kSegmentTrailerBytes ||
      e.offset > file.size() - kSegmentTrailerBytes ||
      e.length > file.size() - kSegmentTrailerBytes - e.offset) {
    return format_error("segment entry out of range");
  }
  const std::string_view bytes = file.substr(e.offset, e.length);
  if (crc32c(bytes) != e.crc) {
    return format_error("segment record checksum mismatch for " + e.id.str());
  }
  return bytes;
}

std::string encode_manifest(const Manifest& manifest) {
  std::string out{kManifestMagic};
  put_u64(out, manifest.version);
  put_u64(out, manifest.next_seq);
  put_u32(out, static_cast<std::uint32_t>(manifest.shards.size()));
  for (const auto& shard : manifest.shards) {
    put_u64(out, shard.size());
    for (const ManifestSegment& seg : shard) {
      put_string(out, seg.file);
      out.push_back(static_cast<char>(seg.tier));
    }
  }
  put_u32(out, crc32c(out));
  return out;
}

util::Result<Manifest> parse_manifest(std::string_view bytes) {
  const std::size_t min_size = kManifestMagic.size() + 8 + 8 + 4 + 4;
  if (bytes.size() < min_size) return format_error("manifest too short");
  if (bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return format_error("bad manifest magic");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  std::uint32_t crc = 0;
  (void)get_u32(bytes.data() + body.size(), bytes.data() + bytes.size(), crc);
  if (crc32c(body) != crc) return format_error("manifest checksum mismatch");

  Manifest manifest;
  const char* p = body.data() + kManifestMagic.size();
  const char* end = body.data() + body.size();
  p = get_u64(p, end, manifest.version);
  if (p != nullptr) p = get_u64(p, end, manifest.next_seq);
  std::uint32_t shard_count = 0;
  if (p != nullptr) p = get_u32(p, end, shard_count);
  if (p == nullptr || shard_count > kMaxManifestShards) {
    return format_error("manifest header malformed");
  }
  manifest.shards.resize(shard_count);
  for (auto& shard : manifest.shards) {
    std::uint64_t seg_count = 0;
    p = get_u64(p, end, seg_count);
    // Each segment entry is at least 5 bytes.
    if (p == nullptr ||
        seg_count > static_cast<std::uint64_t>(end - p) / 5) {
      return format_error("manifest shard list implausible");
    }
    shard.reserve(seg_count);
    for (std::uint64_t i = 0; i < seg_count; ++i) {
      ManifestSegment seg;
      p = get_string(p, end, seg.file);
      if (p == nullptr || p == end) {
        return format_error("manifest segment entry truncated");
      }
      seg.tier = static_cast<std::uint8_t>(*p++);
      if (seg.tier != kTierRaw && seg.tier != kTierSummary) {
        return format_error("manifest segment tier unknown");
      }
      shard.push_back(std::move(seg));
    }
  }
  if (p != end) return format_error("trailing bytes after manifest");
  return manifest;
}

}  // namespace blab::store::persist
