#include "store/persist/crc32c.hpp"

#include <array>

namespace blab::store::persist {
namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t crc) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

}  // namespace blab::store::persist
