// On-disk byte formats for the persistent capture store (DESIGN.md §12).
//
// Three little formats, all built from the store codec's fixed-width
// primitives plus CRC32C framing, and all parsed from in-memory buffers so
// the deserializers are total functions over arbitrary bytes (the
// persist_fuzz harness drives them directly; file I/O lives in engine.cpp):
//
//   WAL      a stream of [u32 len][u32 crc32c(payload)][payload] frames.
//            Parsing stops at the first truncated, oversized or
//            checksum-failing frame and reports the torn tail instead of
//            erroring — a crashed writer may leave a partial frame, and
//            everything before it is still committed data.
//
//   Segment  "BLSG1" + tier byte, a dense payload region of serialized
//            ChunkedCaptures, an index of (id, name, stored_at, offset,
//            length, crc) entries, and a fixed 16-byte trailer
//            [u64 index_offset][u32 index_crc]"BLSE" read back-to-front.
//            The index must tile the payload region exactly, which makes
//            the whole file canonical: parse-then-rebuild is
//            byte-identical.
//
//   Manifest "BLMF1" + version + next_seq + per-shard segment lists + a
//            trailing CRC over everything before it. Canonical for the
//            same reason (no padding, no optional fields, exact-length).
//
// Every parser rejects rather than truncates: trailing bytes, non-dense
// payload tiling, out-of-range offsets and bad checksums are all hard
// errors, so two replicas that both accept a file agree on every byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/capture_store.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::store::persist {

// ---- WAL ----------------------------------------------------------------

/// Logical operations the store journals before acknowledging them.
enum class WalOp : std::uint8_t {
  kAppend = 1,   ///< new capture: id, name, stored_at, serialized bytes
  kDropRaw = 2,  ///< raw tier purged for id (retention / workspace purge)
  kErase = 3,    ///< record dropped entirely for id (summary TTL)
};

struct WalRecord {
  WalOp op = WalOp::kAppend;
  CaptureId id;
  // kAppend only; empty otherwise.
  std::string name;
  util::TimePoint stored_at;
  std::string capture;  ///< ChunkedCapture::serialize() bytes

  /// Filled by parse_wal: offset of `capture` within the parsed buffer, so
  /// recovered records can be re-read lazily from the file without keeping
  /// every payload resident. Zero for records built by hand.
  std::uint64_t capture_offset = 0;

  bool operator==(const WalRecord& o) const {
    return op == o.op && id == o.id && name == o.name &&
           stored_at == o.stored_at && capture == o.capture;
  }
};

/// Append one framed record to `out`. Deterministic: the same logical record
/// always produces the same bytes (canonical framing — parse_wal accepts
/// exactly what this emits).
void append_wal_record(std::string& out, const WalRecord& record);

struct WalReplay {
  std::vector<WalRecord> records;
  std::size_t clean_bytes = 0;    ///< committed prefix length
  std::size_t dropped_bytes = 0;  ///< torn/corrupt tail discarded
};

/// Replay a WAL buffer. Total over arbitrary bytes: never throws, never
/// reads out of bounds; `clean_bytes + dropped_bytes == bytes.size()`.
WalReplay parse_wal(std::string_view bytes);

// ---- Segments -----------------------------------------------------------

inline constexpr std::string_view kSegmentMagic = "BLSG1";
inline constexpr std::string_view kSegmentEndMagic = "BLSE";
inline constexpr std::size_t kSegmentTrailerBytes = 16;
/// Retention tiers a segment can hold: raw chunks intact, or summary-only
/// (raw purged, footer/tier data remains).
inline constexpr std::uint8_t kTierRaw = 0;
inline constexpr std::uint8_t kTierSummary = 1;

struct SegmentRecord {
  CaptureId id;
  std::string name;
  util::TimePoint stored_at;
  std::string capture;  ///< ChunkedCapture::serialize() bytes
};

struct SegmentEntry {
  CaptureId id;
  std::string name;
  util::TimePoint stored_at;
  std::uint64_t offset = 0;  ///< absolute file offset of the capture bytes
  std::uint64_t length = 0;
  std::uint32_t crc = 0;  ///< crc32c of the capture bytes
};

struct SegmentIndex {
  std::uint8_t tier = kTierRaw;
  std::vector<SegmentEntry> entries;
};

/// Build a complete segment file image. Records are laid out densely in the
/// given order; the per-entry CRC is computed here.
std::string build_segment(std::uint8_t tier,
                          const std::vector<SegmentRecord>& records);

/// Parse header + trailer + index of a segment image. O(index) — capture
/// payloads are range-checked but not decoded (load_segment_record does
/// that per entry). Fails on any structural or checksum violation.
util::Result<SegmentIndex> parse_segment_index(std::string_view file);

/// Slice + checksum one entry's capture bytes out of a segment image the
/// entry was parsed from. The returned view aliases `file`.
util::Result<std::string_view> segment_capture_bytes(std::string_view file,
                                                     const SegmentEntry& e);

// ---- Manifest -----------------------------------------------------------

inline constexpr std::string_view kManifestMagic = "BLMF1";
inline constexpr std::uint32_t kMaxManifestShards = 1024;

struct ManifestSegment {
  std::string file;  ///< file name within its shard directory
  std::uint8_t tier = kTierRaw;

  bool operator==(const ManifestSegment&) const = default;
};

struct Manifest {
  std::uint64_t version = 0;
  std::uint64_t next_seq = 1;  ///< store sequence floor after recovery
  /// Fixed at store creation; shards[i] lists shard i's live segments.
  std::vector<std::vector<ManifestSegment>> shards;

  bool operator==(const Manifest&) const = default;
};

std::string encode_manifest(const Manifest& manifest);
util::Result<Manifest> parse_manifest(std::string_view bytes);

}  // namespace blab::store::persist
