// PersistEngine: the durability layer under CaptureStore (DESIGN.md §12).
//
// On-disk layout, rooted at one directory per deployment:
//
//   <dir>/manifest-<version>        versioned, CRC-sealed catalog
//   <dir>/shard-000/wal.log         per-shard write-ahead log
//   <dir>/shard-000/seg-r-7.blsg    raw-tier segment (chunks intact)
//   <dir>/shard-000/seg-s-3.blsg    summary-tier segment (raw purged)
//   ...
//
// Workspaces map to shards by a consistent-hash ring (virtual points over
// fnv1a), so a vantage point's captures cluster in one directory and
// recovery/compaction work is partitioned. Appends are journaled to the
// shard WAL and acknowledged after an fflush; checkpoints fold the WAL into
// append-only segment files (one stream per retention tier, embedding the
// chunked columnar codec via ChunkedCapture::serialize), then install a new
// manifest version and truncate the WAL. Recovery is the reverse: pick the
// highest manifest that parses, open its segments, replay the WAL on top
// (idempotently — a crash between manifest install and WAL truncation must
// not double-apply), drop any torn tail, and garbage-collect orphans.
//
// Crucially for DST: the engine does no background work, consumes no
// randomness and never reads the wall clock into logical state — every
// mutation happens inside a store call, so enabling persistence cannot
// perturb simulated event order (the recovery_ms stat is wall time but
// feeds only a gauge, never a digest). Destruction closes file handles
// without checkpointing: tearing down a deployment is byte-equivalent to
// killing it, which is exactly what the crash-recovery oracle relies on.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/capture_store.hpp"
#include "store/persist/formats.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace blab::obs

namespace blab::store::persist {

struct PersistOptions {
  /// Shard directories (fixed at store creation; an existing store's
  /// manifest wins over this value on open).
  std::size_t shards = 4;
  /// Virtual points per shard on the consistent-hash ring.
  std::size_t ring_points = 8;
  /// A shard WAL larger than this triggers an automatic checkpoint on the
  /// next append. Byte-driven, so it stays deterministic under DST.
  std::size_t wal_checkpoint_bytes = 1u << 20;
};

/// Why a checkpoint ran: the shard WAL crossed wal_checkpoint_bytes, the
/// maintenance tier's sim-time cadence fired, retention folded its drops,
/// or an operator/test asked for one directly. Labels the
/// blab_persist_checkpoints_total metric.
enum class CheckpointCause : std::uint8_t {
  kBytes = 0,
  kScheduled = 1,
  kRetention = 2,
  kManual = 3,
};
inline constexpr std::size_t kCheckpointCauses = 4;
const char* checkpoint_cause_name(CheckpointCause cause);

struct PersistStats {
  std::uint64_t wal_appends = 0;  ///< records journaled (all op kinds)
  std::uint64_t wal_bytes = 0;
  std::uint64_t segment_flushes = 0;  ///< segment files written
  std::uint64_t segment_bytes = 0;
  std::uint64_t checkpoints = 0;  ///< total across causes
  std::uint64_t checkpoints_by_cause[kCheckpointCauses] = {};
  std::uint64_t compactions = 0;  ///< existing segments rewritten
  std::uint64_t compaction_bytes = 0;  ///< bytes of segments rewritten
  std::uint64_t recovered_records = 0;  ///< index entries after open()
  std::uint64_t torn_tail_bytes = 0;  ///< WAL bytes dropped at recovery
  std::uint64_t segments_dropped = 0;  ///< unreadable segments at recovery
  std::uint64_t disk_loads = 0;  ///< cold capture loads served
  std::uint64_t retention_bytes_reclaimed = 0;
  double recovery_ms = 0.0;  ///< wall time of the last open()
};

class PersistEngine {
 public:
  explicit PersistEngine(std::string dir, PersistOptions options = {});
  ~PersistEngine();

  PersistEngine(const PersistEngine&) = delete;
  PersistEngine& operator=(const PersistEngine&) = delete;

  /// Create-or-recover the store at `dir`. Idempotent per instance.
  util::Status open();
  bool opened() const { return opened_; }
  const std::string& dir() const { return dir_; }

  std::size_t shard_count() const { return shards_.size(); }
  /// Consistent-hash shard for a workspace (vantage-point job id).
  std::size_t shard_of(std::string_view workspace) const;

  // -- write path ---------------------------------------------------------
  /// Journal a new capture. Durable (journaled + flushed) on ok().
  util::Status append(const CaptureId& id, const std::string& name,
                      util::TimePoint stored_at, const ChunkedCapture& cc);
  /// Journal a raw-tier purge / whole-record erase for an id already known
  /// to the engine; unknown ids are ignored (ok).
  util::Status note_drop_raw(const CaptureId& id);
  util::Status note_erase(const CaptureId& id);

  /// Fold every shard's WAL into segments, rewrite segments with pending
  /// drops/erases (LSM-style compaction into the tier streams), install a
  /// new manifest version, truncate the WALs. `cause` labels the checkpoint
  /// counter so operators can tell byte-pressure checkpoints from the
  /// maintenance tier's scheduled cadence.
  util::Status checkpoint(CheckpointCause cause = CheckpointCause::kManual);

  /// Apply TTLs to the on-disk copy and compact. Returns bytes reclaimed
  /// (segment + WAL shrinkage).
  std::uint64_t run_retention(util::TimePoint now,
                              const RetentionPolicy& policy);

  // -- read path ----------------------------------------------------------
  struct EntryInfo {
    CaptureId id;
    std::string name;
    util::TimePoint stored_at;
    bool raw_dropped = false;
  };
  bool contains(const CaptureId& id) const;
  std::optional<EntryInfo> info(const CaptureId& id) const;
  /// All entries, ascending by id.
  std::vector<EntryInfo> entries() const;
  /// Visit every entry whose stored_at falls in [t0, t1), ascending by id —
  /// the rollup engine's catalog-iteration surface. Touches only the index,
  /// never capture payloads.
  void scan_catalog(util::TimePoint t0, util::TimePoint t1,
                    const std::function<void(const EntryInfo&)>& fn) const;
  std::vector<CaptureId> list(const std::string& workspace) const;
  std::vector<std::string> workspaces() const;
  /// Materialize one capture from disk (WAL or segment, checksummed).
  util::Result<ChunkedCapture> load(const CaptureId& id);

  /// First sequence number a recovered store may hand out: one past the
  /// largest persisted sequence (also carried by the manifest so erased
  /// records never resurrect an old sequence).
  std::uint64_t next_seq() const { return next_seq_; }
  std::size_t size() const { return index_.size(); }

  /// Total bytes under `dir` (segments + WALs + manifests).
  std::uint64_t disk_usage_bytes() const;

  const PersistStats& stats() const { return stats_; }
  /// Mirror PersistStats into a registry (blab_persist_*). Null-safe, same
  /// contract as CaptureStore::attach_metrics.
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  struct SegmentMeta {
    std::uint8_t tier = kTierRaw;
    std::uint64_t entry_count = 0;  ///< entries in the file
    std::uint64_t live_count = 0;   ///< entries still referenced
    bool dirty = false;  ///< has pending drops/erases; rewrite on checkpoint
  };
  struct Shard {
    std::string name;  ///< directory name, e.g. "shard-003"
    std::FILE* wal = nullptr;
    std::uint64_t wal_size = 0;
    std::uint64_t next_segment = 1;
    std::map<std::string, SegmentMeta> segments;
  };
  struct Entry {
    std::string name;
    util::TimePoint stored_at;
    bool raw_dropped = false;
    std::size_t shard = 0;
    std::string segment;  ///< empty = lives in the shard WAL
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;  ///< segment entries only
  };
  struct Metrics {
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_bytes = nullptr;
    obs::Counter* segment_flushes = nullptr;
    obs::Counter* segment_bytes = nullptr;
    obs::Counter* checkpoints[kCheckpointCauses] = {};
    obs::Counter* compactions = nullptr;
    obs::Counter* compaction_bytes = nullptr;
    obs::Counter* recovered = nullptr;
    obs::Counter* torn_tail_bytes = nullptr;
    obs::Counter* disk_loads = nullptr;
    obs::Counter* reclaimed = nullptr;
    obs::Gauge* recovery_ms = nullptr;
    obs::Gauge* disk_entries = nullptr;
  };

  std::string shard_path(const Shard& shard) const;
  std::string wal_path(const Shard& shard) const;
  util::Status ensure_wal(Shard& shard);
  util::Status wal_write(Shard& shard, const WalRecord& record);
  util::Status recover_manifest(Manifest& manifest);
  util::Status recover_shard(std::size_t shard_index,
                             const std::vector<ManifestSegment>& segments);
  util::Status checkpoint_shard(std::size_t shard_index);
  util::Status install_manifest();
  void build_ring();
  static void bump(obs::Counter* c, std::uint64_t n = 1);
  void sync_gauges();

  std::string dir_;
  PersistOptions options_;
  bool opened_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t manifest_version_ = 0;
  std::vector<Shard> shards_;
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::map<CaptureId, Entry> index_;
  PersistStats stats_;
  Metrics metrics_;
};

}  // namespace blab::store::persist
