// CRC32C (Castagnoli) over byte buffers.
//
// Every persisted frame — WAL records, segment indexes, manifests — carries a
// CRC32C so recovery can tell a torn or bit-flipped tail from committed data.
// Castagnoli rather than the zlib polynomial because its error-detection
// properties for short records are better studied (it is what LevelDB/RocksDB
// and iSCSI use), and a software table implementation keeps the build free of
// SSE4.2 feature detection while still running at a few GB/s — far above the
// append rates the store sees.
#pragma once

#include <cstdint>
#include <string_view>

namespace blab::store::persist {

/// CRC32C of `data`, optionally chaining from a previous crc (pass the prior
/// return value to extend a running checksum). Deterministic, byte-order
/// independent of the host.
std::uint32_t crc32c(std::string_view data, std::uint32_t crc = 0);

}  // namespace blab::store::persist
