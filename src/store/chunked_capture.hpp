// Chunked columnar representation of one hw::Capture.
//
// Fixed-size sample chunks (timestamps implicit from the sample rate), each
// delta+zigzag+varint encoded with a min/max/sum footer, plus a ladder of
// downsample tiers (raw 5 kHz -> 50 Hz -> 1 Hz) built once at encode time.
// Footers and tiers answer summary and distribution queries without touching
// raw chunk bytes, and survive raw-tier retention purges.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hw/power_monitor.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::store {

struct ChunkFooter {
  std::uint32_t count = 0;
  float min_ma = 0.0f;
  float max_ma = 0.0f;
  double sum_ma = 0.0;  ///< exact running sum of the chunk's samples
};

struct EncodedChunk {
  ChunkFooter footer;
  std::string bytes;  ///< codec payload; empty once the raw tier is purged
};

/// One downsample tier: consecutive windows of `factor` raw samples reduced
/// to (mean, min, max). The final window may be partial; its sample count is
/// derivable from the capture's total.
struct Tier {
  std::size_t factor = 1;   ///< raw samples per bucket
  double rate_hz = 0.0;     ///< effective bucket rate (sample_hz / factor)
  std::vector<float> mean_ma;
  std::vector<float> min_ma;
  std::vector<float> max_ma;

  std::size_t buckets() const { return mean_ma.size(); }
};

class ChunkedCapture {
 public:
  static constexpr std::size_t kDefaultChunkSamples = 4096;
  /// Tier ladder targets; rates at or above the raw rate are skipped.
  static constexpr double kTierRatesHz[] = {50.0, 1.0};

  ChunkedCapture() = default;

  /// Encode a capture. Deterministic: the same capture always yields the
  /// same chunk bytes (byte-identical re-encode).
  static ChunkedCapture encode(const hw::Capture& capture,
                               std::size_t chunk_samples =
                                   kDefaultChunkSamples);

  // -- header ------------------------------------------------------------
  util::TimePoint start() const { return t0_; }
  double sample_hz() const { return sample_hz_; }
  double voltage() const { return voltage_; }
  std::size_t sample_count() const { return sample_count_; }
  std::size_t chunk_samples() const { return chunk_samples_; }
  util::Duration duration() const {
    return util::Duration::seconds(static_cast<double>(sample_count_) /
                                   sample_hz_);
  }

  // -- raw chunks --------------------------------------------------------
  std::size_t chunk_count() const { return chunks_.size(); }
  const ChunkFooter& footer(std::size_t chunk) const {
    return chunks_[chunk].footer;
  }
  bool raw_available() const { return raw_available_; }
  util::Result<std::vector<float>> decode_chunk(std::size_t chunk) const;
  /// Retention: drop raw chunk payloads; footers and tiers persist.
  void drop_raw();

  // -- footer summaries (never decode raw) -------------------------------
  double sum_ma() const;
  double mean_ma() const;
  double min_ma() const;
  double max_ma() const;
  double charge_mah() const;
  double energy_mwh() const { return charge_mah() * voltage_; }

  // -- tiers -------------------------------------------------------------
  /// Ordered finest to coarsest.
  const std::vector<Tier>& tiers() const { return tiers_; }
  /// Coarsest tier with at least `min_buckets` buckets (nullptr if none).
  const Tier* coarsest_tier_with(std::size_t min_buckets) const;
  const Tier* finest_tier() const {
    return tiers_.empty() ? nullptr : &tiers_.front();
  }

  /// Lossless reconstruction; fails once the raw tier has been purged.
  util::Result<hw::Capture> decode() const;

  /// Encoded footprint: chunk payloads + footers + tiers (what a disk file
  /// would hold; compare against CSV size for the compression ratio).
  std::size_t byte_size() const;

  std::string serialize() const;
  static util::Result<ChunkedCapture> deserialize(std::string_view bytes);

 private:
  util::TimePoint t0_;
  double sample_hz_ = 5000.0;
  double voltage_ = 0.0;
  std::size_t sample_count_ = 0;
  std::size_t chunk_samples_ = kDefaultChunkSamples;
  bool raw_available_ = true;
  std::vector<EncodedChunk> chunks_;
  std::vector<Tier> tiers_;
};

}  // namespace blab::store
