// Streaming statistics, empirical CDFs and histograms.
//
// These are the analysis primitives behind every figure in the paper:
// Figures 2, 4 and 5 are CDFs of sampled series; Figures 3 and 6 are
// mean +/- stddev bars.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace blab::util {

/// Compensated (Kahan–Neumaier) summation. Multi-hour captures accumulate
/// tens of millions of float samples; a naive accumulator loses low-order
/// bits long before that, a compensated one stays within one ulp of the
/// exact sum regardless of length.
class KahanSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  double value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical distribution over a collected sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  void add_all(const std::vector<double>& xs);
  /// Pre-size the sample buffer when the count is known (capture CDFs).
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;
  double min() const;
  double max() const;
  /// Empirical CDF value at x: P[X <= x].
  double at(double x) const;
  /// Fraction of samples strictly above x.
  double fraction_above(double x) const { return 1.0 - at(x); }

  /// Evenly spaced (value, cumulative-probability) points, ready to plot.
  std::vector<std::pair<double, double>> curve(std::size_t points = 100) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Trapezoidal integral of y(t) over irregularly spaced points; used to turn
/// current samples into charge (mAh) and power samples into energy.
double trapezoid_integral(const std::vector<double>& t,
                          const std::vector<double>& y);

}  // namespace blab::util
