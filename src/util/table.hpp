// Text tables and CSV output for benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper reports, using
// TextTable for the console and CsvWriter for machine-readable output.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace blab::util {

/// Column-aligned console table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with a header separator and column padding.
  void print(std::ostream& os) const;
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple RFC-4180-ish CSV writer (quotes fields containing separators).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  bool ok() const { return static_cast<bool>(out_); }
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ofstream out_;
};

std::string csv_escape(const std::string& field);

}  // namespace blab::util
