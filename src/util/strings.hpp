// Small string helpers used across modules (command parsing, config, output).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace blab::util {

std::vector<std::string> split(std::string_view s, char delim);
/// Split on runs of whitespace, dropping empty tokens (shell-style argv).
std::vector<std::string> split_ws(std::string_view s);
std::string_view trim(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
std::string to_lower(std::string_view s);
/// Fixed-precision double formatting, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double v, int precision);
/// "12.3 KB" / "4.0 MB" style byte formatting.
std::string format_bytes(double bytes);

}  // namespace blab::util
