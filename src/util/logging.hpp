// Minimal structured logging.
//
// The platform components (access server, controller, monitor) log through a
// global sink that tests can capture and benches can silence.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace blab::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Sink receives (level, component, message).
using LogSink =
    std::function<void(LogLevel, std::string_view, std::string_view)>;

class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  /// Replace the sink (default writes to stderr). Returns the previous sink.
  LogSink set_sink(LogSink sink);

  void log(LogLevel level, std::string_view component, std::string_view msg);
  bool enabled(LogLevel level) const { return level >= level_; }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  LogSink sink_;
};

/// Scoped capture of log lines, for tests.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  const std::vector<std::string>& lines() const { return lines_; }
  bool contains(std::string_view needle) const;

 private:
  std::vector<std::string> lines_;
  LogSink previous_;
  LogLevel previous_level_;
};

}  // namespace blab::util

#define BLAB_LOG(level, component, expr)                                   \
  do {                                                                     \
    if (::blab::util::Logger::global().enabled(level)) {                   \
      std::ostringstream blab_log_oss_;                                    \
      blab_log_oss_ << expr;                                               \
      ::blab::util::Logger::global().log(level, component,                 \
                                         blab_log_oss_.str());             \
    }                                                                      \
  } while (0)

#define BLAB_DEBUG(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kDebug, component, expr)
#define BLAB_INFO(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kInfo, component, expr)
#define BLAB_WARN(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kWarn, component, expr)
#define BLAB_ERROR(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kError, component, expr)
