// Minimal structured logging.
//
// The platform components (access server, controller, monitor) log through a
// global sink that tests can capture and benches can silence. Two forms:
//
//   BLAB_INFO("scheduler", "job finished id=" << id);           // string
//   BLAB_INFO_KV("scheduler", "job_finished", {"job", id});     // structured
//
// The structured form carries typed key=value fields into the sink so tests
// can match on fields instead of substrings; sinks that only understand the
// string form see the fields appended as " key=value".
//
// Thread safety: the parallel DST runner (`run_corpus --jobs=N`) logs from
// worker threads, so the level is an atomic and the sink is an immutable
// shared_ptr swapped under a mutex — a logging thread copies the pointer
// under the lock and invokes the sink outside it, so a concurrent
// set_sink/LogCapture install never races with an in-flight log call.
// LogCapture itself locks its line buffer, making it safe to install around
// a pooled corpus run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace blab::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// One structured field. Arithmetic values are rendered once, at the call
/// site, so sinks and captures only ever deal in strings.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key{k}, value{v} {}
  LogField(std::string_view k, const char* v) : key{k}, value{v} {}
  LogField(std::string_view k, const std::string& v) : key{k}, value{v} {}
  LogField(std::string_view k, bool v) : key{k}, value{v ? "true" : "false"} {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, bool>>>
  LogField(std::string_view k, T v) : key{k} {
    std::ostringstream oss;
    oss << v;
    value = oss.str();
  }
};
using LogFields = std::vector<LogField>;

/// A fully-rendered log event as seen by record sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view component;
  std::string_view message;
  const LogFields* fields = nullptr;  ///< nullptr when the call had none

  /// "message key=value key=value" — what legacy sinks receive.
  std::string flat() const;
};

/// Legacy sink: (level, component, flattened message).
using LogSink =
    std::function<void(LogLevel, std::string_view, std::string_view)>;
/// Structured sink: sees the fields before flattening.
using RecordSink = std::function<void(const LogRecord&)>;

class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replace the sink (default writes to stderr). Returns the previous
  /// legacy sink, empty if the previous sink was record-only.
  LogSink set_sink(LogSink sink);
  /// Replace the sink with a structured one.
  void set_record_sink(RecordSink sink);

  void log(LogLevel level, std::string_view component, std::string_view msg);
  void log(LogLevel level, std::string_view component, std::string_view msg,
           const LogFields& fields);
  bool enabled(LogLevel level) const { return level >= this->level(); }

 private:
  friend class LogCapture;

  // One installed sink: exactly one of the two callables is set. Immutable
  // after construction; swapped wholesale so readers need no lock to use it.
  struct SinkEntry {
    RecordSink record;
    LogSink legacy;
  };

  Logger();
  std::shared_ptr<const SinkEntry> entry() const;
  std::shared_ptr<const SinkEntry> swap_entry(
      std::shared_ptr<const SinkEntry> next);

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  mutable std::mutex mu_;
  std::shared_ptr<const SinkEntry> sink_;
};

/// Scoped capture of log lines, for tests. Thread-safe: may be installed
/// around a pooled corpus run and fed from worker threads.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// Snapshot of the captured lines ("LEVEL component: message k=v ...").
  /// Returns a copy — other threads may still be appending.
  std::vector<std::string> lines() const;
  std::size_t size() const;
  bool contains(std::string_view needle) const;
  /// True if any captured record carried field `key` with exactly `value`.
  bool has_field(std::string_view key, std::string_view value) const;

 private:
  struct Entry {
    std::string line;
    LogFields fields;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::shared_ptr<const Logger::SinkEntry> previous_;
  LogLevel previous_level_;
};

/// Once-per-key rate limiter for hot-path logging: `first(key)` is true the
/// first time a key is seen, false forever after. Keeps a pathological
/// scenario (e.g. thousands of past-t clamps from one call site) from
/// flooding the sink while still surfacing each distinct site once.
/// Thread-safe; keys are never forgotten, so use bounded key spaces
/// (call-site labels, metric names — not per-event ids).
class OncePerKey {
 public:
  bool first(std::string_view key);
  std::size_t seen() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::unordered_set<std::string> seen_;
};

}  // namespace blab::util

#define BLAB_LOG(level, component, expr)                                   \
  do {                                                                     \
    if (::blab::util::Logger::global().enabled(level)) {                   \
      std::ostringstream blab_log_oss_;                                    \
      blab_log_oss_ << expr;                                               \
      ::blab::util::Logger::global().log(level, component,                 \
                                         blab_log_oss_.str());             \
    }                                                                      \
  } while (0)

// Structured form: BLAB_LOG_KV(level, "scheduler", "job_started",
//                              {"job", id}, {"vp", vp});
#define BLAB_LOG_KV(level, component, msg, ...)                            \
  do {                                                                     \
    if (::blab::util::Logger::global().enabled(level)) {                   \
      ::blab::util::Logger::global().log(                                  \
          level, component, msg,                                           \
          ::blab::util::LogFields{__VA_ARGS__});                           \
    }                                                                      \
  } while (0)

#define BLAB_DEBUG(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kDebug, component, expr)
#define BLAB_INFO(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kInfo, component, expr)
#define BLAB_WARN(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kWarn, component, expr)
#define BLAB_ERROR(component, expr) \
  BLAB_LOG(::blab::util::LogLevel::kError, component, expr)

#define BLAB_DEBUG_KV(component, msg, ...) \
  BLAB_LOG_KV(::blab::util::LogLevel::kDebug, component, msg, __VA_ARGS__)
#define BLAB_INFO_KV(component, msg, ...) \
  BLAB_LOG_KV(::blab::util::LogLevel::kInfo, component, msg, __VA_ARGS__)
#define BLAB_WARN_KV(component, msg, ...) \
  BLAB_LOG_KV(::blab::util::LogLevel::kWarn, component, msg, __VA_ARGS__)
#define BLAB_ERROR_KV(component, msg, ...) \
  BLAB_LOG_KV(::blab::util::LogLevel::kError, component, msg, __VA_ARGS__)
