#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace blab::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

CsvWriter::CsvWriter(const std::string& path) : out_{path} {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << csv_escape(fields[i]);
  }
  out_ << "\n";
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace blab::util
