#include "util/strings.hpp"

#include "util/time.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace blab::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format_double(bytes, 1) + " " + units[u];
}

std::string to_string(Duration d) {
  const std::int64_t us = d.us();
  if (us < 0) return "-" + to_string(Duration::micros(-us));
  if (us < 1000) return std::to_string(us) + "us";
  if (us < 1000000) return format_double(static_cast<double>(us) / 1e3, 2) + "ms";
  return format_double(static_cast<double>(us) / 1e6, 3) + "s";
}

std::string to_string(TimePoint t) {
  return "t+" + to_string(t - TimePoint::epoch());
}

}  // namespace blab::util
