// Simulated-time types shared by every BatteryLab module.
//
// All simulation timestamps are integral microseconds since simulation start.
// A strong type (rather than a bare int64_t) keeps durations and instants from
// being mixed up and gives us checked arithmetic helpers.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace blab::util {

/// A duration in simulated time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) / k)};
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// An absolute instant in simulated time (microseconds since epoch 0).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_micros(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint epoch() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.us()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.us()}; }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::micros(us_ - o.us_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    us_ += d.us();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Human-readable rendering, e.g. "3.250s" or "125ms".
std::string to_string(Duration d);
std::string to_string(TimePoint t);

}  // namespace blab::util
