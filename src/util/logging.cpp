#include "util/logging.hpp"

#include <iostream>
#include <utility>
#include <vector>

namespace blab::util {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string LogRecord::flat() const {
  std::string out{message};
  if (fields != nullptr) {
    for (const LogField& f : *fields) {
      out += ' ';
      out += f.key;
      out += '=';
      out += f.value;
    }
  }
  return out;
}

Logger::Logger() {
  auto entry = std::make_shared<SinkEntry>();
  entry->legacy = [](LogLevel level, std::string_view component,
                     std::string_view msg) {
    std::cerr << "[" << log_level_name(level) << "] " << component << ": "
              << msg << "\n";
  };
  sink_ = std::move(entry);
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

std::shared_ptr<const Logger::SinkEntry> Logger::entry() const {
  std::lock_guard<std::mutex> lock{mu_};
  return sink_;
}

std::shared_ptr<const Logger::SinkEntry> Logger::swap_entry(
    std::shared_ptr<const SinkEntry> next) {
  std::lock_guard<std::mutex> lock{mu_};
  std::swap(sink_, next);
  return next;
}

LogSink Logger::set_sink(LogSink sink) {
  auto entry = std::make_shared<SinkEntry>();
  entry->legacy = std::move(sink);
  auto previous = swap_entry(std::move(entry));
  return previous != nullptr ? previous->legacy : LogSink{};
}

void Logger::set_record_sink(RecordSink sink) {
  auto entry = std::make_shared<SinkEntry>();
  entry->record = std::move(sink);
  swap_entry(std::move(entry));
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (!enabled(level)) return;
  auto sink = entry();
  if (sink == nullptr) return;
  if (sink->record) {
    LogRecord rec{level, component, msg, nullptr};
    sink->record(rec);
  } else if (sink->legacy) {
    sink->legacy(level, component, msg);
  }
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg, const LogFields& fields) {
  if (!enabled(level)) return;
  auto sink = entry();
  if (sink == nullptr) return;
  LogRecord rec{level, component, msg, &fields};
  if (sink->record) {
    sink->record(rec);
  } else if (sink->legacy) {
    sink->legacy(level, component, rec.flat());
  }
}

LogCapture::LogCapture() : previous_level_{Logger::global().level()} {
  Logger::global().set_level(LogLevel::kDebug);
  auto entry = std::make_shared<Logger::SinkEntry>();
  entry->record = [this](const LogRecord& rec) {
    Entry e;
    e.line = std::string{log_level_name(rec.level)} + " " +
             std::string{rec.component} + ": " + rec.flat();
    if (rec.fields != nullptr) e.fields = *rec.fields;
    std::lock_guard<std::mutex> lock{mu_};
    entries_.push_back(std::move(e));
  };
  previous_ = Logger::global().swap_entry(std::move(entry));
}

LogCapture::~LogCapture() {
  Logger::global().swap_entry(previous_);
  Logger::global().set_level(previous_level_);
}

std::vector<std::string> LogCapture::lines() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.line);
  return out;
}

std::size_t LogCapture::size() const {
  std::lock_guard<std::mutex> lock{mu_};
  return entries_.size();
}

bool LogCapture::contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock{mu_};
  for (const Entry& e : entries_) {
    if (e.line.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool LogCapture::has_field(std::string_view key, std::string_view value) const {
  std::lock_guard<std::mutex> lock{mu_};
  for (const Entry& e : entries_) {
    for (const LogField& f : e.fields) {
      if (f.key == key && f.value == value) return true;
    }
  }
  return false;
}

bool OncePerKey::first(std::string_view key) {
  std::lock_guard<std::mutex> lock{mu_};
  return seen_.emplace(key).second;
}

std::size_t OncePerKey::seen() const {
  std::lock_guard<std::mutex> lock{mu_};
  return seen_.size();
}

void OncePerKey::reset() {
  std::lock_guard<std::mutex> lock{mu_};
  seen_.clear();
}

}  // namespace blab::util
