#include "util/logging.hpp"

#include <iostream>
#include <vector>

namespace blab::util {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component, std::string_view msg) {
    std::cerr << "[" << log_level_name(level) << "] " << component << ": "
              << msg << "\n";
  };
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

LogSink Logger::set_sink(LogSink sink) {
  std::swap(sink_, sink);
  return sink;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (enabled(level) && sink_) sink_(level, component, msg);
}

LogCapture::LogCapture() : previous_level_{Logger::global().level()} {
  Logger::global().set_level(LogLevel::kDebug);
  previous_ = Logger::global().set_sink(
      [this](LogLevel level, std::string_view component, std::string_view msg) {
        lines_.push_back(std::string{log_level_name(level)} + " " +
                         std::string{component} + ": " + std::string{msg});
      });
}

LogCapture::~LogCapture() {
  Logger::global().set_sink(previous_);
  Logger::global().set_level(previous_level_);
}

bool LogCapture::contains(std::string_view needle) const {
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace blab::util
