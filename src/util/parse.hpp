// Strict, non-throwing numeric parsers for untrusted wire input.
//
// std::stod / std::stoull throw on malformed text and silently accept
// trailing garbage ("1.5abc" -> 1.5), both of which are wrong at a parse
// boundary that faces experimenter traffic. These helpers full-match the
// token with std::from_chars and return nullopt on anything else, so the
// caller decides the failure policy with a typed error instead of an
// exception escaping the event loop.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>

namespace blab::util {

/// Full-match unsigned decimal parse; nullopt on empty input, sign, spaces,
/// trailing garbage, or overflow.
inline std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

/// Full-match signed decimal parse with the same strictness.
inline std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

/// parse_i64 narrowed to int range.
inline std::optional<int> parse_int(std::string_view s) {
  const auto v = parse_i64(s);
  if (!v.has_value() || *v < INT32_MIN || *v > INT32_MAX) return std::nullopt;
  return static_cast<int>(*v);
}

/// Full-match floating-point parse. Accepts the usual fixed/scientific
/// forms; rejects hex floats, "nan"/"inf" spellings and anything that does
/// not consume the whole token. The result is always finite.
inline std::optional<double> parse_double(std::string_view s) {
  double v = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] =
      std::from_chars(begin, end, v, std::chars_format::general);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace blab::util
