#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace blab::util {
namespace {

// glibc's sincos computes both branches with the same argument reduction and
// polynomial kernels as the separate sin/cos entry points, so the results are
// bit-identical while costing ~one call instead of two. The unit test
// FillNormalMatchesScalarSequence pins this assumption: if a libm ever
// disagreed bitwise, that test (and the DST goldens) would fail loudly.
inline void sin_cos(double x, double& s, double& c) {
#if defined(__GLIBC__)
  ::sincos(x, &s, &c);
#else
  s = std::sin(x);
  c = std::cos(x);
#endif
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) {
  // Mix the label hash with fresh output so forks are decorrelated from both
  // each other and the parent's future stream.
  return Rng{next_u64() ^ fnv1a(label)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa for uniform doubles in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::fill_normal(std::span<double> out, double mean, double stddev) {
  std::size_t i = 0;
  const std::size_t n = out.size();
  if (i < n && has_cached_normal_) {
    has_cached_normal_ = false;
    out[i++] = mean + stddev * cached_normal_;
  }
  while (i < n) {
    // One Box-Muller pair, in the scalar draw order: the cosine branch is
    // emitted first, the sine branch second (or cached if the block ends on
    // an odd count, exactly like the scalar path).
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    double sin_t;
    double cos_t;
    sin_cos(theta, sin_t, cos_t);
    const double z_sin = r * sin_t;
    out[i++] = mean + stddev * (r * cos_t);
    if (i < n) {
      out[i++] = mean + stddev * z_sin;
    } else {
      cached_normal_ = z_sin;
      has_cached_normal_ = true;
    }
  }
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace blab::util
