#include "util/rng.hpp"

#include <cmath>

namespace blab::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// ---------------------------------------------------------------------------
// Ziggurat tables for the standard normal (256 layers, 52-bit mantissa
// variant). Layer 0 is the base strip whose overhang is the [r, inf) tail;
// layers 1..255 are rectangles of equal area kV stacked under
// f(x) = exp(-x^2/2). The accept test is integer-only: a draw at layer i is
// inside the strictly-under-the-curve part of its rectangle iff the 52-bit
// magnitude is below k[i], which happens for ~98.9% of draws and costs one
// u64, one table compare, and one multiply. w[i] converts the magnitude to
// x = rabs * w[i]; f[i] = f(x_i) feeds the wedge test on the slow path.
//
// The tables are a pure function of (kR, kV) and are rebuilt at process
// start; the statistical-quality suite in tests/util_test.cpp (moments, tail
// mass, chi-squared against the normal CDF) fails loudly on any table typo.
// ---------------------------------------------------------------------------

// Right edge of layer 1 / start of the tail, and the common layer area, for
// 256 layers: the canonical constants from Marsaglia & Tsang's setup solved
// at double precision.
constexpr double kZigR = 3.6541528853610088;
constexpr double kZigInvR = 1.0 / kZigR;
constexpr double kZigV = 0.00492867323399708743;
// Magnitudes carry 52 bits: the largest exactly-representable power of two
// below 2^53, so rabs * w stays exact-ish and the k compare is pure integer.
constexpr double kZigM = 4503599627370496.0;  // 2^52

struct ZigTables {
  std::uint64_t k[256];
  double w[256];
  double f[256];
};

ZigTables make_zig_tables() {
  ZigTables t;
  double dn = kZigR;
  double tn = kZigR;
  const double q = kZigV / std::exp(-0.5 * dn * dn);
  t.k[0] = static_cast<std::uint64_t>((dn / q) * kZigM);
  t.k[1] = 0;
  t.w[0] = q / kZigM;
  t.w[255] = dn / kZigM;
  t.f[0] = 1.0;
  t.f[255] = std::exp(-0.5 * dn * dn);
  for (int i = 254; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(kZigV / dn + std::exp(-0.5 * dn * dn)));
    t.k[i + 1] = static_cast<std::uint64_t>((dn / tn) * kZigM);
    tn = dn;
    t.f[i] = std::exp(-0.5 * dn * dn);
    t.w[i] = dn / kZigM;
  }
  return t;
}

const ZigTables kZig = make_zig_tables();

}  // namespace

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) {
  // Mix the label hash with fresh output so forks are decorrelated from both
  // each other and the parent's future stream.
  return Rng{next_u64() ^ fnv1a(label)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa for uniform doubles in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full [INT64_MIN, INT64_MAX]: every u64 maps to exactly one value.
    return static_cast<std::int64_t>(next_u64());
  }
  // Lemire's bounded rejection: map the draw through a 64x64->128 multiply;
  // the high word is uniform over [0, span) once draws landing in the biased
  // low-residue band (2^64 mod span values, < 1 in 2^32 for every span the
  // platform uses) are rejected and retried.
  unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(next_u64()) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(static_cast<std::uint64_t>(m >> 64));
}

bool Rng::normal_edge(unsigned layer, double x, bool negative, double& out) {
  if (layer == 0) {
    // Tail beyond r: Marsaglia's exponential rejection, exact for the
    // density conditioned on |x| > r. log1p(-u) keeps u == 0 finite.
    double xx, yy;
    do {
      xx = -kZigInvR * std::log1p(-uniform());
      yy = -std::log1p(-uniform());
    } while (yy + yy <= xx * xx);
    const double v = kZigR + xx;
    out = negative ? -v : v;
    return true;
  }
  // Wedge between the rectangle top and the curve: accept x with probability
  // proportional to how far under f(x) the vertical draw lands.
  if (kZig.f[layer] + uniform() * (kZig.f[layer - 1] - kZig.f[layer]) <
      std::exp(-0.5 * x * x)) {
    out = negative ? -x : x;
    return true;
  }
  return false;
}

double Rng::normal() {
  for (;;) {
    const std::uint64_t u = next_u64();
    const auto layer = static_cast<unsigned>(u & 0xFF);
    const bool negative = (u & 0x100) != 0;
    const std::uint64_t rabs = u >> 12;  // top 52 bits, disjoint from layer/sign
    const double x = static_cast<double>(rabs) * kZig.w[layer];
    if (rabs < kZig.k[layer]) [[likely]] {
      return negative ? -x : x;
    }
    double out;
    if (normal_edge(layer, x, negative, out)) return out;
  }
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::fill_normal(std::span<double> out, double mean, double stddev) {
  // Same sampler, same draw order: the loop body is normal() inlined so the
  // xoshiro state lives in registers across the block; only the rare edge
  // layers call out. Consumption counting is what keeps scalar and batched
  // streams bit-identical — each sample eats exactly the u64s its own
  // accept/reject path needs, regardless of how draws are grouped.
  for (double& slot : out) {
    double z;
    for (;;) {
      const std::uint64_t u = next_u64();
      const auto layer = static_cast<unsigned>(u & 0xFF);
      const bool negative = (u & 0x100) != 0;
      const std::uint64_t rabs = u >> 12;
      const double x = static_cast<double>(rabs) * kZig.w[layer];
      if (rabs < kZig.k[layer]) [[likely]] {
        z = negative ? -x : x;
        break;
      }
      if (normal_edge(layer, x, negative, z)) break;
    }
    slot = mean + stddev * z;
  }
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace blab::util
