// Strongly-typed integer identifiers.
//
// Each subsystem declares its own tag (DeviceId, JobId, ...) so that ids from
// different namespaces cannot be accidentally interchanged.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace blab::util {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value_{v} {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }
  static constexpr Id invalid() { return Id{}; }

  constexpr auto operator<=>(const Id&) const = default;

  std::string str() const { return std::to_string(value_); }

 private:
  static constexpr std::uint64_t kInvalid = 0;
  std::uint64_t value_ = kInvalid;
};

/// Monotonic id allocator; ids start at 1 so the default Id{} is never issued.
template <typename Tag>
class IdAllocator {
 public:
  Id<Tag> next() { return Id<Tag>{next_++}; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace blab::util

namespace std {
template <typename Tag>
struct hash<blab::util::Id<Tag>> {
  size_t operator()(const blab::util::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
