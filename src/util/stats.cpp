#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace blab::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Cdf::Cdf(std::vector<double> samples) : samples_{std::move(samples)}, sorted_{false} {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error{"quantile of empty Cdf"};
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / w);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double trapezoid_integral(const std::vector<double>& t,
                          const std::vector<double>& y) {
  assert(t.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    acc += 0.5 * (y[i] + y[i - 1]) * (t[i] - t[i - 1]);
  }
  return acc;
}

}  // namespace blab::util
