// Lightweight Result<T> for recoverable errors.
//
// BatteryLab platform operations (scheduling, authorization, device control)
// fail for ordinary reasons — unauthorized user, busy device, disconnected
// vantage point. Those are modeled as values, not exceptions; exceptions are
// reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace blab::util {

/// Error category for platform operations.
enum class ErrorCode {
  kUnknown,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,
  kUnavailable,
  kAlreadyExists,
  kFailedPrecondition,
  kTimeout,
  kResourceExhausted,
  kUnsupported,
};

const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;

  std::string str() const {
    return std::string{error_code_name(code)} + ": " + message;
  }
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "UNKNOWN";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
  }
  return "?";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_{std::move(value)} {}  // NOLINT: implicit by design
  Result(Error error) : error_{std::move(error)} {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result specialization for operations without a payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_{std::move(error)} {}  // NOLINT

  static Status ok_status() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }
  std::string str() const { return ok() ? "OK" : error().str(); }

 private:
  std::optional<Error> error_;
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace blab::util
