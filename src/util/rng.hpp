// Deterministic random number generation.
//
// Every experiment in the repo takes an explicit seed; all stochastic behaviour
// (power-draw jitter, network jitter, page-content variation) flows through a
// Rng instance so runs are exactly reproducible. The generator is
// xoshiro256++, seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace blab::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent child stream, e.g. one per device or per service,
  /// so adding consumers does not perturb other consumers' draws.
  Rng fork(std::string_view label);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive, bias-free (Lemire bounded
  /// rejection: one 64x64->128 multiply in the common case, a rare extra
  /// draw when the first lands in the biased residue of the span).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via a 256-layer ziggurat (McFarland/Marsaglia-Tsang
  /// layout). ~98.9% of draws consume exactly one u64 and cost a table
  /// lookup plus a multiply; the wedge and tail layers live in a cold
  /// function. The generator holds no cross-call sampler state: every draw
  /// consumes the same u64 sequence whether issued scalar or batched.
  double normal();
  double normal(double mean, double stddev);
  /// Fill `out` with normal(mean, stddev) draws. Guaranteed to produce the
  /// exact scalar sequence: fill_normal over n values consumes the generator
  /// identically to n calls of normal(mean, stddev), bit for bit — and any
  /// split of n into consecutive fills produces the same stream, so
  /// block-wise capture synthesis is free to choose its block size. The win
  /// is mechanical: one call per block, generator state kept in registers.
  void fill_normal(std::span<double> out, double mean, double stddev);
  /// Log-normal with given *linear-space* median and sigma of underlying normal.
  double lognormal_median(double median, double sigma);
  /// Exponential with given mean.
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);
  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

 private:
  /// Cold path for the ~1.1% of ziggurat draws that fall outside the
  /// all-rectangle fast accept: the wedge test for layers 1..255 and the
  /// Marsaglia exponential-rejection tail for layer 0. Returns true with the
  /// sample in `out`, or false when the wedge rejects and the caller must
  /// redraw.
  bool normal_edge(unsigned layer, double x, bool negative, double& out);

  std::uint64_t s_[4];
};

/// Stable 64-bit FNV-1a hash, used for fork labels and content hashing.
std::uint64_t fnv1a(std::string_view data);

}  // namespace blab::util
