#include "server/job.hpp"

namespace blab::server {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kCreated: return "created";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kAborted: return "aborted";
  }
  return "?";
}

void JobWorkspace::log(const std::string& line) { logs_.push_back(line); }

void JobWorkspace::store_artifact(const std::string& name,
                                  std::string content) {
  artifacts_[name] = std::move(content);
}

void JobWorkspace::record_capture(const store::CaptureId& id) {
  captures_.push_back(id);
}

void JobWorkspace::purge() {
  logs_.clear();
  artifacts_.clear();
  purged_ = true;
}

}  // namespace blab::server
