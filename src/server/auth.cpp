#include "server/auth.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace blab::server {

const char* role_name(Role role) {
  switch (role) {
    case Role::kAdmin: return "admin";
    case Role::kExperimenter: return "experimenter";
    case Role::kTester: return "tester";
  }
  return "?";
}

const char* permission_name(Permission p) {
  switch (p) {
    case Permission::kCreateJob: return "create_job";
    case Permission::kEditJob: return "edit_job";
    case Permission::kRunJob: return "run_job";
    case Permission::kApprovePipeline: return "approve_pipeline";
    case Permission::kManageVantagePoints: return "manage_vantage_points";
    case Permission::kViewConsole: return "view_console";
    case Permission::kInteractiveSession: return "interactive_session";
  }
  return "?";
}

AuthorizationMatrix::AuthorizationMatrix() {
  // Platform defaults. Testers only get the shared interactive session —
  // they interact with a device page, never with Jenkins itself.
  for (Permission p :
       {Permission::kCreateJob, Permission::kEditJob, Permission::kRunJob,
        Permission::kApprovePipeline, Permission::kManageVantagePoints,
        Permission::kViewConsole, Permission::kInteractiveSession}) {
    grant(Role::kAdmin, p);
  }
  for (Permission p : {Permission::kCreateJob, Permission::kEditJob,
                       Permission::kRunJob, Permission::kViewConsole,
                       Permission::kInteractiveSession}) {
    grant(Role::kExperimenter, p);
  }
  grant(Role::kTester, Permission::kInteractiveSession);
}

void AuthorizationMatrix::grant(Role role, Permission p) {
  grants_[static_cast<int>(role)].insert(static_cast<int>(p));
}

void AuthorizationMatrix::revoke(Role role, Permission p) {
  const auto it = grants_.find(static_cast<int>(role));
  if (it != grants_.end()) it->second.erase(static_cast<int>(p));
}

bool AuthorizationMatrix::allows(Role role, Permission p) const {
  const auto it = grants_.find(static_cast<int>(role));
  return it != grants_.end() && it->second.contains(static_cast<int>(p));
}

UserDirectory::UserDirectory(std::uint64_t seed) : token_counter_{seed} {}

util::Result<std::string> UserDirectory::register_user(
    const std::string& username, Role role) {
  if (username.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "empty username");
  }
  if (users_.contains(username)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            username + " already registered");
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "tok-%016llx",
                static_cast<unsigned long long>(
                    util::fnv1a(username) ^ ++token_counter_ * 0x9E3779B9ULL));
  User user{username, role, buf, true};
  tokens_[user.api_token] = username;
  users_[username] = std::move(user);
  return std::string{buf};
}

util::Status UserDirectory::disable_user(const std::string& username) {
  const auto it = users_.find(username);
  if (it == users_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            username + " not registered");
  }
  it->second.enabled = false;
  return util::Status::ok_status();
}

util::Result<const User*> UserDirectory::authenticate(
    const std::string& token) const {
  const auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "invalid token");
  }
  const User& user = users_.at(it->second);
  if (!user.enabled) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "account disabled");
  }
  return &user;
}

const User* UserDirectory::find(const std::string& username) const {
  const auto it = users_.find(username);
  return it == users_.end() ? nullptr : &it->second;
}

util::Status UserDirectory::authorize(const std::string& token, Permission p,
                                      bool over_https) const {
  if (!over_https) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "console only reachable over HTTPS");
  }
  auto user = authenticate(token);
  if (!user.ok()) return user.error();
  if (!matrix_.allows(user.value()->role, p)) {
    return util::make_error(
        util::ErrorCode::kPermissionDenied,
        std::string{role_name(user.value()->role)} + " lacks " +
            permission_name(p));
  }
  return util::Status::ok_status();
}

}  // namespace blab::server
