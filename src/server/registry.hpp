// Vantage-point registry and onboarding (§3.4).
//
// Joining members follow the tutorial: the node gets a DNS label, the access
// server's public key is installed on the controller, the node's IP is
// whitelisted, and an administrator approves it. Only approved nodes are
// schedulable.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "api/vantage_point.hpp"
#include "net/dns.hpp"
#include "util/result.hpp"

namespace blab::server {

enum class NodeState { kPending, kApproved, kRetired };

const char* node_state_name(NodeState state);

struct NodeRecord {
  std::string label;            ///< DNS label, e.g. "node1"
  std::string controller_host;  ///< network identity of the Pi
  std::string host_owner;       ///< member account that contributed the node
  NodeState state = NodeState::kPending;
  bool ssh_key_installed = false;
  bool ip_whitelisted = false;
  api::VantagePoint* vantage_point = nullptr;  ///< non-owning
};

class VantagePointRegistry {
 public:
  explicit VantagePointRegistry(net::DnsRegistry& dns);

  /// Step 1 of onboarding: announce the node (state: pending). `owner` is
  /// the member account contributing the hardware (may be empty).
  util::Status register_node(const std::string& label, api::VantagePoint* vp,
                             const std::string& owner = {});
  /// Step 2: mark the access server's pubkey installed on the controller.
  util::Status mark_key_installed(const std::string& label);
  /// Step 3: whitelist the controller's address for SSH.
  util::Status mark_ip_whitelisted(const std::string& label);
  /// Step 4: admin approval; registers DNS and makes the node schedulable.
  util::Status approve(const std::string& label);
  util::Status retire(const std::string& label);

  const NodeRecord* find(const std::string& label) const;
  api::VantagePoint* vantage_point(const std::string& label);
  std::vector<std::string> approved_labels() const;
  /// Every registered label regardless of state, sorted (oracle sweeps).
  std::vector<std::string> all_labels() const;
  std::size_t node_count() const { return nodes_.size(); }

 private:
  net::DnsRegistry& dns_;
  std::unordered_map<std::string, NodeRecord> nodes_;
};

}  // namespace blab::server
