// Standing maintenance jobs (§3.1).
//
// "We have developed several jobs which manage the vantage points. These
// jobs span from updating BatteryLab wildcard certificates, to ensure the
// power meter is not active when not needed (for safety reasons), or to
// factory reset a device."
#pragma once

#include <string>

#include "server/access_server.hpp"
#include "server/job.hpp"

namespace blab::server {

/// Renew the wildcard certificate when due and redeploy it to every approved
/// vantage point. Targets no device; constraints pin it to `node_label` only
/// so the scheduler has an assignment to run it under.
Job make_cert_renewal_job(AccessServer& server);

/// Safety: if no measurement is running, make sure the Monsoon's power
/// socket is off.
Job make_monitor_safety_job();

/// Factory reset: force-stop and clear every installed package on the
/// job's assigned device, then verify it responds over ADB.
Job make_factory_reset_job();

/// Capture retention sweep: apply the CaptureStore's TTL policy (raw chunk
/// payloads expire first, summary tiers later) and age out job workspaces
/// that outlived the store's summary TTL.
Job make_capture_retention_job(AccessServer& server);

/// Scheduled PersistEngine checkpoint (cause=scheduled): fold every shard's
/// WAL into segments on a sim-time cadence instead of waiting for byte
/// pressure. Consults the health engine when enabled — an unhealthy fleet
/// defers the fold to the next cadence tick.
Job make_persist_checkpoint_job(AccessServer& server);

/// Evaluate every SLO against the live metrics registry at the current sim
/// time, advancing burn-rate alerts and the per-vantage health states that
/// GET /health serves.
Job make_health_evaluation_job(AccessServer& server);

}  // namespace blab::server
