// Users, roles and the role-based authorization matrix (§3.1).
//
// "Only the experimenters that have been granted access to the platform can
// create, edit or run jobs and every pipeline change has to be approved by
// an administrator. This is done via a role-based authorization matrix."
// The web console is HTTPS-only; API access uses per-user tokens.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/result.hpp"

namespace blab::server {

enum class Role { kAdmin, kExperimenter, kTester };

const char* role_name(Role role);

enum class Permission {
  kCreateJob,
  kEditJob,
  kRunJob,
  kApprovePipeline,
  kManageVantagePoints,
  kViewConsole,
  kInteractiveSession,  ///< remote-control a mirrored device
};

const char* permission_name(Permission p);

struct User {
  std::string username;
  Role role = Role::kTester;
  std::string api_token;
  bool enabled = true;
};

/// Default matrix: deny unless the role explicitly grants the permission.
class AuthorizationMatrix {
 public:
  AuthorizationMatrix();  ///< installs the platform defaults

  void grant(Role role, Permission p);
  void revoke(Role role, Permission p);
  bool allows(Role role, Permission p) const;

 private:
  std::unordered_map<int, std::unordered_set<int>> grants_;
};

class UserDirectory {
 public:
  explicit UserDirectory(std::uint64_t seed = 7);

  util::Result<std::string> register_user(const std::string& username,
                                          Role role);  ///< returns API token
  util::Status disable_user(const std::string& username);
  util::Result<const User*> authenticate(const std::string& token) const;
  const User* find(const std::string& username) const;
  std::size_t user_count() const { return users_.size(); }

  /// Combined check: token valid, user enabled, role allows permission, and
  /// the transport is HTTPS (the console refuses plain HTTP).
  util::Status authorize(const std::string& token, Permission p,
                         bool over_https = true) const;

  AuthorizationMatrix& matrix() { return matrix_; }
  const AuthorizationMatrix& matrix() const { return matrix_; }

 private:
  std::unordered_map<std::string, User> users_;  // by username
  std::unordered_map<std::string, std::string> tokens_;  // token -> username
  AuthorizationMatrix matrix_;
  std::uint64_t token_counter_;
};

}  // namespace blab::server
