#include "server/access_server.hpp"

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace blab::server {

AccessServer::AccessServer(sim::Simulator& sim, net::Network& net,
                           std::string host)
    : sim_{sim},
      net_{net},
      host_{std::move(host)},
      registry_{dns_},
      scheduler_{sim, registry_},
      testers_{users_, &credits_},
      ssh_key_{net::SshKeyPair::generate("batterylab-access-server")},
      ssh_client_{net, host_, ssh_key_} {
  net_.add_host(host_);
  (void)certs_.issue(sim_.now());
  scheduler_.attach_capture_store(&capture_store_);
  capture_store_.attach_metrics(&sim_.metrics());
  capture_store_.attach_tracer(&sim_.tracer());
}

std::string AccessServer::metrics_text() const {
  return obs::encode_prometheus(sim_.metrics().snapshot());
}

void AccessServer::enable_credit_enforcement(CreditPolicy policy) {
  credit_policy_ = policy;
  scheduler_.attach_credits(&credits_, policy);
}

util::Status AccessServer::enable_persistence(
    const std::string& dir, store::persist::PersistOptions options) {
  if (persist_ != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "persistence already enabled at " +
                                persist_->dir());
  }
  auto engine =
      std::make_unique<store::persist::PersistEngine>(dir, options);
  if (auto st = engine->open(); !st.ok()) return st;
  persist_ = std::move(engine);
  persist_->attach_metrics(&sim_.metrics());
  capture_store_.attach_persistence(persist_.get());
  BLAB_INFO("access-server",
            "persistence enabled at " << dir << ": recovered "
                                      << persist_->stats().recovered_records
                                      << " record(s) across "
                                      << persist_->shard_count()
                                      << " shard(s)");
  return util::Status::ok_status();
}

util::Status AccessServer::onboard_vantage_point(
    const std::string& label, api::VantagePoint& vp,
    const std::string& host_owner) {
  if (auto st = registry_.register_node(label, &vp, host_owner); !st.ok()) {
    return st;
  }

  // Reachability: the controller must be on the public network. Give it an
  // internet-grade link to the access server if none exists yet.
  if (net_.path(host_, vp.controller_host()).empty()) {
    net::LinkSpec wan;
    wan.latency = util::Duration::millis(12);
    wan.bandwidth_ab_mbps = 500.0;
    wan.bandwidth_ba_mbps = 500.0;
    net_.add_link(host_, vp.controller_host(), wan);
  }

  // §3.4: grant pubkey access and whitelist the access server's address.
  vp.controller().ssh_server().authorize_key(ssh_key_.public_key);
  vp.controller().ssh_server().whitelist_source(host_);
  if (auto st = registry_.mark_key_installed(label); !st.ok()) return st;
  if (auto st = registry_.mark_ip_whitelisted(label); !st.ok()) return st;

  // Wildcard certificate deployment precedes DNS visibility.
  if (certs_.needs_renewal(sim_.now())) (void)certs_.issue(sim_.now());
  if (auto st = certs_.deploy_to(label, sim_.now()); !st.ok()) return st;

  if (auto st = registry_.approve(label); !st.ok()) return st;
  // Sharing resources earns access (§5).
  if (credit_policy_.has_value() && !host_owner.empty()) {
    if (!credits_.has_account(host_owner)) {
      (void)credits_.open_account(host_owner);
    }
    (void)credits_.deposit(host_owner, credit_policy_->hosting_bonus,
                           "hosting bonus for " + label, sim_.now());
  }
  BLAB_INFO("access-server", label << " onboarded -> https://" << label
                                   << "." << dns_.zone());
  return util::Status::ok_status();
}

util::Result<JobId> AccessServer::submit_job(const std::string& token,
                                             Job job) {
  if (auto st = users_.authorize(token, Permission::kCreateJob); !st.ok()) {
    return st.error();
  }
  auto user = users_.authenticate(token);
  job.owner = user.value()->username;
  return scheduler_.submit(std::move(job));
}

util::Result<JobId> AccessServer::resubmit_job(const std::string& token,
                                               JobId id) {
  if (auto st = users_.authorize(token, Permission::kCreateJob); !st.ok()) {
    return st.error();
  }
  auto user = users_.authenticate(token);
  const Job* pred = scheduler_.find(id);
  if (pred == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "unknown job");
  }
  if (pred->owner != user.value()->username &&
      user.value()->role != Role::kAdmin) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "only the job owner or an admin may resubmit");
  }
  return scheduler_.resubmit(id);
}

util::Status AccessServer::approve_pipeline(const std::string& admin_token,
                                            JobId id) {
  if (auto st = users_.authorize(admin_token, Permission::kApprovePipeline);
      !st.ok()) {
    return st;
  }
  return scheduler_.approve_pipeline(id);
}

util::Result<std::size_t> AccessServer::run_queue(const std::string& token) {
  if (auto st = users_.authorize(token, Permission::kRunJob); !st.ok()) {
    return st.error();
  }
  return scheduler_.dispatch_pending();
}

std::size_t AccessServer::schedule_recurring(std::function<Job()> generator,
                                             util::Duration period) {
  auto task = std::make_unique<sim::PeriodicTask>(
      sim_, period, [this, generator = std::move(generator)] {
        Job job = generator();
        const JobId id = scheduler_.submit(std::move(job));
        (void)scheduler_.approve_pipeline(id);  // admin-blessed template
        (void)scheduler_.dispatch_pending();
      });
  task->start();
  recurring_.push_back(std::move(task));
  return recurring_.size() - 1;
}

void AccessServer::stop_recurring(std::size_t handle) {
  if (handle < recurring_.size() && recurring_[handle] != nullptr) {
    recurring_[handle]->stop();
  }
}

util::Result<net::SshCommandResult> AccessServer::ssh_exec(
    const std::string& label, const std::string& command) {
  const NodeRecord* node = registry_.find(label);
  if (node == nullptr || node->state != NodeState::kApproved) {
    return util::make_error(util::ErrorCode::kNotFound,
                            label + " is not an approved vantage point");
  }
  return ssh_client_.exec_sync(
      net::Address{node->controller_host, net::kSshPort}, command);
}

}  // namespace blab::server
