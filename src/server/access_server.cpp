#include "server/access_server.hpp"

#include "device/device.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "server/maintenance.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace blab::server {

AccessServer::AccessServer(sim::Simulator& sim, net::Network& net,
                           std::string host)
    : sim_{sim},
      net_{net},
      host_{std::move(host)},
      registry_{dns_},
      scheduler_{sim, registry_},
      testers_{users_, &credits_},
      ssh_key_{net::SshKeyPair::generate("batterylab-access-server")},
      ssh_client_{net, host_, ssh_key_} {
  net_.add_host(host_);
  (void)certs_.issue(sim_.now());
  scheduler_.attach_capture_store(&capture_store_);
  capture_store_.attach_metrics(&sim_.metrics());
  capture_store_.attach_tracer(&sim_.tracer());
}

std::string AccessServer::metrics_text() const {
  return obs::encode_prometheus(sim_.metrics().snapshot());
}

void AccessServer::enable_credit_enforcement(CreditPolicy policy) {
  credit_policy_ = policy;
  scheduler_.attach_credits(&credits_, policy);
}

util::Status AccessServer::enable_persistence(
    const std::string& dir, store::persist::PersistOptions options) {
  if (persist_ != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "persistence already enabled at " +
                                persist_->dir());
  }
  auto engine =
      std::make_unique<store::persist::PersistEngine>(dir, options);
  if (auto st = engine->open(); !st.ok()) return st;
  persist_ = std::move(engine);
  persist_->attach_metrics(&sim_.metrics());
  capture_store_.attach_persistence(persist_.get());
  BLAB_INFO("access-server",
            "persistence enabled at " << dir << ": recovered "
                                      << persist_->stats().recovered_records
                                      << " record(s) across "
                                      << persist_->shard_count()
                                      << " shard(s)");
  return util::Status::ok_status();
}

health::CaptureContext AccessServer::resolve_capture_context(
    const std::string& workspace) {
  health::CaptureContext ctx;
  for (const Job* job : scheduler_.all_jobs()) {
    if (job->id.str() != workspace) continue;
    ctx.vantage = job->assigned_node;
    ctx.owner = job->owner;
    if (!job->assigned_device.empty()) {
      api::VantagePoint* vp = registry_.vantage_point(job->assigned_node);
      auto* dev =
          vp == nullptr ? nullptr : vp->find_device(job->assigned_device);
      if (dev != nullptr) {
        ctx.device_class =
            std::string{device::platform_name(dev->spec().platform)} + "-" +
            device::device_class_name(dev->spec().device_class);
      }
    }
    break;
  }
  return ctx;
}

util::Status AccessServer::enable_health() {
  if (slo_ != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "health engine already enabled");
  }
  rollup_ = std::make_unique<health::RollupEngine>(capture_store_);
  rollup_->attach_metrics(&sim_.metrics());
  rollup_->set_context_resolver([this](const std::string& workspace) {
    return resolve_capture_context(workspace);
  });

  slo_ = std::make_unique<health::SloEngine>(sim_.metrics(), &sim_.tracer());
  for (health::SloSpec& spec :
       health::default_slo_specs(registry_.approved_labels())) {
    slo_->add_spec(std::move(spec));
  }

  health_rest_ =
      std::make_unique<controller::RestBackend>(net_, host_, kHealthPort);
  health_rest_->register_endpoint(
      "rollup",
      [this](const std::string& query) -> util::Result<std::string> {
        const auto params = controller::parse_query(query);
        auto scope = health::RollupScope::kFleet;
        if (const auto it = params.find("scope"); it != params.end()) {
          const auto parsed = health::parse_rollup_scope(it->second);
          if (!parsed.has_value()) {
            return util::make_error(util::ErrorCode::kInvalidArgument,
                                    "scope must be fleet, job or vantage");
          }
          scope = *parsed;
        }
        auto t0 = util::TimePoint::epoch();
        auto t1 = util::TimePoint::max();
        if (const auto it = params.find("t0_us"); it != params.end()) {
          const auto us = util::parse_u64(it->second);
          if (!us.has_value()) {
            return util::make_error(util::ErrorCode::kInvalidArgument,
                                    "t0_us must be unsigned microseconds");
          }
          t0 = util::TimePoint::from_micros(static_cast<std::int64_t>(*us));
        }
        if (const auto it = params.find("t1_us"); it != params.end()) {
          const auto us = util::parse_u64(it->second);
          if (!us.has_value()) {
            return util::make_error(util::ErrorCode::kInvalidArgument,
                                    "t1_us must be unsigned microseconds");
          }
          t1 = util::TimePoint::from_micros(static_cast<std::int64_t>(*us));
        }
        return health::encode_rollup_json(rollup_->compute(scope, t0, t1));
      });
  health_rest_->register_endpoint(
      "health", [this](const std::string&) -> util::Result<std::string> {
        return health::encode_health_json(*slo_);
      });

  BLAB_INFO("access-server", "health engine enabled: "
                                 << slo_->spec_count() << " SLO spec(s), "
                                 << "REST on port " << kHealthPort);
  return util::Status::ok_status();
}

util::Result<std::size_t> AccessServer::schedule_persist_checkpoints(
    util::Duration period) {
  if (persist_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "persistence not enabled");
  }
  return schedule_recurring([this] { return make_persist_checkpoint_job(*this); },
                            period);
}

util::Result<std::size_t> AccessServer::schedule_health_evaluations(
    util::Duration period) {
  if (slo_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "health engine not enabled");
  }
  return schedule_recurring(
      [this] { return make_health_evaluation_job(*this); }, period);
}

util::Status AccessServer::onboard_vantage_point(
    const std::string& label, api::VantagePoint& vp,
    const std::string& host_owner) {
  if (auto st = registry_.register_node(label, &vp, host_owner); !st.ok()) {
    return st;
  }

  // Reachability: the controller must be on the public network. Give it an
  // internet-grade link to the access server if none exists yet.
  if (net_.path(host_, vp.controller_host()).empty()) {
    net::LinkSpec wan;
    wan.latency = util::Duration::millis(12);
    wan.bandwidth_ab_mbps = 500.0;
    wan.bandwidth_ba_mbps = 500.0;
    net_.add_link(host_, vp.controller_host(), wan);
  }

  // §3.4: grant pubkey access and whitelist the access server's address.
  vp.controller().ssh_server().authorize_key(ssh_key_.public_key);
  vp.controller().ssh_server().whitelist_source(host_);
  if (auto st = registry_.mark_key_installed(label); !st.ok()) return st;
  if (auto st = registry_.mark_ip_whitelisted(label); !st.ok()) return st;

  // Wildcard certificate deployment precedes DNS visibility.
  if (certs_.needs_renewal(sim_.now())) (void)certs_.issue(sim_.now());
  if (auto st = certs_.deploy_to(label, sim_.now()); !st.ok()) return st;

  if (auto st = registry_.approve(label); !st.ok()) return st;
  // Sharing resources earns access (§5).
  if (credit_policy_.has_value() && !host_owner.empty()) {
    if (!credits_.has_account(host_owner)) {
      (void)credits_.open_account(host_owner);
    }
    (void)credits_.deposit(host_owner, credit_policy_->hosting_bonus,
                           "hosting bonus for " + label, sim_.now());
  }
  BLAB_INFO("access-server", label << " onboarded -> https://" << label
                                   << "." << dns_.zone());
  return util::Status::ok_status();
}

util::Result<JobId> AccessServer::submit_job(const std::string& token,
                                             Job job) {
  if (auto st = users_.authorize(token, Permission::kCreateJob); !st.ok()) {
    return st.error();
  }
  auto user = users_.authenticate(token);
  job.owner = user.value()->username;
  return scheduler_.submit(std::move(job));
}

util::Result<JobId> AccessServer::resubmit_job(const std::string& token,
                                               JobId id) {
  if (auto st = users_.authorize(token, Permission::kCreateJob); !st.ok()) {
    return st.error();
  }
  auto user = users_.authenticate(token);
  const Job* pred = scheduler_.find(id);
  if (pred == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "unknown job");
  }
  if (pred->owner != user.value()->username &&
      user.value()->role != Role::kAdmin) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "only the job owner or an admin may resubmit");
  }
  return scheduler_.resubmit(id);
}

util::Status AccessServer::approve_pipeline(const std::string& admin_token,
                                            JobId id) {
  if (auto st = users_.authorize(admin_token, Permission::kApprovePipeline);
      !st.ok()) {
    return st;
  }
  return scheduler_.approve_pipeline(id);
}

util::Result<std::size_t> AccessServer::run_queue(const std::string& token) {
  if (auto st = users_.authorize(token, Permission::kRunJob); !st.ok()) {
    return st.error();
  }
  return scheduler_.dispatch_pending();
}

std::size_t AccessServer::schedule_recurring(std::function<Job()> generator,
                                             util::Duration period) {
  auto task = std::make_unique<sim::PeriodicTask>(
      sim_, period, [this, generator = std::move(generator)] {
        Job job = generator();
        const JobId id = scheduler_.submit(std::move(job));
        (void)scheduler_.approve_pipeline(id);  // admin-blessed template
        (void)scheduler_.dispatch_pending();
      });
  task->start();
  recurring_.push_back(std::move(task));
  return recurring_.size() - 1;
}

void AccessServer::stop_recurring(std::size_t handle) {
  if (handle < recurring_.size() && recurring_[handle] != nullptr) {
    recurring_[handle]->stop();
  }
}

util::Result<net::SshCommandResult> AccessServer::ssh_exec(
    const std::string& label, const std::string& command) {
  const NodeRecord* node = registry_.find(label);
  if (node == nullptr || node->state != NodeState::kApproved) {
    return util::make_error(util::ErrorCode::kNotFound,
                            label + " is not an approved vantage point");
  }
  return ssh_client_.exec_sync(
      net::Address{node->controller_host, net::kSshPort}, command);
}

}  // namespace blab::server
