#include "server/credits.hpp"

namespace blab::server {

util::Status CreditLedger::open_account(const std::string& user,
                                        double initial) {
  if (user.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "empty account name");
  }
  if (balances_.contains(user)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            user + " already has an account");
  }
  balances_[user] = initial;
  return util::Status::ok_status();
}

bool CreditLedger::has_account(const std::string& user) const {
  return balances_.contains(user);
}

util::Result<double> CreditLedger::balance(const std::string& user) const {
  const auto it = balances_.find(user);
  if (it == balances_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            user + " has no credit account");
  }
  return it->second;
}

util::Status CreditLedger::deposit(const std::string& user, double amount,
                                   const std::string& reason,
                                   util::TimePoint at) {
  if (amount < 0.0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "negative deposit");
  }
  const auto it = balances_.find(user);
  if (it == balances_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            user + " has no credit account");
  }
  it->second += amount;
  history_.push_back({user, amount, reason, at});
  return util::Status::ok_status();
}

util::Status CreditLedger::charge(const std::string& user, double amount,
                                  const std::string& reason,
                                  util::TimePoint at) {
  if (amount < 0.0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "negative charge");
  }
  const auto it = balances_.find(user);
  if (it == balances_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            user + " has no credit account");
  }
  if (it->second < amount) {
    return util::make_error(
        util::ErrorCode::kResourceExhausted,
        user + " has " + std::to_string(it->second) + " credits, needs " +
            std::to_string(amount));
  }
  it->second -= amount;
  history_.push_back({user, -amount, reason, at});
  return util::Status::ok_status();
}

bool CreditLedger::can_afford(const std::string& user, double amount) const {
  const auto it = balances_.find(user);
  return it != balances_.end() && it->second >= amount;
}

std::vector<CreditTransaction> CreditLedger::history_of(
    const std::string& user) const {
  std::vector<CreditTransaction> out;
  for (const auto& t : history_) {
    if (t.account == user) out.push_back(t);
  }
  return out;
}

}  // namespace blab::server
