#include "server/maintenance.hpp"

#include "util/strings.hpp"

namespace blab::server {

Job make_cert_renewal_job(AccessServer& server) {
  Job job;
  job.name = "maintenance/cert-renewal";
  job.constraints.needs_device = false;
  job.script = [&server](JobContext& ctx) -> util::Status {
    auto& certs = server.certs();
    const auto now = server.simulator().now();
    if (certs.needs_renewal(now)) {
      const auto& cert = certs.issue(now);
      ctx.workspace->log("issued certificate serial " +
                         std::to_string(cert.serial));
    } else {
      ctx.workspace->log("certificate still fresh");
    }
    std::size_t deployed = 0;
    for (const auto& label : server.registry().approved_labels()) {
      if (!certs.node_current(label)) {
        if (auto st = certs.deploy_to(label, now); !st.ok()) return st;
        ctx.workspace->log("deployed to " + label);
        ++deployed;
      }
    }
    ctx.workspace->log("deployments: " + std::to_string(deployed));
    return util::Status::ok_status();
  };
  return job;
}

Job make_monitor_safety_job() {
  Job job;
  job.name = "maintenance/monitor-safety";
  job.constraints.needs_device = false;
  job.script = [](JobContext& ctx) -> util::Status {
    if (ctx.api->monitoring()) {
      ctx.workspace->log("measurement in progress; leaving monitor on");
      return util::Status::ok_status();
    }
    if (ctx.api->monitor_powered()) {
      if (auto st = ctx.api->power_monitor(); !st.ok()) return st;
      ctx.workspace->log("monitor was idle and powered; switched off");
    } else {
      ctx.workspace->log("monitor already off");
    }
    return util::Status::ok_status();
  };
  return job;
}

Job make_factory_reset_job() {
  Job job;
  job.name = "maintenance/factory-reset";
  job.script = [](JobContext& ctx) -> util::Status {
    auto packages =
        ctx.api->execute_adb(ctx.device_serial, "pm list packages");
    if (!packages.ok()) return packages.error();
    int cleared = 0;
    for (const auto& line : util::split(packages.value(), '\n')) {
      if (!util::starts_with(line, "package:")) continue;
      const std::string pkg{util::trim(line.substr(8))};
      if (pkg.empty()) continue;
      (void)ctx.api->execute_adb(ctx.device_serial, "am force-stop " + pkg);
      if (ctx.api->execute_adb(ctx.device_serial, "pm clear " + pkg).ok()) {
        ++cleared;
      }
    }
    ctx.workspace->log("cleared " + std::to_string(cleared) + " packages");
    auto alive = ctx.api->execute_adb(ctx.device_serial, "whoami");
    if (!alive.ok()) return alive.error();
    ctx.workspace->log("device responsive as '" + alive.value() + "'");
    return util::Status::ok_status();
  };
  return job;
}

Job make_capture_retention_job(AccessServer& server) {
  Job job;
  job.name = "maintenance/capture-retention";
  job.constraints.needs_device = false;
  job.script = [&server](JobContext& ctx) -> util::Status {
    auto& store = server.capture_store();
    const auto now = server.simulator().now();
    const std::uint64_t reclaimed_before =
        store.stats().retention_bytes_reclaimed;
    // Ages out in-memory chunks AND, when persistence is enabled, the
    // expired on-disk segments (erase + demote + compact) behind them.
    const std::size_t touched = store.run_retention(now);
    const std::size_t workspaces =
        server.scheduler().purge_workspaces(store.policy().summary_ttl);
    const std::uint64_t reclaimed =
        store.stats().retention_bytes_reclaimed - reclaimed_before;
    ctx.workspace->log("retention touched " + std::to_string(touched) +
                       " captures, purged " + std::to_string(workspaces) +
                       " workspaces, reclaimed " + std::to_string(reclaimed) +
                       " disk bytes; " + std::to_string(store.size()) +
                       " records remain");
    return util::Status::ok_status();
  };
  return job;
}

Job make_persist_checkpoint_job(AccessServer& server) {
  Job job;
  job.name = "maintenance/persist-checkpoint";
  job.constraints.needs_device = false;
  job.script = [&server](JobContext& ctx) -> util::Status {
    auto* engine = server.persist_engine();
    if (engine == nullptr) {
      ctx.workspace->log("persistence not enabled; nothing to fold");
      return util::Status::ok_status();
    }
    if (server.health_enabled() &&
        server.slo_engine()->overall() == health::HealthState::kUnhealthy) {
      ctx.workspace->log("fleet unhealthy; deferring checkpoint");
      return util::Status::ok_status();
    }
    const std::uint64_t flushes_before = engine->stats().segment_flushes;
    if (auto st =
            engine->checkpoint(store::persist::CheckpointCause::kScheduled);
        !st.ok()) {
      return st;
    }
    ctx.workspace->log(
        "checkpoint folded WALs into " +
        std::to_string(engine->stats().segment_flushes - flushes_before) +
        " segment(s); " + std::to_string(engine->size()) +
        " record(s) on disk");
    return util::Status::ok_status();
  };
  return job;
}

Job make_health_evaluation_job(AccessServer& server) {
  Job job;
  job.name = "maintenance/health-evaluation";
  job.constraints.needs_device = false;
  job.script = [&server](JobContext& ctx) -> util::Status {
    if (!server.health_enabled()) {
      ctx.workspace->log("health engine not enabled; nothing to evaluate");
      return util::Status::ok_status();
    }
    auto* slo = server.slo_engine();
    slo->evaluate(server.simulator().now());
    ctx.workspace->log(
        "evaluated " + std::to_string(slo->spec_count()) + " SLO spec(s); " +
        "overall " + health::health_state_name(slo->overall()));
    return util::Status::ok_status();
  };
  return job;
}

}  // namespace blab::server
