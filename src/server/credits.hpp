// Credit system (§5).
//
// "Our vision is an open source and open access platform that users can join
// by sharing resources. However, we anticipate potential access via a credit
// system for experimenters lacking the resources for the initial setup."
//
// Members earn credits by hosting vantage points (their devices run other
// people's jobs); experimenters spend credits per device-minute. The ledger
// records every movement; the scheduler refuses to dispatch jobs whose owner
// cannot cover the session.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::server {

struct CreditTransaction {
  std::string account;
  double amount = 0.0;  ///< positive = deposit, negative = charge
  std::string reason;
  util::TimePoint at;
};

class CreditLedger {
 public:
  util::Status open_account(const std::string& user, double initial = 0.0);
  bool has_account(const std::string& user) const;
  util::Result<double> balance(const std::string& user) const;

  util::Status deposit(const std::string& user, double amount,
                       const std::string& reason, util::TimePoint at);
  /// Fails with kResourceExhausted when the balance cannot cover it.
  util::Status charge(const std::string& user, double amount,
                      const std::string& reason, util::TimePoint at);
  bool can_afford(const std::string& user, double amount) const;

  const std::vector<CreditTransaction>& history() const { return history_; }
  std::vector<CreditTransaction> history_of(const std::string& user) const;

  /// Oracle accessor (deterministic simulation testing): every balance, for
  /// the ledger non-negativity invariant.
  const std::unordered_map<std::string, double>& balances() const {
    return balances_;
  }

 private:
  std::unordered_map<std::string, double> balances_;
  std::vector<CreditTransaction> history_;
};

/// Pricing for credit-gated scheduling.
struct CreditPolicy {
  double per_device_minute = 1.0;  ///< charged to the job owner
  double host_share = 0.8;         ///< fraction paid out to the node's host
  /// Credits granted to a member when one of their vantage points is
  /// approved (the "join by sharing resources" incentive).
  double hosting_bonus = 120.0;
};

}  // namespace blab::server
