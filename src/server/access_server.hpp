// The BatteryLab access server (§3.1).
//
// Cloud-hosted (AWS in the paper), built atop a Jenkins-style automation
// core: it owns the user directory and authorization matrix, the vantage
// point registry with DNS, the wildcard certificate manager, the job
// scheduler, and the SSH identity used to reach every controller. It also
// ships the standing maintenance jobs (§3.1): certificate renewal, Monsoon
// power-down safety, and device factory reset.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "controller/rest_backend.hpp"
#include "net/dns.hpp"
#include "net/network.hpp"
#include "net/ssh.hpp"
#include "obs/health/rollup.hpp"
#include "obs/health/slo.hpp"
#include "sim/periodic.hpp"
#include "server/auth.hpp"
#include "server/certs.hpp"
#include "server/credits.hpp"
#include "server/registry.hpp"
#include "server/scheduler.hpp"
#include "server/testers.hpp"
#include "store/capture_store.hpp"
#include "store/persist/engine.hpp"

namespace blab::server {

class AccessServer {
 public:
  AccessServer(sim::Simulator& sim, net::Network& net,
               std::string host = "access-server.aws");

  const std::string& host() const { return host_; }
  sim::Simulator& simulator() { return sim_; }

  UserDirectory& users() { return users_; }
  net::DnsRegistry& dns() { return dns_; }
  VantagePointRegistry& registry() { return registry_; }
  CertificateManager& certs() { return certs_; }
  Scheduler& scheduler() { return scheduler_; }
  CreditLedger& credits() { return credits_; }
  store::CaptureStore& capture_store() { return capture_store_; }
  TesterPool& testers() { return testers_; }
  const net::SshKeyPair& ssh_key() const { return ssh_key_; }
  net::SshClient& ssh_client() { return ssh_client_; }

  /// Turn on credit-gated scheduling (§5). Members who host vantage points
  /// receive the policy's hosting bonus at approval time.
  void enable_credit_enforcement(CreditPolicy policy = {});
  bool credits_enforced() const { return credit_policy_.has_value(); }

  /// Turn on durable capture storage rooted at `dir`: opens (and on a
  /// restart, recovers) the sharded WAL+segment store there and attaches it
  /// to the capture store, so every workspace persisted by a previous
  /// process is immediately listable and queryable again.
  util::Status enable_persistence(const std::string& dir,
                                  store::persist::PersistOptions options = {});
  bool persistence_enabled() const { return persist_ != nullptr; }
  store::persist::PersistEngine* persist_engine() { return persist_.get(); }

  /// Port of the fleet-health REST surface (GET /rollup, GET /health).
  static constexpr int kHealthPort = 8090;

  /// Turn on the fleet health engine (DESIGN.md §15): a rollup engine over
  /// the capture store's merged warm+cold catalog, an SLO engine seeded
  /// with the stock spec set plus one error-rate SLO per vantage point
  /// approved so far, and a REST backend on kHealthPort serving GET /rollup
  /// and GET /health. Call after onboarding so every vantage is covered.
  util::Status enable_health();
  bool health_enabled() const { return slo_ != nullptr; }
  health::RollupEngine* rollup_engine() { return rollup_.get(); }
  health::SloEngine* slo_engine() { return slo_.get(); }
  controller::RestBackend* health_rest() { return health_rest_.get(); }

  /// Recurring maintenance helpers: scheduled PersistEngine checkpoints
  /// (cause=scheduled; requires persistence) and periodic SLO evaluation
  /// (requires enable_health). Both run as ordinary maintenance jobs, so
  /// they show up in traces and the job table like any other work.
  util::Result<std::size_t> schedule_persist_checkpoints(
      util::Duration period);
  util::Result<std::size_t> schedule_health_evaluations(
      util::Duration period);

  /// Full onboarding per the §3.4 tutorial: register the node, install the
  /// server's public key and IP whitelist on the controller's sshd, deploy
  /// the wildcard certificate, approve, and register DNS. `host_owner` is
  /// the member account contributing the hardware (earns the hosting bonus
  /// and a share of device-time charges when credits are enforced).
  util::Status onboard_vantage_point(const std::string& label,
                                     api::VantagePoint& vp,
                                     const std::string& host_owner = {});

  /// Authenticated job submission; dispatch still requires an admin's
  /// pipeline approval.
  util::Result<JobId> submit_job(const std::string& token, Job job);
  /// Authenticated retry of a terminally failed/aborted job: only the job's
  /// owner (or an admin) may resubmit, and the retry inherits its approval
  /// from the predecessor (see Scheduler::resubmit for the trace linkage).
  util::Result<JobId> resubmit_job(const std::string& token, JobId id);
  util::Status approve_pipeline(const std::string& admin_token, JobId id);
  /// Run the dispatch loop (authorization: any enabled experimenter/admin).
  util::Result<std::size_t> run_queue(const std::string& token);

  /// Execute a command on a vantage point's controller over SSH.
  util::Result<net::SshCommandResult> ssh_exec(const std::string& label,
                                               const std::string& command);

  /// Prometheus text dump of this deployment's metrics registry — the
  /// operator-facing equivalent of the controller's GET /metrics.
  std::string metrics_text() const;

  /// Schedule a recurring (Jenkins-cron-style) job: every `period`, the
  /// generator's job is submitted pre-approved and dispatched. This is how
  /// the standing maintenance jobs of §3.1 actually run. Returns a handle
  /// index usable with stop_recurring.
  std::size_t schedule_recurring(std::function<Job()> generator,
                                 util::Duration period);
  void stop_recurring(std::size_t handle);
  std::size_t recurring_count() const { return recurring_.size(); }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  std::string host_;
  UserDirectory users_;
  net::DnsRegistry dns_;
  VantagePointRegistry registry_;
  CertificateManager certs_;
  Scheduler scheduler_;
  store::CaptureStore capture_store_;
  std::unique_ptr<store::persist::PersistEngine> persist_;
  CreditLedger credits_;
  TesterPool testers_;
  std::optional<CreditPolicy> credit_policy_;
  /// Workspace -> vantage/device-class/owner context for rollup grouping.
  health::CaptureContext resolve_capture_context(const std::string& workspace);

  net::SshKeyPair ssh_key_;
  net::SshClient ssh_client_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> recurring_;
  std::unique_ptr<health::RollupEngine> rollup_;
  std::unique_ptr<health::SloEngine> slo_;
  std::unique_ptr<controller::RestBackend> health_rest_;
};

}  // namespace blab::server
