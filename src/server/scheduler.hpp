// Job scheduler (§3.1).
//
// "The access server will then dispatch queued jobs based on experimenter
// constraints, e.g., target device, connectivity, or network location, and
// BatteryLab constraints, e.g., one job at the time per device."
//
// Jobs run to completion inside dispatch (scripts advance simulated time
// themselves through the API); the busy-set still guards against double
// booking for async/maintenance work and is property-tested.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "net/vpn.hpp"
#include "server/credits.hpp"
#include "server/job.hpp"
#include "server/registry.hpp"
#include "sim/simulator.hpp"
#include "store/capture_store.hpp"

namespace blab::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace blab::obs

namespace blab::server {

/// Budgeted automatic retry of failed jobs (rides the resubmit machinery:
/// retries keep the retry_of/retried_by lineage and span links).
struct RetryPolicy {
  /// Total attempts a job lineage may make; <= 1 disables auto-retry.
  std::uint32_t max_attempts = 1;
  /// Attempt n+1 is deferred by backoff * n (linear), via Job::not_before.
  util::Duration backoff = util::Duration::minutes(5);
  /// Auto-retries charged against each owner (0 = unlimited); exhaustion
  /// counts in blab_scheduler_retry_budget_exhausted_total{owner}.
  std::uint64_t owner_budget = 0;
};

class Scheduler {
 public:
  Scheduler(sim::Simulator& sim, VantagePointRegistry& registry);

  /// Optional VPN provider used to satisfy network-location constraints.
  void attach_vpn(net::VpnProvider* vpn) { vpn_ = vpn; }

  /// Optional credit enforcement (§5): jobs only dispatch when the owner can
  /// cover the worst-case session (max_duration at the per-minute rate);
  /// actual usage is charged afterwards, with a share paid to the node host.
  void attach_credits(CreditLedger* ledger, CreditPolicy policy) {
    ledger_ = ledger;
    policy_ = policy;
  }
  bool credits_enforced() const { return ledger_ != nullptr; }

  /// Optional capture store: every stop_monitor capture taken by a job's
  /// script is archived under the job id's workspace, and workspace purges
  /// drop the store's raw tier for that job too.
  void attach_capture_store(store::CaptureStore* store) {
    capture_store_ = store;
  }
  store::CaptureStore* capture_store() { return capture_store_; }

  /// Queue a job (must have an approved pipeline to ever dispatch).
  JobId submit(Job job);
  util::Status approve_pipeline(JobId id);
  util::Status abort(JobId id);

  /// Resubmit a terminally failed or aborted job as a fresh attempt. The new
  /// job clones the predecessor's definition, gets its own trace, and its
  /// root span carries a "retry_of" link to the predecessor's root so the
  /// causal chain stays walkable across traces. Each job can be retried at
  /// most once (retried_by is a bijection); further retries must target the
  /// newest attempt.
  util::Result<JobId> resubmit(JobId id);

  /// Enable budgeted auto-retry: after a dispatched job fails, the
  /// scheduler resubmits it (once per attempt, up to the policy's
  /// max_attempts) with a backoff-deferred not_before.
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  std::uint64_t auto_retries() const { return auto_retries_; }

  /// Dispatch every queued job whose constraints are satisfiable right now
  /// (and whose not_before has passed); returns the number of jobs run.
  std::size_t dispatch_pending();

  Job* find(JobId id);
  const Job* find(JobId id) const;
  std::vector<JobId> queued() const;
  std::size_t job_count() const { return jobs_.size(); }

  /// Oracle accessors (deterministic simulation testing): snapshot of every
  /// job and of the devices currently held by running jobs.
  std::vector<const Job*> all_jobs() const;
  std::vector<std::string> busy_serials() const;

  /// §3.1: power-meter logs live "for several days within the job's
  /// workspace". Purge workspaces of jobs finished more than `ttl` ago;
  /// returns how many were cleared. Job metadata survives.
  std::size_t purge_workspaces(util::Duration ttl);
  bool device_busy(const std::string& serial) const {
    return busy_devices_.contains(serial);
  }

 private:
  struct Assignment {
    std::string node_label;
    api::VantagePoint* vp = nullptr;
    std::string device_serial;
  };
  /// Find a (node, device) satisfying the constraints, or nullopt.
  std::optional<Assignment> match(const JobConstraints& constraints);
  bool owner_can_afford(const Job& job) const;
  void settle_credits(const Job& job, const Assignment& assignment);
  bool device_matches(api::VantagePoint& vp, const std::string& serial,
                      const JobConstraints& constraints) const;
  void run_job(Job& job, const Assignment& assignment);
  void execute_job(Job& job, const Assignment& assignment,
                   std::uint64_t span_id);
  void note_finished(const Job& job, const Assignment& assignment);
  /// Auto-retry hook, run after a dispatched job reaches a terminal state.
  /// May submit (and therefore reallocate jobs_) — callers must not hold
  /// Job pointers across it.
  void maybe_auto_retry(JobId id);

  sim::Simulator& sim_;
  /// Instruments resolved once against sim_.metrics(); hot paths hit the
  /// cached pointers without touching the registry lock.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* resubmitted = nullptr;
    obs::Counter* dispatched = nullptr;
    obs::Counter* succeeded = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* aborted = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running = nullptr;
    obs::Histogram* queue_wait = nullptr;   ///< seconds queued -> running
    obs::Histogram* run_duration = nullptr; ///< seconds running -> finished
  };
  Metrics metrics_;
  VantagePointRegistry& registry_;
  net::VpnProvider* vpn_ = nullptr;
  store::CaptureStore* capture_store_ = nullptr;
  CreditLedger* ledger_ = nullptr;
  CreditPolicy policy_{};
  util::IdAllocator<JobTag> ids_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::unordered_set<std::string> busy_devices_;
  RetryPolicy retry_policy_{};
  std::uint64_t auto_retries_ = 0;
  // std::map: deterministic iteration if this ever feeds an oracle/export.
  std::map<std::string, std::uint64_t> retries_by_owner_;
};

}  // namespace blab::server
