// Tester recruitment (§3, §5).
//
// "Once granted, remote control of the device can be shared with testers,
// whose task is to manually interact with a device... Testers are either
// volunteers, recruited via email or social media, or paid, recruited via
// crowdsourcing websites like Mechanical Turk and Figure Eight."
//
// An experimenter posts a task against a device; the pool issues a one-time
// invite link (the toolbar-less session page of §3.2). A recruited tester
// claims it, interacts, and on the experimenter's approval is paid from the
// escrowed reward (for crowdsourced recruits; volunteers are free).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "server/auth.hpp"
#include "server/credits.hpp"
#include "util/id.hpp"
#include "util/time.hpp"

namespace blab::server {

enum class TesterSource { kVolunteer, kMTurk, kFigureEight };

const char* tester_source_name(TesterSource source);

enum class TaskState { kOpen, kClaimed, kCompleted, kCancelled };

struct TesterTaskTag {};
using TaskId = util::Id<TesterTaskTag>;

struct TesterTask {
  TaskId id;
  std::string experimenter;
  std::string node_label;
  std::string device_serial;
  std::string instructions;
  TesterSource source = TesterSource::kVolunteer;
  double reward_credits = 0.0;
  std::string invite_token;  ///< one-time session link
  TaskState state = TaskState::kOpen;
  std::string tester;  ///< set on claim
  bool toolbar_visible = false;  ///< §3.2: usually hidden for testers
};

class TesterPool {
 public:
  /// `ledger` may be null: then only volunteer tasks can be posted.
  TesterPool(UserDirectory& users, CreditLedger* ledger);

  /// Post a task. Paid sources escrow the reward from the experimenter up
  /// front (plus the platform's recruitment fee).
  util::Result<TaskId> post_task(const std::string& experimenter,
                                 const std::string& node_label,
                                 const std::string& device_serial,
                                 const std::string& instructions,
                                 TesterSource source, double reward_credits,
                                 util::TimePoint now);

  /// A recruited person claims the invite; they get a tester account if they
  /// do not have one yet. Returns the task.
  util::Result<const TesterTask*> claim(const std::string& invite_token,
                                        const std::string& tester_name);

  /// Experimenter signs off; the tester is paid from escrow.
  util::Status complete(TaskId id, const std::string& experimenter,
                        util::TimePoint now);
  /// Cancel an open task and refund the escrow.
  util::Status cancel(TaskId id, const std::string& experimenter,
                      util::TimePoint now);

  const TesterTask* find(TaskId id) const;
  std::vector<TaskId> open_tasks() const;
  std::size_t task_count() const { return tasks_.size(); }

  /// Crowdsourcing platform fee on top of the reward (MTurk-style ~20%).
  static constexpr double kRecruitmentFee = 0.20;

 private:
  UserDirectory& users_;
  CreditLedger* ledger_;
  util::IdAllocator<TesterTaskTag> ids_;
  std::vector<TesterTask> tasks_;
  std::unordered_map<std::string, TaskId> invites_;
  std::uint64_t token_counter_ = 0;
};

}  // namespace blab::server
