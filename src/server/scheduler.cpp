#include "server/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace blab::server {

Scheduler::Scheduler(sim::Simulator& sim, VantagePointRegistry& registry)
    : sim_{sim}, registry_{registry} {
  obs::MetricsRegistry& m = sim_.metrics();
  metrics_.submitted = &m.counter("blab_scheduler_jobs_submitted_total");
  metrics_.resubmitted = &m.counter("blab_scheduler_jobs_resubmitted_total");
  metrics_.dispatched = &m.counter("blab_scheduler_jobs_dispatched_total");
  metrics_.succeeded = &m.counter("blab_scheduler_jobs_finished_total",
                                  {{"result", "succeeded"}});
  metrics_.failed = &m.counter("blab_scheduler_jobs_finished_total",
                               {{"result", "failed"}});
  metrics_.aborted = &m.counter("blab_scheduler_jobs_aborted_total");
  metrics_.queue_depth = &m.gauge("blab_scheduler_queue_depth");
  metrics_.running = &m.gauge("blab_scheduler_jobs_running");
  metrics_.queue_wait = &m.histogram(
      "blab_scheduler_queue_wait_seconds",
      {0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0});
  metrics_.run_duration = &m.histogram(
      "blab_scheduler_run_duration_seconds",
      {1.0, 5.0, 15.0, 60.0, 120.0, 300.0, 600.0});
}

JobId Scheduler::submit(Job job) {
  job.id = ids_.next();
  job.state = JobState::kQueued;
  job.queued_at = sim_.now();
  // Root the job's causal trace here: everything the job causes — dispatch,
  // automation, captures, archival — parents under this detached span, which
  // stays open until the job reaches a terminal state.
  obs::Tracer& tracer = sim_.tracer();
  job.root_span = tracer.begin_detached("scheduler", "job");
  job.trace_id = tracer.context_of(job.root_span).trace;
  tracer.set_attr(job.root_span, "job", job.id.str());
  tracer.set_attr(job.root_span, "name", job.name);
  tracer.set_attr(job.root_span, "owner", job.owner);
  const JobId id = job.id;
  jobs_.push_back(std::make_unique<Job>(std::move(job)));
  metrics_.submitted->inc();
  metrics_.queue_depth->add(1.0);
  return id;
}

util::Status Scheduler::approve_pipeline(JobId id) {
  Job* job = find(id);
  if (job == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "unknown job");
  }
  job->pipeline_approved = true;
  return util::Status::ok_status();
}

util::Status Scheduler::abort(JobId id) {
  Job* job = find(id);
  if (job == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "unknown job");
  }
  if (job->state != JobState::kQueued) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "only queued jobs can be aborted");
  }
  job->state = JobState::kAborted;
  sim_.tracer().set_attr(job->root_span, "state", "aborted");
  sim_.tracer().end(job->root_span);
  metrics_.aborted->inc();
  metrics_.queue_depth->add(-1.0);
  return util::Status::ok_status();
}

util::Result<JobId> Scheduler::resubmit(JobId id) {
  Job* pred = find(id);
  if (pred == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "unknown job");
  }
  if (pred->state != JobState::kFailed && pred->state != JobState::kAborted) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "only failed or aborted jobs can be resubmitted");
  }
  if (pred->retried_by.valid()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "job already retried by " + pred->retried_by.str());
  }
  Job retry;
  retry.owner = pred->owner;
  retry.name = pred->name;
  retry.constraints = pred->constraints;
  retry.script = pred->script;
  retry.pipeline_approved = pred->pipeline_approved;
  retry.max_duration = pred->max_duration;
  retry.retry_of = pred->id;
  retry.attempt = pred->attempt + 1;
  const JobId new_id = submit(std::move(retry));
  // submit() may reallocate jobs_; re-resolve the predecessor before linking.
  pred = find(id);
  Job* succ = find(new_id);
  pred->retried_by = new_id;
  obs::Tracer& tracer = sim_.tracer();
  tracer.set_attr(succ->root_span, "retry_of", pred->id.str());
  tracer.set_attr(succ->root_span, "attempt",
                  static_cast<std::int64_t>(succ->attempt));
  tracer.add_link(succ->root_span,
                  obs::SpanLink{pred->trace_id, pred->root_span, "retry_of"});
  metrics_.resubmitted->inc();
  BLAB_INFO_KV("scheduler", "job resubmitted", {"job", pred->id.str()},
               {"retry", new_id.str()});
  return new_id;
}

bool Scheduler::device_matches(api::VantagePoint& vp,
                               const std::string& serial,
                               const JobConstraints& constraints) const {
  if (busy_devices_.contains(serial)) return false;
  if (!constraints.device_serial.empty() &&
      constraints.device_serial != serial) {
    return false;
  }
  auto* dev = vp.find_device(serial);
  if (dev == nullptr || !dev->powered_on()) return false;
  if (!constraints.device_model.empty() &&
      dev->spec().model != constraints.device_model) {
    return false;
  }
  switch (constraints.connectivity) {
    case Connectivity::kAny:
      break;
    case Connectivity::kWifi:
      if (!dev->wifi().enabled()) return false;
      break;
    case Connectivity::kCellular:
      if (!dev->cellular().enabled()) return false;
      break;
  }
  return true;
}

std::optional<Scheduler::Assignment> Scheduler::match(
    const JobConstraints& constraints) {
  for (const auto& label : registry_.approved_labels()) {
    if (!constraints.node_label.empty() && constraints.node_label != label) {
      continue;
    }
    api::VantagePoint* vp = registry_.vantage_point(label);
    if (vp == nullptr) continue;
    if (!constraints.network_location.empty() && vpn_ == nullptr) continue;
    if (constraints.max_controller_cpu > 0.0 &&
        vp->controller().resources().cpu_utilization() >
            constraints.max_controller_cpu) {
      continue;
    }
    if (!constraints.needs_device) return Assignment{label, vp, ""};
    for (const auto& serial : vp->controller().device_serials()) {
      if (device_matches(*vp, serial, constraints)) {
        return Assignment{label, vp, serial};
      }
    }
  }
  return std::nullopt;
}

bool Scheduler::owner_can_afford(const Job& job) const {
  if (ledger_ == nullptr) return true;
  const double worst_case =
      job.max_duration.to_seconds() / 60.0 * policy_.per_device_minute;
  return ledger_->can_afford(job.owner, worst_case);
}

void Scheduler::settle_credits(const Job& job, const Assignment& assignment) {
  if (ledger_ == nullptr) return;
  const double minutes = (job.finished_at - job.started_at).to_seconds() / 60.0;
  const double cost = std::max(minutes, 1.0) * policy_.per_device_minute;
  if (auto st = ledger_->charge(job.owner, cost,
                                "device time on " + assignment.node_label +
                                    "/" + assignment.device_serial,
                                sim_.now());
      !st.ok()) {
    BLAB_WARN("scheduler", "credit settlement failed: " << st.error().str());
    return;
  }
  const NodeRecord* node = registry_.find(assignment.node_label);
  if (node != nullptr && !node->host_owner.empty() &&
      ledger_->has_account(node->host_owner)) {
    (void)ledger_->deposit(node->host_owner, cost * policy_.host_share,
                           "hosting share for job " + job.id.str(),
                           sim_.now());
  }
}

std::size_t Scheduler::dispatch_pending() {
  std::size_t dispatched = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    // Index-based: maybe_auto_retry can push into jobs_ mid-loop, which
    // would invalidate range-for iterators.
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      Job& job = *jobs_[i];
      if (job.state != JobState::kQueued || !job.pipeline_approved) continue;
      if (sim_.now() < job.not_before) continue;  // deferred retry backoff
      if (!owner_can_afford(job)) continue;  // stays queued (§5)
      auto assignment = match(job.constraints);
      if (!assignment.has_value()) continue;
      const JobId id = job.id;
      run_job(job, *assignment);
      maybe_auto_retry(id);  // may reallocate jobs_; `job` is dead here
      ++dispatched;
      progress = true;
    }
  }
  return dispatched;
}

void Scheduler::note_finished(const Job& job, const Assignment& assignment) {
  metrics_.running->add(-1.0);
  (job.state == JobState::kSucceeded ? metrics_.succeeded : metrics_.failed)
      ->inc();
  if (job.state == JobState::kFailed) {
    sim_.metrics()
        .counter("blab_scheduler_node_jobs_failed_total",
                 {{"vp", assignment.node_label}})
        .inc();
  }
  metrics_.run_duration->observe(
      (job.finished_at - job.started_at).to_seconds(),
      obs::Exemplar{job.trace_id, sim_.now().us()});
}

void Scheduler::maybe_auto_retry(JobId id) {
  if (retry_policy_.max_attempts <= 1) return;
  Job* job = find(id);
  if (job == nullptr || job->state != JobState::kFailed) return;
  if (job->retried_by.valid()) return;
  if (job->attempt >= retry_policy_.max_attempts) return;
  if (retry_policy_.owner_budget > 0 &&
      retries_by_owner_[job->owner] >= retry_policy_.owner_budget) {
    sim_.metrics()
        .counter("blab_scheduler_retry_budget_exhausted_total",
                 {{"owner", job->owner}})
        .inc();
    BLAB_INFO_KV("scheduler", "retry budget exhausted", {"job", id.str()},
                 {"owner", job->owner});
    return;
  }
  const std::string owner = job->owner;
  const std::uint32_t attempt = job->attempt;
  auto retried = resubmit(id);  // reallocates jobs_; `job` is dead here
  if (!retried.ok()) return;
  Job* retry = find(retried.value());
  retry->not_before =
      sim_.now() + retry_policy_.backoff * static_cast<double>(attempt);
  sim_.tracer().set_attr(retry->root_span, "auto_retry",
                         static_cast<std::int64_t>(1));
  ++auto_retries_;
  ++retries_by_owner_[owner];
  sim_.metrics()
      .counter("blab_scheduler_auto_retries_total", {{"owner", owner}})
      .inc();
  BLAB_INFO_KV("scheduler", "auto-retry queued", {"job", id.str()},
               {"retry", retried.value().str()},
               {"not_before", util::to_string(retry->not_before)});
}

void Scheduler::run_job(Job& job, const Assignment& assignment) {
  {
    obs::ScopedSpan span{&sim_.tracer(), "scheduler", "run_job",
                         obs::TraceContext{job.trace_id, job.root_span}};
    span.attr("job", job.id.str());
    span.attr("vp", assignment.node_label);
    if (!assignment.device_serial.empty()) {
      span.attr("device", assignment.device_serial);
    }
    execute_job(job, assignment, span.id());
  }
  // The root closes only after run_job and every child span has; closing it
  // inside the scope above would make the parent end before its children.
  sim_.tracer().set_attr(job.root_span, "state", job_state_name(job.state));
  sim_.tracer().end(job.root_span);
}

void Scheduler::execute_job(Job& job, const Assignment& assignment,
                            std::uint64_t span_id) {
  job.state = JobState::kRunning;
  job.started_at = sim_.now();
  job.assigned_node = assignment.node_label;
  job.assigned_device = assignment.device_serial;
  metrics_.dispatched->inc();
  metrics_.queue_depth->add(-1.0);
  metrics_.running->add(1.0);
  metrics_.queue_wait->observe((job.started_at - job.queued_at).to_seconds(),
                               obs::Exemplar{job.trace_id, sim_.now().us()});
  sim_.metrics()
      .counter("blab_scheduler_node_jobs_total", {{"vp", assignment.node_label}})
      .inc();
  if (!assignment.device_serial.empty()) {
    busy_devices_.insert(assignment.device_serial);
  }
  BLAB_INFO_KV("scheduler", "job starts", {"job", job.id.str()},
               {"name", job.name}, {"vp", assignment.node_label},
               {"device", assignment.device_serial});

  api::BatteryLabApi api{*assignment.vp};
  if (capture_store_ != nullptr) {
    api.attach_capture_store(capture_store_, job.id.str());
  }
  auto* dev = assignment.vp->find_device(assignment.device_serial);

  // Network-location constraint: tunnel the controller through the VPN exit
  // for the duration of the job (§4.3).
  const std::string& location = job.constraints.network_location;
  bool vpn_connected = false;
  if (!location.empty() && vpn_ != nullptr) {
    const std::string client = assignment.vp->controller_host();
    if (auto st = vpn_->connect(client, location); st.ok()) {
      vpn_connected = true;
      if (dev != nullptr) dev->set_network_region(location);
    } else {
      job.state = JobState::kFailed;
      job.failure_reason = "vpn: " + st.error().str();
      job.finished_at = sim_.now();
      busy_devices_.erase(assignment.device_serial);
      note_finished(job, assignment);
      return;
    }
  }

  JobContext ctx;
  ctx.api = &api;
  ctx.node_label = assignment.node_label;
  ctx.device_serial = assignment.device_serial;
  ctx.workspace = &job.workspace;
  ctx.deadline = sim_.now() + job.max_duration;
  ctx.trace = obs::TraceContext{job.trace_id, span_id};

  util::Status result = job.script ? job.script(ctx)
                                   : util::Status{util::make_error(
                                         util::ErrorCode::kInvalidArgument,
                                         "job has no script")};

  // Safety net: a crashed script must not leave the Monsoon sampling.
  if (api.monitoring()) (void)api.stop_monitor();
  // Session hygiene: no mirroring session survives device release — a
  // script that forgot to deactivate mirroring must not leak the stream to
  // the next experimenter on this device.
  if (!assignment.device_serial.empty() &&
      assignment.vp->mirroring(assignment.device_serial) != nullptr) {
    (void)assignment.vp->stop_mirroring(assignment.device_serial);
  }
  // Archived captures become part of the job's workspace record.
  if (capture_store_ != nullptr) {
    for (const auto& cid : capture_store_->list(job.id.str())) {
      job.workspace.record_capture(cid);
    }
  }

  if (vpn_connected) {
    (void)vpn_->disconnect(assignment.vp->controller_host());
    if (dev != nullptr) dev->set_network_region("");
  }

  job.finished_at = sim_.now();
  job.overran = job.finished_at > ctx.deadline;
  if (result.ok()) {
    job.state = JobState::kSucceeded;
  } else {
    job.state = JobState::kFailed;
    job.failure_reason = result.error().str();
  }
  busy_devices_.erase(assignment.device_serial);
  note_finished(job, assignment);
  settle_credits(job, assignment);
  BLAB_INFO_KV("scheduler", "job finished", {"job", job.id.str()},
               {"state", job_state_name(job.state)});
}

Job* Scheduler::find(JobId id) {
  for (auto& j : jobs_) {
    if (j->id == id) return j.get();
  }
  return nullptr;
}

const Job* Scheduler::find(JobId id) const {
  for (const auto& j : jobs_) {
    if (j->id == id) return j.get();
  }
  return nullptr;
}

std::size_t Scheduler::purge_workspaces(util::Duration ttl) {
  std::size_t purged = 0;
  for (auto& job : jobs_) {
    const bool finished = job->state == JobState::kSucceeded ||
                          job->state == JobState::kFailed ||
                          job->state == JobState::kAborted;
    if (!finished || job->workspace.purged()) continue;
    if (sim_.now() - job->finished_at >= ttl) {
      job->workspace.purge();
      if (capture_store_ != nullptr) {
        (void)capture_store_->drop_workspace_raw(job->id.str());
      }
      ++purged;
    }
  }
  return purged;
}

std::vector<const Job*> Scheduler::all_jobs() const {
  std::vector<const Job*> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(j.get());
  return out;
}

std::vector<std::string> Scheduler::busy_serials() const {
  return {busy_devices_.begin(), busy_devices_.end()};
}

std::vector<JobId> Scheduler::queued() const {
  std::vector<JobId> out;
  for (const auto& j : jobs_) {
    if (j->state == JobState::kQueued) out.push_back(j->id);
  }
  return out;
}

}  // namespace blab::server
