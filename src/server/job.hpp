// Jobs: the unit of work experimenters deploy via the access server (§3.1).
//
// A job names its owner, target constraints (vantage point, device,
// connectivity, network location) and a script. Scripts receive a JobContext
// giving them the BatteryLab API at the assigned vantage point plus a
// workspace for logs and artifacts ("logs from the power meter ... are made
// available for several days within the job's workspace").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/batterylab_api.hpp"
#include "obs/span.hpp"
#include "util/id.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::server {

struct JobTag {};
using JobId = util::Id<JobTag>;

enum class JobState { kCreated, kQueued, kRunning, kSucceeded, kFailed,
                      kAborted };

const char* job_state_name(JobState state);

enum class Connectivity { kAny, kWifi, kCellular };

struct JobConstraints {
  std::string node_label;        ///< required vantage point ("" = any)
  std::string device_serial;     ///< required device ("" = any free device)
  /// Maintenance jobs operating on the vantage point itself (certificates,
  /// power-socket safety) need no device assignment.
  bool needs_device = true;
  std::string device_model;      ///< e.g. "Samsung J7 Duo" ("" = any)
  Connectivity connectivity = Connectivity::kAny;
  std::string network_location;  ///< VPN exit, e.g. "Japan" ("" = home)
  /// Optional: only start when controller CPU is below this (0 disables).
  double max_controller_cpu = 0.0;
};

class JobWorkspace {
 public:
  void log(const std::string& line);
  void store_artifact(const std::string& name, std::string content);
  /// Link a capture archived in the platform's CaptureStore to this job.
  void record_capture(const store::CaptureId& id);

  const std::vector<std::string>& logs() const { return logs_; }
  const std::map<std::string, std::string>& artifacts() const {
    return artifacts_;
  }
  bool has_artifact(const std::string& name) const {
    return artifacts_.contains(name);
  }
  const std::vector<store::CaptureId>& captures() const { return captures_; }

  /// Retention sweep (§3.1: logs live "for several days"). Capture ids
  /// survive the purge — the store's summary tiers outlive raw workspaces.
  void purge();
  bool purged() const { return purged_; }

 private:
  std::vector<std::string> logs_;
  std::map<std::string, std::string> artifacts_;
  std::vector<store::CaptureId> captures_;
  bool purged_ = false;
};

struct JobContext {
  api::BatteryLabApi* api = nullptr;  ///< the assigned vantage point's API
  std::string node_label;
  std::string device_serial;          ///< resolved device assignment
  JobWorkspace* workspace = nullptr;
  util::TimePoint deadline;           ///< timed session limit
  /// Causal position of the job's run_job span; scripts scheduling async
  /// work can hand this to ScopedSpan/begin_detached so it joins the trace.
  obs::TraceContext trace;
};

using JobScript = std::function<util::Status(JobContext&)>;

struct Job {
  JobId id;
  std::string owner;
  std::string name;
  JobConstraints constraints;
  JobScript script;
  JobState state = JobState::kCreated;
  bool pipeline_approved = false;  ///< admin gate on pipeline changes
  util::Duration max_duration = util::Duration::minutes(60);
  JobWorkspace workspace;
  std::string failure_reason;
  util::TimePoint queued_at;
  util::TimePoint started_at;
  util::TimePoint finished_at;
  bool overran = false;
  /// Causal trace rooted at submit; every span this job causes (dispatch,
  /// automation, capture, archival) lives in this tree. 0 until submitted.
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;  ///< detached root, closed when the job ends
  /// Retry lineage (Scheduler::resubmit). A resubmitted job gets a fresh
  /// trace whose root carries a "retry_of" span link to the predecessor's
  /// root, so the full causal history is one walkable chain. retry_of names
  /// the predecessor (invalid on originals), retried_by the single
  /// successor (invalid until resubmitted), and attempt counts from 1.
  JobId retry_of;
  JobId retried_by;
  std::uint32_t attempt = 1;
  /// Earliest dispatch time; epoch means "immediately". Auto-retries use
  /// this to defer the next attempt by the retry policy's backoff.
  util::TimePoint not_before;
  /// Assignment of the (last) run, recorded at dispatch — the rollup
  /// engine's workspace -> vantage/device-class context comes from here.
  std::string assigned_node;
  std::string assigned_device;
};

}  // namespace blab::server
