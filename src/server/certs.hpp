// Wildcard certificate management (§3.4).
//
// BatteryLab serves every vantage point under *.batterylab.dev with a
// Let's-Encrypt-style wildcard certificate. The access server renews it
// before expiry and pushes the fresh certificate to each vantage point; one
// of the standing maintenance jobs drives this.
#pragma once

#include <string>
#include <unordered_map>

#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::server {

struct Certificate {
  std::string common_name;  ///< "*.batterylab.dev"
  std::uint64_t serial = 0;
  util::TimePoint issued_at;
  util::TimePoint expires_at;

  bool valid_at(util::TimePoint t) const {
    return serial != 0 && t >= issued_at && t < expires_at;
  }
};

class CertificateManager {
 public:
  /// Let's Encrypt issues 90-day certificates; renewal is due at 2/3 life.
  static constexpr auto kLifetime = util::Duration::seconds(90.0 * 86400.0);
  static constexpr auto kRenewalMargin = util::Duration::seconds(30.0 * 86400.0);

  explicit CertificateManager(std::string zone = "batterylab.dev");

  const std::string& zone() const { return zone_; }
  const Certificate& current() const { return current_; }

  /// Issue (or re-issue) the wildcard certificate at time `now`.
  const Certificate& issue(util::TimePoint now);
  bool needs_renewal(util::TimePoint now) const;

  /// Record deployment of the current certificate at a vantage point.
  util::Status deploy_to(const std::string& node_label, util::TimePoint now);
  /// Serial deployed at a node (0 = never deployed).
  std::uint64_t deployed_serial(const std::string& node_label) const;
  bool node_current(const std::string& node_label) const;

  std::size_t deployments() const { return deployed_.size(); }

 private:
  std::string zone_;
  Certificate current_;
  std::uint64_t next_serial_ = 1;
  std::unordered_map<std::string, std::uint64_t> deployed_;
};

}  // namespace blab::server
