#include "server/registry.hpp"

#include <algorithm>

namespace blab::server {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kPending: return "pending";
    case NodeState::kApproved: return "approved";
    case NodeState::kRetired: return "retired";
  }
  return "?";
}

VantagePointRegistry::VantagePointRegistry(net::DnsRegistry& dns)
    : dns_{dns} {}

util::Status VantagePointRegistry::register_node(const std::string& label,
                                                 api::VantagePoint* vp,
                                                 const std::string& owner) {
  if (vp == nullptr) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "null vantage point");
  }
  if (nodes_.contains(label)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            label + " already registered");
  }
  NodeRecord record;
  record.label = label;
  record.controller_host = vp->controller_host();
  record.host_owner = owner;
  record.vantage_point = vp;
  nodes_[label] = record;
  return util::Status::ok_status();
}

util::Status VantagePointRegistry::mark_key_installed(
    const std::string& label) {
  const auto it = nodes_.find(label);
  if (it == nodes_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, label + " unknown");
  }
  it->second.ssh_key_installed = true;
  return util::Status::ok_status();
}

util::Status VantagePointRegistry::mark_ip_whitelisted(
    const std::string& label) {
  const auto it = nodes_.find(label);
  if (it == nodes_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, label + " unknown");
  }
  it->second.ip_whitelisted = true;
  return util::Status::ok_status();
}

util::Status VantagePointRegistry::approve(const std::string& label) {
  const auto it = nodes_.find(label);
  if (it == nodes_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, label + " unknown");
  }
  NodeRecord& node = it->second;
  if (node.state == NodeState::kApproved) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            label + " already approved");
  }
  if (!node.ssh_key_installed || !node.ip_whitelisted) {
    return util::make_error(
        util::ErrorCode::kFailedPrecondition,
        label + " onboarding incomplete (key installed: " +
            (node.ssh_key_installed ? "yes" : "no") +
            ", IP whitelisted: " + (node.ip_whitelisted ? "yes" : "no") + ")");
  }
  if (auto st = dns_.register_node(label, node.controller_host); !st.ok()) {
    return st;
  }
  node.state = NodeState::kApproved;
  return util::Status::ok_status();
}

util::Status VantagePointRegistry::retire(const std::string& label) {
  const auto it = nodes_.find(label);
  if (it == nodes_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, label + " unknown");
  }
  if (it->second.state == NodeState::kApproved) {
    (void)dns_.deregister_node(label);
  }
  it->second.state = NodeState::kRetired;
  return util::Status::ok_status();
}

const NodeRecord* VantagePointRegistry::find(const std::string& label) const {
  const auto it = nodes_.find(label);
  return it == nodes_.end() ? nullptr : &it->second;
}

api::VantagePoint* VantagePointRegistry::vantage_point(
    const std::string& label) {
  const auto it = nodes_.find(label);
  if (it == nodes_.end() || it->second.state != NodeState::kApproved) {
    return nullptr;
  }
  return it->second.vantage_point;
}

std::vector<std::string> VantagePointRegistry::approved_labels() const {
  std::vector<std::string> out;
  for (const auto& [label, node] : nodes_) {
    if (node.state == NodeState::kApproved) out.push_back(label);
  }
  return out;
}

std::vector<std::string> VantagePointRegistry::all_labels() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [label, node] : nodes_) out.push_back(label);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace blab::server
