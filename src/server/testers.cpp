#include "server/testers.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace blab::server {

const char* tester_source_name(TesterSource source) {
  switch (source) {
    case TesterSource::kVolunteer: return "volunteer";
    case TesterSource::kMTurk: return "mturk";
    case TesterSource::kFigureEight: return "figure-eight";
  }
  return "?";
}

TesterPool::TesterPool(UserDirectory& users, CreditLedger* ledger)
    : users_{users}, ledger_{ledger} {}

util::Result<TaskId> TesterPool::post_task(
    const std::string& experimenter, const std::string& node_label,
    const std::string& device_serial, const std::string& instructions,
    TesterSource source, double reward_credits, util::TimePoint now) {
  const User* user = users_.find(experimenter);
  if (user == nullptr || !user->enabled) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "unknown experimenter " + experimenter);
  }
  if (!users_.matrix().allows(user->role, Permission::kCreateJob)) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            experimenter + " may not post tester tasks");
  }
  if (source != TesterSource::kVolunteer) {
    if (ledger_ == nullptr) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "paid recruitment requires the credit ledger");
    }
    if (reward_credits <= 0.0) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "paid tasks need a positive reward");
    }
    const double escrow = reward_credits * (1.0 + kRecruitmentFee);
    if (auto st = ledger_->charge(experimenter, escrow,
                                  "escrow task on " + device_serial, now);
        !st.ok()) {
      return st.error();
    }
  }

  TesterTask task;
  task.id = ids_.next();
  task.experimenter = experimenter;
  task.node_label = node_label;
  task.device_serial = device_serial;
  task.instructions = instructions;
  task.source = source;
  task.reward_credits =
      source == TesterSource::kVolunteer ? 0.0 : reward_credits;
  char buf[64];
  std::snprintf(buf, sizeof buf, "invite-%016llx",
                static_cast<unsigned long long>(
                    util::fnv1a(experimenter + device_serial) ^
                    ++token_counter_ * 0x9E3779B97F4A7C15ULL));
  task.invite_token = buf;
  invites_[task.invite_token] = task.id;
  const TaskId id = task.id;
  tasks_.push_back(std::move(task));
  return id;
}

util::Result<const TesterTask*> TesterPool::claim(
    const std::string& invite_token, const std::string& tester_name) {
  const auto it = invites_.find(invite_token);
  if (it == invites_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "invalid or expired invite");
  }
  for (auto& task : tasks_) {
    if (task.id != it->second) continue;
    if (task.state != TaskState::kOpen) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "task already " +
                                  std::string{task.state == TaskState::kClaimed
                                                  ? "claimed"
                                                  : "closed"});
    }
    if (users_.find(tester_name) == nullptr) {
      // New recruits get a tester account (interactive session only).
      auto token = users_.register_user(tester_name, Role::kTester);
      if (!token.ok()) return token.error();
    }
    task.state = TaskState::kClaimed;
    task.tester = tester_name;
    invites_.erase(it);  // invite links are one-time
    return &task;
  }
  return util::make_error(util::ErrorCode::kNotFound, "task vanished");
}

util::Status TesterPool::complete(TaskId id, const std::string& experimenter,
                                  util::TimePoint now) {
  for (auto& task : tasks_) {
    if (task.id != id) continue;
    if (task.experimenter != experimenter) {
      return util::make_error(util::ErrorCode::kPermissionDenied,
                              "only the posting experimenter may sign off");
    }
    if (task.state != TaskState::kClaimed) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "task is not in a claimed state");
    }
    task.state = TaskState::kCompleted;
    if (task.reward_credits > 0.0 && ledger_ != nullptr) {
      if (!ledger_->has_account(task.tester)) {
        (void)ledger_->open_account(task.tester);
      }
      return ledger_->deposit(task.tester, task.reward_credits,
                              "tester reward (" +
                                  std::string{tester_source_name(
                                      task.source)} +
                                  ")",
                              now);
    }
    return util::Status::ok_status();
  }
  return util::make_error(util::ErrorCode::kNotFound, "unknown task");
}

util::Status TesterPool::cancel(TaskId id, const std::string& experimenter,
                                util::TimePoint now) {
  for (auto& task : tasks_) {
    if (task.id != id) continue;
    if (task.experimenter != experimenter) {
      return util::make_error(util::ErrorCode::kPermissionDenied,
                              "only the posting experimenter may cancel");
    }
    if (task.state != TaskState::kOpen) {
      return util::make_error(util::ErrorCode::kFailedPrecondition,
                              "only open tasks can be cancelled");
    }
    task.state = TaskState::kCancelled;
    invites_.erase(task.invite_token);
    if (task.reward_credits > 0.0 && ledger_ != nullptr) {
      return ledger_->deposit(
          task.experimenter, task.reward_credits * (1.0 + kRecruitmentFee),
          "escrow refund", now);
    }
    return util::Status::ok_status();
  }
  return util::make_error(util::ErrorCode::kNotFound, "unknown task");
}

const TesterTask* TesterPool::find(TaskId id) const {
  for (const auto& task : tasks_) {
    if (task.id == id) return &task;
  }
  return nullptr;
}

std::vector<TaskId> TesterPool::open_tasks() const {
  std::vector<TaskId> out;
  for (const auto& task : tasks_) {
    if (task.state == TaskState::kOpen) out.push_back(task.id);
  }
  return out;
}

}  // namespace blab::server
