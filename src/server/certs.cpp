#include "server/certs.hpp"

namespace blab::server {

CertificateManager::CertificateManager(std::string zone)
    : zone_{std::move(zone)} {}

const Certificate& CertificateManager::issue(util::TimePoint now) {
  current_.common_name = "*." + zone_;
  current_.serial = next_serial_++;
  current_.issued_at = now;
  current_.expires_at = now + kLifetime;
  return current_;
}

bool CertificateManager::needs_renewal(util::TimePoint now) const {
  if (current_.serial == 0) return true;  // never issued
  return now >= current_.expires_at - kRenewalMargin;
}

util::Status CertificateManager::deploy_to(const std::string& node_label,
                                           util::TimePoint now) {
  if (current_.serial == 0) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no certificate issued yet");
  }
  if (!current_.valid_at(now)) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "certificate expired; renew first");
  }
  deployed_[node_label] = current_.serial;
  return util::Status::ok_status();
}

std::uint64_t CertificateManager::deployed_serial(
    const std::string& node_label) const {
  const auto it = deployed_.find(node_label);
  return it == deployed_.end() ? 0 : it->second;
}

bool CertificateManager::node_current(const std::string& node_label) const {
  return deployed_serial(node_label) == current_.serial &&
         current_.serial != 0;
}

}  // namespace blab::server
