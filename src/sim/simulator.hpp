// Discrete-event simulation kernel.
//
// Every BatteryLab component (network links, power monitor, controller
// services, scheduler) is driven by one Simulator instance. Events execute in
// timestamp order; ties break by scheduling order so runs are deterministic.
//
// Hot-path design (see DESIGN.md §8): pending events live in a pooled arena
// of recycled slots holding a small-buffer-optimized callback, so the common
// schedule/fire cycle allocates nothing. Slots are stored in fixed-size
// chunks that never relocate, which keeps arena growth cheap (no slot moves)
// and lets callbacks fire in place. The priority queue is a 4-ary heap of
// 24-byte POD entries (timestamp, sequence, slot, generation) — callbacks
// and labels never move during heap sifts. Cancellation is lazy: cancelling
// bumps the slot's generation counter and stale heap entries are skipped when
// they surface, replacing the old per-event hash-set membership test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "util/logging.hpp"
#include "util/time.hpp"

namespace blab::obs {
class MetricsRegistry;
class Tracer;
}  // namespace blab::obs

namespace blab::sim {

using util::Duration;
using util::TimePoint;

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (arena slot, occupancy tag); never 0 for a real event. The tag is
/// the low 32 bits of the event's global sequence number, so every occupancy
/// of a slot carries a fresh tag. Handles are only meaningful against the
/// Simulator that issued them, and a stale handle can alias a newer event
/// only if the same slot is re-occupied exactly 2^32 sequence numbers later.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  /// Legacy callback alias; schedule_at/schedule_after accept any callable
  /// and store it allocation-free when it fits InlineCallback's buffer.
  using Callback = std::function<void()>;
  /// Observer invoked for every executed event: (timestamp, sequence number,
  /// label). Drives the deterministic-simulation-testing trace recorder; an
  /// empty hook costs one branch per event.
  using TraceHook =
      std::function<void(TimePoint, std::uint64_t, const std::string&)>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Per-deployment telemetry. Every component holding a Simulator& reaches
  /// its instruments through here, which keeps a pooled DST corpus run
  /// (one Simulator per worker) free of cross-scenario interference. The
  /// kernel publishes its own series (events dispatched, lazy-cancel skips,
  /// heap high-water, past-t clamps) via a snapshot-time collector, so the
  /// event hot path carries no extra atomic traffic.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  /// Sim-time span tracer, stamped from now().
  obs::Tracer& tracer() { return *tracer_; }

  /// Schedule `fn` at absolute time `t`.
  ///
  /// Contract: a `t` earlier than now() is CLAMPED to now() — the event still
  /// fires, at the current instant, in scheduling order among its peers. The
  /// clamp is silent except for one debug-level log line per distinct label
  /// (so a DST fault schedule that mis-orders its timestamps is visible
  /// without flooding the log).
  ///
  /// The label is kept only while a trace hook is installed; untraced runs
  /// drop it immediately and pay no label storage cost.
  template <typename F>
  EventId schedule_at(TimePoint t, F&& fn, std::string label = {}) {
    if (t < now_) {
      note_clamped(t, label);
      t = now_;
    }
    return schedule_impl(t, InlineCallback(std::forward<F>(fn)),
                         std::move(label));
  }

  /// Schedule `fn` after delay `d` from now (negative delays clamp to now).
  template <typename F>
  EventId schedule_after(Duration d, F&& fn, std::string label = {}) {
    if (d.is_negative()) d = Duration::zero();
    return schedule_impl(now_ + d, InlineCallback(std::forward<F>(fn)),
                         std::move(label));
  }

  /// Cancel a pending event; returns false if it already fired or is unknown.
  bool cancel(EventId id);
  bool is_pending(EventId id) const;

  /// Execute the next event, if any; returns false when the queue is empty.
  bool step();
  /// Run events with timestamp <= t, then advance the clock to exactly t.
  /// Returns the number of events executed.
  std::size_t run_until(TimePoint t);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Drain the whole queue (use with care: periodic tasks never drain).
  /// Stops after `max_events`; check hit_cap() to distinguish a drained
  /// queue from a tripped cap (a self-rescheduling task never drains).
  std::size_t run_all(std::size_t max_events = 100'000'000);
  /// True when the last run_all stopped at its cap with events still pending.
  bool hit_cap() const { return hit_cap_; }

  /// Install (or clear, with nullptr) the per-event execution observer.
  /// Install it before scheduling: labels of events scheduled while no hook
  /// was present have already been dropped and trace as "".
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }
  bool has_trace_hook() const { return static_cast<bool>(trace_); }

  std::size_t pending_events() const { return live_count_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  friend struct SimulatorTestAccess;

  /// One arena slot, exactly one cache line: the inline callback plus the
  /// liveness word. Timestamp, sequence number and label are NOT duplicated
  /// here — timestamp and sequence ride in the heap entry that fires the
  /// slot, and (sequence, label) for traced runs live in the `trace_info_`
  /// side array. `tag` is the low 32 bits of the occupying event's sequence
  /// number; it changes on every occupancy, invalidating stale handles and
  /// stale heap entries.
  struct Slot {
    InlineCallback cb;
    std::uint32_t tag = 0;
    bool in_use = false;
  };
  static_assert(sizeof(Slot) <= 64, "Slot outgrew a cache line");

  /// Heap entries are 16-byte PODs so sifts move minimal memory and never
  /// touch callbacks or labels. Ties in at_us break by seq32, the low 32
  /// bits of the sequence number: exact (FIFO) as long as two same-instant
  /// events are scheduled fewer than 2^32 sequence numbers apart, which is
  /// the same aliasing horizon the event handles already accept.
  struct HeapEntry {
    std::int64_t at_us;
    std::uint32_t seq32;
    std::uint32_t slot;
  };
  static_assert(sizeof(HeapEntry) == 16, "HeapEntry should stay 16 bytes");

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at_us != b.at_us) return a.at_us < b.at_us;
    return a.seq32 < b.seq32;
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t tag) {
    return (static_cast<EventId>(tag) << 32) | (static_cast<EventId>(slot) + 1);
  }

  /// Slots live in fixed-size chunks so growing the arena never relocates a
  /// live slot: callbacks can run in place and references survive reentrant
  /// scheduling from inside a firing callback.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  Slot& slot_ref(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  const Slot& slot_ref(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }

  EventId schedule_impl(TimePoint t, InlineCallback cb, std::string label);
  /// Slot for a live (scheduled, uncancelled, unfired) id, else nullptr.
  Slot* find_live(EventId id);
  const Slot* find_live(EventId id) const;
  /// Return a slot to the free list: clears callback/label, bumps generation.
  void release_slot(Slot& slot, std::uint32_t index);
  /// Pop cancelled/stale heap entries until the top is live. False if empty.
  bool settle_top();
  /// Execute the top heap entry (must be live, i.e. settle_top() was true).
  void fire_top();
  void heap_push(HeapEntry entry);
  void heap_pop();
  void note_clamped(TimePoint t, const std::string& label);

  TimePoint now_ = TimePoint::epoch();
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  /// Per-slot trace metadata (full 64-bit sequence number and label), written
  /// only while a trace hook is installed. Untraced runs never touch (or
  /// size) this array.
  struct TraceInfo {
    std::uint64_t seq = 0;
    std::string label;
  };
  std::vector<TraceInfo> trace_info_;
  std::vector<HeapEntry> heap_;
  std::size_t live_count_ = 0;
  /// Heap entries orphaned by cancel(); when zero, the heap top is live by
  /// construction and settle_top() skips slot validation.
  std::size_t stale_entries_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool hit_cap_ = false;
  TraceHook trace_;
  util::OncePerKey clamp_logged_;

  // Kernel self-metrics, published by a collector at snapshot time.
  std::uint64_t stale_skipped_ = 0;
  std::uint64_t clamp_events_ = 0;
  std::size_t heap_high_water_ = 0;
  /// Collector bookkeeping: counters already pushed into the registry, so
  /// repeated snapshots publish only the delta.
  struct PublishedKernelStats {
    std::uint64_t dispatched = 0;
    std::uint64_t stale_skipped = 0;
    std::uint64_t clamps = 0;
    std::uint64_t trace_finished = 0;
    std::uint64_t trace_sampled_out = 0;
    std::uint64_t trace_links = 0;
    std::uint64_t trace_dropped = 0;
    std::uint64_t trace_end_mismatches = 0;
    std::uint64_t trace_tail_slow = 0;
    std::uint64_t trace_tail_overflows = 0;
  };
  PublishedKernelStats published_;

  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
};

/// Test-only backdoor: lets kernel tests jump the global sequence counter to
/// the edge of the 32-bit tag space, so tag-wraparound behaviour is testable
/// without performing 2^32 schedule/cancel cycles.
struct SimulatorTestAccess {
  static std::uint32_t slot_index(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFull) - 1;
  }
  static std::uint32_t tag(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static void set_next_seq(Simulator& sim, std::uint64_t seq) {
    sim.next_seq_ = seq;
  }
  static std::uint64_t next_seq(const Simulator& sim) { return sim.next_seq_; }
  static bool slot_in_use(const Simulator& sim, std::uint32_t slot) {
    return sim.slot_ref(slot).in_use;
  }
};

}  // namespace blab::sim
