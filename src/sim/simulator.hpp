// Discrete-event simulation kernel.
//
// Every BatteryLab component (network links, power monitor, controller
// services, scheduler) is driven by one Simulator instance. Events execute in
// timestamp order; ties break by scheduling order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace blab::sim {

using util::Duration;
using util::TimePoint;

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;
  /// Observer invoked for every executed event: (timestamp, sequence number,
  /// label). Drives the deterministic-simulation-testing trace recorder; an
  /// empty hook costs one branch per event.
  using TraceHook =
      std::function<void(TimePoint, std::uint64_t, const std::string&)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now).
  EventId schedule_at(TimePoint t, Callback cb, std::string label = {});
  /// Schedule `cb` after delay `d` from now (negative delays clamp to now).
  EventId schedule_after(Duration d, Callback cb, std::string label = {});
  /// Cancel a pending event; returns false if it already fired or is unknown.
  bool cancel(EventId id);
  bool is_pending(EventId id) const;

  /// Execute the next event, if any; returns false when the queue is empty.
  bool step();
  /// Run events with timestamp <= t, then advance the clock to exactly t.
  /// Returns the number of events executed.
  std::size_t run_until(TimePoint t);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Drain the whole queue (use with care: periodic tasks never drain).
  /// Stops after `max_events`; check hit_cap() to distinguish a drained
  /// queue from a tripped cap (a self-rescheduling task never drains).
  std::size_t run_all(std::size_t max_events = 100'000'000);
  /// True when the last run_all stopped at its cap with events still pending.
  bool hit_cap() const { return hit_cap_; }

  /// Install (or clear, with nullptr) the per-event execution observer.
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }
  bool has_trace_hook() const { return static_cast<bool>(trace_); }

  std::size_t pending_events() const { return live_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    EventId id;
    Callback cb;
    std::string label;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Event& out);

  TimePoint now_ = TimePoint::epoch();
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool hit_cap_ = false;
  TraceHook trace_;
};

}  // namespace blab::sim
