#include "sim/periodic.hpp"

#include <cassert>

namespace blab::sim {

PeriodicTask::PeriodicTask(Simulator& sim, Duration period, Tick tick)
    : sim_{sim}, period_{period}, tick_{std::move(tick)} {
  assert(period_ > Duration::zero());
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_after(period_); }

void PeriodicTask::start_after(Duration initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTask::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] { fire(); }, "periodic");
}

void PeriodicTask::fire() {
  pending_ = kInvalidEvent;
  if (!running_) return;
  ++ticks_;
  tick_();
  // The tick may have stopped the task; only re-arm if still running.
  if (running_) arm(period_);
}

}  // namespace blab::sim
