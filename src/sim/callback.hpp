// Small-buffer-optimized, move-only callback for the event arena.
//
// std::function heap-allocates once a capture list outgrows ~16 bytes, and
// nearly every scheduled callback in the platform captures more than that
// (component pointers, serials, labels). InlineCallback keeps captures up to
// kInlineBytes in the event slot itself, so the common schedule/fire cycle
// performs zero allocations; oversized callables fall back to one heap box.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace blab::sim {

class InlineCallback {
 public:
  /// Sized so an arena Slot (buffer + ops pointer + generation/liveness) is
  /// exactly one 64-byte cache line: every capture list in the simulator's
  /// hot paths (component pointers, a couple of scalars, one moved string)
  /// fits, and the rare fat fault-injection lambda takes the heap box.
  static constexpr std::size_t kInlineBytes = 48;
  /// Captures needing stricter alignment (vector types, long double) than a
  /// pointer also take the heap box; requiring only 8-byte alignment keeps
  /// the Slot free of padding.
  static constexpr std::size_t kInlineAlign = 8;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable into `dst` and destroy the `src` copy.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineModel {
    static F* self(void* s) { return std::launder(reinterpret_cast<F*>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* from = self(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* s) noexcept { self(s)->~F(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapModel {
    static F* self(const void* s) {
      return *std::launder(
          reinterpret_cast<F* const*>(const_cast<void*>(s)));
    }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(self(src));  // pointer itself is trivially movable
    }
    static void destroy(void* s) noexcept { delete self(s); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& fn) {
    using D = std::remove_cvref_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineModel<D>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &HeapModel<D>::kOps;
    }
  }

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace blab::sim
