// Periodic task helper on top of the simulator.
//
// Used by pollers (Monsoon readout, CPU sampling, speedtest probes). The task
// re-arms itself after each tick until stopped; stopping from inside the tick
// callback is allowed.
#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace blab::sim {

class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Simulator& sim, Duration period, Tick tick);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Arm the task; first tick fires one period from now (or `initial_delay`).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  bool running() const { return running_; }

  Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void arm(Duration delay);
  void fire();

  Simulator& sim_;
  Duration period_;
  Tick tick_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace blab::sim
