#include "sim/simulator.hpp"

#include <cassert>

namespace blab::sim {

EventId Simulator::schedule_at(TimePoint t, Callback cb, std::string label) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  live_.insert(id);
  queue_.push(Event{t, next_seq_++, id, std::move(cb), std::move(label)});
  return id;
}

EventId Simulator::schedule_after(Duration d, Callback cb, std::string label) {
  if (d.is_negative()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(cb), std::move(label));
}

bool Simulator::cancel(EventId id) {
  // Lazy cancellation: remove from the live set; the queue entry is dropped
  // when it reaches the top. Returns false for fired/unknown ids.
  return live_.erase(id) > 0;
}

bool Simulator::is_pending(EventId id) const { return live_.contains(id); }

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = live_.find(ev.id); it != live_.end()) {
      live_.erase(it);
      out = std::move(ev);
      return true;
    }
    // Cancelled event: skip.
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  assert(ev.at >= now_);
  now_ = ev.at;
  ++executed_;
  if (trace_) trace_(ev.at, ev.seq, ev.label);
  ev.cb();
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.at > t) {
      // Not due yet: reinstate and stop.
      live_.insert(ev.id);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.at;
    ++executed_;
    ++n;
    if (trace_) trace_(ev.at, ev.seq, ev.label);
    ev.cb();
  }
  if (t > now_) now_ = t;
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  hit_cap_ = false;
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  hit_cap_ = n >= max_events && !live_.empty();
  return n;
}

}  // namespace blab::sim
