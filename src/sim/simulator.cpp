#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace blab::sim {

Simulator::Simulator()
    : metrics_{std::make_unique<obs::MetricsRegistry>()},
      tracer_{std::make_unique<obs::Tracer>([this] { return now_.us(); })} {
  // Kernel self-metrics ride a snapshot-time collector instead of hot-path
  // increments: the kernel keeps plain members, and snapshot() publishes the
  // delta since the previous snapshot into the registry counters.
  metrics_->add_collector([this] {
    obs::MetricsRegistry& m = *metrics_;
    m.counter("blab_sim_events_dispatched_total")
        .inc(executed_ - published_.dispatched);
    published_.dispatched = executed_;
    m.counter("blab_sim_lazy_cancel_skips_total")
        .inc(stale_skipped_ - published_.stale_skipped);
    published_.stale_skipped = stale_skipped_;
    m.counter("blab_sim_past_clamp_events_total")
        .inc(clamp_events_ - published_.clamps);
    published_.clamps = clamp_events_;
    m.gauge("blab_sim_heap_high_water").set(
        static_cast<double>(heap_high_water_));
    m.gauge("blab_sim_pending_events").set(static_cast<double>(live_count_));
    m.gauge("blab_sim_now_seconds").set(static_cast<double>(now_.us()) / 1e6);
    // Tracer self-metrics: same delta-publishing pattern, so the trace
    // analytics layer (sampling, retry links) is observable from /metrics.
    // Tracer::clear() can shrink a stat between snapshots; clamp the delta
    // at zero so counters stay monotone.
    const auto delta = [](std::uint64_t current, std::uint64_t& published) {
      const std::uint64_t d = current >= published ? current - published : 0;
      published = current;
      return d;
    };
    const obs::Tracer& t = *tracer_;
    m.counter("blab_trace_spans_finished_total")
        .inc(delta(t.spans().size(), published_.trace_finished));
    m.counter("blab_trace_spans_sampled_out_total")
        .inc(delta(t.sampled_out(), published_.trace_sampled_out));
    m.counter("blab_trace_span_links_total")
        .inc(delta(t.links_added(), published_.trace_links));
    m.counter("blab_trace_spans_dropped_total")
        .inc(delta(t.dropped(), published_.trace_dropped));
    m.counter("blab_trace_end_mismatches_total")
        .inc(delta(t.end_mismatches(), published_.trace_end_mismatches));
    m.counter("blab_trace_tail_slow_traces_total")
        .inc(delta(t.tail_slow_traces(), published_.trace_tail_slow));
    m.counter("blab_trace_tail_overflows_total")
        .inc(delta(t.tail_overflows(), published_.trace_tail_overflows));
    m.gauge("blab_trace_open_spans").set(static_cast<double>(t.open_total()));
    m.gauge("blab_trace_tail_pending_spans")
        .set(static_cast<double>(t.tail_pending()));
  });
}

Simulator::~Simulator() = default;

EventId Simulator::schedule_impl(TimePoint t, InlineCallback cb,
                                 std::string label) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = slot_count_;
    if ((index & kChunkMask) == 0) {
      // Default-init, not make_unique's value-init: zeroing every slot's
      // 112-byte callback buffer would double the cost of growing the arena.
      chunks_.emplace_back(new Slot[kChunkSize]);
    }
    ++slot_count_;
  }
  const std::uint64_t seq = next_seq_++;
  const auto tag = static_cast<std::uint32_t>(seq);
  Slot& slot = slot_ref(index);
  slot.in_use = true;
  slot.tag = tag;
  slot.cb = std::move(cb);
  // Untraced runs drop the label here: trace_info_ stays empty and the
  // caller's temporary dies without ever being copied into the arena.
  if (trace_) {
    if (trace_info_.size() <= index) trace_info_.resize(index + 1);
    trace_info_[index] = TraceInfo{seq, std::move(label)};
  }
  heap_push(HeapEntry{t.us(), tag, index});
  ++live_count_;
  return make_id(index, tag);
}

Simulator::Slot* Simulator::find_live(EventId id) {
  if (id == kInvalidEvent) return nullptr;
  const auto raw = static_cast<std::uint32_t>(id & 0xFFFFFFFFull);
  if (raw == 0 || raw > slot_count_) return nullptr;
  Slot& slot = slot_ref(raw - 1);
  const auto tag = static_cast<std::uint32_t>(id >> 32);
  if (!slot.in_use || slot.tag != tag) return nullptr;
  return &slot;
}

const Simulator::Slot* Simulator::find_live(EventId id) const {
  return const_cast<Simulator*>(this)->find_live(id);
}

void Simulator::release_slot(Slot& slot, std::uint32_t index) {
  // No tag bump needed: the next occupancy brings a fresh sequence-derived
  // tag, and a not-in-use slot already fails every handle/entry check.
  slot.cb.reset();
  if (index < trace_info_.size()) trace_info_[index].label.clear();
  slot.in_use = false;
  free_slots_.push_back(index);
  --live_count_;
}

bool Simulator::cancel(EventId id) {
  // Lazy cancellation: free the slot and bump its generation; the heap entry
  // is dropped when it reaches the top. Returns false for fired/unknown ids.
  Slot* slot = find_live(id);
  if (slot == nullptr) return false;
  release_slot(*slot, SimulatorTestAccess::slot_index(id));
  ++stale_entries_;  // its heap entry is dropped when it surfaces
  return true;
}

bool Simulator::is_pending(EventId id) const {
  return find_live(id) != nullptr;
}

bool Simulator::settle_top() {
  // Every stale entry comes from a cancel(); while none are outstanding the
  // top needs no validation at all.
  if (stale_entries_ == 0) return !heap_.empty();
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slot_ref(top.slot);
    if (slot.in_use && slot.tag == top.seq32) return true;
    heap_pop();  // cancelled slot: drop the stale entry
    --stale_entries_;
    ++stale_skipped_;
  }
  return false;
}

void Simulator::fire_top() {
  const HeapEntry top = heap_.front();
  heap_pop();
  Slot& slot = slot_ref(top.slot);
  assert(top.at_us >= now_.us());
  now_ = TimePoint::from_micros(top.at_us);
  ++executed_;
  // Invalidate the handle before invoking (cancel()/is_pending() on the
  // firing event see it as gone), but keep the slot OFF the free list until
  // the callback returns. Chunked storage means the slot cannot move, so the
  // callback runs in place — no buffer relocation per event — even when it
  // reentrantly schedules, cancels, or grows the arena.
  slot.in_use = false;
  --live_count_;
  if (trace_) {
    // Move the info out first: a hook that schedules could resize the array.
    TraceInfo info;
    if (top.slot < trace_info_.size()) info = std::move(trace_info_[top.slot]);
    trace_(now_, info.seq, info.label);
  }
  slot.cb();
  slot.cb.reset();
  if (top.slot < trace_info_.size()) trace_info_[top.slot].label.clear();
  free_slots_.push_back(top.slot);
}

bool Simulator::step() {
  if (!settle_top()) return false;
  fire_top();
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (settle_top() && heap_.front().at_us <= t.us()) {
    fire_top();
    ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  hit_cap_ = false;
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  hit_cap_ = n >= max_events && live_count_ > 0;
  return n;
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_less(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::heap_pop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (entry_less(heap_[c], heap_[best])) best = c;
    }
    if (!entry_less(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Simulator::note_clamped(TimePoint t, const std::string& label) {
  ++clamp_events_;
  // Documented contract: past timestamps clamp to now(). Surface each
  // mis-ordered call site once (OncePerKey rate limiter), and only when
  // someone is listening at debug level, so the bookkeeping set cannot grow
  // in production runs.
  if (!util::Logger::global().enabled(util::LogLevel::kDebug)) return;
  if (!clamp_logged_.first(label)) return;
  BLAB_DEBUG("sim", "schedule_at past timestamp "
                        << util::to_string(t) << " clamped to now="
                        << util::to_string(now_) << " (label '" << label
                        << "')");
}

}  // namespace blab::sim
