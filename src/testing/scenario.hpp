// Seed-driven scenario fuzzer.
//
// A scenario is everything the deterministic-simulation-testing harness needs
// to build and exercise a whole BatteryLab deployment: a topology of vantage
// points with varied WAN links, a zoo of devices (phones, iPhones, laptops,
// IoT sensors) with randomized process mixes, a fault schedule (relay flaps,
// mains loss, WiFi drops, VPN churn, USB power cycles), and a stream of jobs
// with randomized constraints and credit funding. Every decision is made here,
// at generation time, from the seed alone — the harness replays the spec
// mechanically, so two runs of one spec must be event-for-event identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace blab::testing {

struct ProcessSpec {
  std::string name;
  double demand = 0.0;  ///< base CPU demand contribution in [0, 1]
  double jitter = 0.0;  ///< relative sigma of the demand redraw
};

enum class DeviceKind { kPhone, kIphone, kLaptop, kIotSensor };

const char* device_kind_name(DeviceKind kind);

struct DeviceGenSpec {
  DeviceKind kind = DeviceKind::kPhone;
  std::string serial;
  std::vector<ProcessSpec> processes;
};

struct NodeGenSpec {
  std::string label;
  double wan_latency_ms = 6.0;
  double wan_mbps = 200.0;
  std::vector<DeviceGenSpec> devices;
};

enum class FaultKind {
  kRelayFlap,      ///< flip a device's relay channel bypass<->battery
  kMainsLoss,      ///< cut the node's WiFi power socket
  kMainsRestore,   ///< restore mains and reprogram the monitor
  kWifiDrop,       ///< disable the controller<->device WiFi link
  kWifiRestore,
  kVpnConnect,     ///< tunnel the controller through a VPN exit
  kVpnDisconnect,
  kUsbPowerCycle,  ///< drop then restore a device's USB hub port
  kNodeRetire,     ///< retire a vantage point from the registry (DNS gone)
  kNodeReonboard,  ///< re-approve a retired node (DNS re-registered)
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kRelayFlap;
  util::Duration at;       ///< absolute offset from scenario start
  std::size_t node = 0;    ///< index into ScenarioSpec::nodes
  std::size_t device = 0;  ///< index into the node's devices (when relevant)
  std::string location;    ///< VPN exit for kVpnConnect
};

enum class JobKind {
  kIdle,     ///< logs and advances time only
  kMeasure,  ///< full power-measurement pipeline (start/stop monitor)
  kAdb,      ///< automation over ADB (skipped transparently on iOS)
  kVideo,    ///< video playback under measurement
  kMirror,   ///< mirroring session on/off
};

const char* job_kind_name(JobKind kind);

/// Constraint shapes the fuzzer mixes: satisfiable ones must eventually run,
/// impossible ones must stay queued forever.
enum class ConstraintShape {
  kNone,         ///< any free device
  kPinSerial,    ///< a real serial in the topology
  kGhostSerial,  ///< a serial that exists nowhere (never dispatches)
  kModel,        ///< device-model constraint
  kPinNode,      ///< a real node label
  kVpnLocation,  ///< requires a network location (VPN attached)
};

struct JobGenSpec {
  JobKind kind = JobKind::kIdle;
  std::string name;
  int submit_step = 0;    ///< scenario step at which the job is submitted
  bool approved = true;   ///< admin approves the pipeline before dispatch
  ConstraintShape shape = ConstraintShape::kNone;
  std::size_t node = 0;   ///< target node index for pin shapes
  std::size_t device = 0; ///< target device index for pin shapes
  std::string location;   ///< VPN exit for kVpnLocation
  std::size_t owner = 0;  ///< experimenter index
  util::Duration measure_duration = util::Duration::seconds(2);
};

struct ScenarioSpec {
  std::uint64_t seed = 0;
  std::vector<NodeGenSpec> nodes;
  std::vector<FaultSpec> faults;
  std::vector<JobGenSpec> jobs;
  bool enforce_credits = false;
  std::size_t experimenters = 1;
  std::vector<double> initial_credits;  ///< one balance per experimenter
  int steps = 4;
  util::Duration step_length = util::Duration::seconds(4);
};

/// Generate a scenario from a seed. Pure: the same seed always yields the
/// same spec, and the spec fully determines the harness run.
ScenarioSpec generate_scenario(std::uint64_t seed);

/// One-line description for logs and failure messages.
std::string describe(const ScenarioSpec& spec);

/// The fixed CI corpus: the first `n` seeds every `ctest -L dst` run fuzzes.
std::vector<std::uint64_t> default_corpus(std::size_t n);

}  // namespace blab::testing
