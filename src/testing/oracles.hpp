// Cross-layer invariant oracles.
//
// After every scenario step the harness runs a registry of checks over the
// whole deployment. Each oracle encodes a property no sequence of valid
// operations — including the fuzzer's fault schedules — may break:
//
//   clock-monotonicity   simulated time and the executed-event counter never
//                        move backwards
//   scheduler-safety     busy devices are registered devices, the busy set is
//                        empty between steps (jobs run to completion inside
//                        dispatch), nothing unapproved ever ran, and finished
//                        jobs have sane start/finish stamps
//   credit-ledger        no account balance ever goes negative (§5 gating)
//   energy-conservation  every completed capture's sampled mean agrees with
//                        the analytic integral of the relay-board segments it
//                        measured (generalizes property_test Property 1)
//   battery-sanity       no device's pack holds negative charge
//   mirroring-lifecycle  no mirroring session survives its job's device
//                        release — between steps every stream is torn down
//   dns-cert-consistency approved nodes resolve in DNS to their controller,
//                        are covered by the wildcard certificate and hold a
//                        deployed serial; non-approved nodes never resolve
//                        (holds across retire/re-onboard churn)
//   metric-accounting    the telemetry registry agrees with ground truth:
//                        jobs_submitted == queued + running + finished +
//                        aborted, and each series matches the scheduler's
//                        actual job-state counts
//   trace-integrity      every job yields one well-formed causal trace (one
//                        root, reachable spans, nested intervals, nothing
//                        open after a terminal state, purged workspaces only
//                        on terminal jobs) and cross-trace links are sane
//                        and time-ordered
//   retry-chain          resubmitted jobs form acyclic, time-ordered chains:
//                        retry_of/retried_by are a bijection onto terminal
//                        predecessors, attempts count up, each attempt has
//                        its own trace, and a finished retry's root carries
//                        exactly one "retry_of" link to the predecessor root
//   span-conservation    weighted span aggregates are exact: for sampled
//                        families (mirror frames, Monsoon synthesis blocks)
//                        the sum of kept-span weights plus spans still
//                        buffered for a tail-sampling decision equals the
//                        unsampled registry counter, and no zero-weight span
//                        is ever buffered
//   rollup-accuracy      when the fleet health engine is enabled, the fleet
//                        rollup reproduces an independent ascending-id fold
//                        over the persisted catalog exactly (energy, charge,
//                        mean, counts), each capture's summary energy equals
//                        the store's footer integral bit-for-bit, and the
//                        job/vantage scopes partition the fleet
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/vantage_point.hpp"
#include "hw/power_monitor.hpp"
#include "server/access_server.hpp"
#include "util/time.hpp"

namespace blab::testing {

/// A capture completed by a scenario job, queued for the energy oracle.
struct CaptureRecord {
  std::size_t node = 0;  ///< index into OracleContext::nodes
  util::TimePoint t0;
  util::TimePoint t1;
  hw::Capture capture;
};

/// Everything the oracles may inspect. The harness owns the referenced
/// objects; oracles never mutate the deployment.
struct OracleContext {
  sim::Simulator* sim = nullptr;
  server::AccessServer* server = nullptr;
  std::vector<api::VantagePoint*> nodes;
  std::vector<std::string> registered_serials;
  std::vector<CaptureRecord> captures;  ///< appended by measurement jobs
};

struct OracleFinding {
  std::string oracle;
  std::string detail;
};

class InvariantOracle {
 public:
  virtual ~InvariantOracle() = default;
  virtual const char* name() const = 0;
  /// Append a finding per violation. Oracles may keep state between calls
  /// (e.g. the last observed clock) — one registry instance per scenario run.
  virtual void check(const OracleContext& ctx,
                     std::vector<OracleFinding>& out) = 0;
};

class OracleRegistry {
 public:
  /// Constructs with the default cross-layer oracle set.
  OracleRegistry();

  void add(std::unique_ptr<InvariantOracle> oracle);
  std::size_t size() const { return oracles_.size(); }
  std::vector<std::string> names() const;

  /// Run every oracle; returns all findings from this sweep.
  std::vector<OracleFinding> run(const OracleContext& ctx);

 private:
  std::vector<std::unique_ptr<InvariantOracle>> oracles_;
};

}  // namespace blab::testing
