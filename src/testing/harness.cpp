#include "testing/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "device/android.hpp"
#include "device/device.hpp"
#include "device/video_player.hpp"
#include "net/vpn.hpp"
#include "obs/export.hpp"
#include "server/access_server.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace blab::testing {

namespace {

using util::Duration;
using util::TimePoint;

device::DeviceSpec make_device_spec(const DeviceGenSpec& gen) {
  switch (gen.kind) {
    case DeviceKind::kIphone: return device::DeviceSpec::iphone(gen.serial);
    case DeviceKind::kLaptop: return device::DeviceSpec::laptop(gen.serial);
    case DeviceKind::kIotSensor:
      return device::DeviceSpec::iot_sensor(gen.serial);
    case DeviceKind::kPhone: break;
  }
  device::DeviceSpec spec;
  spec.serial = gen.serial;
  return spec;
}

/// Everything scenario job scripts and fault handlers need to reach. Owned by
/// run_scenario; all pointers outlive every scheduled callback.
struct RunState {
  sim::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  net::VpnProvider* vpn = nullptr;
  server::AccessServer* server = nullptr;
  TraceRecorder* recorder = nullptr;
  OracleContext* ctx = nullptr;
  std::vector<OracleFinding>* violations = nullptr;
  std::map<std::string, std::size_t> node_index;  ///< label -> ctx->nodes slot
  std::size_t faults_fired = 0;
};

/// Shared measurement pipeline for kMeasure and kVideo jobs: power and
/// program the Monsoon for the assigned device's pack voltage, capture for
/// `duration`, and hand the capture to the energy-conservation oracle.
util::Status run_measure(RunState* rs, server::JobContext& ctx,
                         Duration duration) {
  api::VantagePoint& vp = ctx.api->vantage_point();
  device::AndroidDevice* dev = vp.find_device(ctx.device_serial);
  if (dev == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "assigned device not found: " + ctx.device_serial);
  }
  // In-script double-booking probe: while this job runs, the scheduler must
  // be holding its device.
  if (!rs->server->scheduler().device_busy(ctx.device_serial)) {
    rs->violations->push_back(
        {"scheduler-safety",
         "running job's device missing from busy set: " + ctx.device_serial});
  }
  if (!ctx.api->monitor_powered()) {
    if (auto st = ctx.api->power_monitor(); !st.ok()) return st;
  }
  if (auto st = ctx.api->set_voltage(dev->spec().battery.nominal_voltage);
      !st.ok()) {
    return st;
  }
  auto cap = ctx.api->run_monitor(ctx.device_serial, duration);
  if (!cap.ok()) {
    ctx.workspace->log("measurement aborted");
    return cap.error();
  }
  const hw::Capture& capture = cap.value();
  const auto it = rs->node_index.find(ctx.node_label);
  const std::size_t node = it == rs->node_index.end() ? 0 : it->second;
  rs->ctx->captures.push_back(CaptureRecord{
      node, capture.start(), capture.start() + capture.duration(), capture});
  // Folding the sampled mean into the digest makes replay sensitive to the
  // measurement *values*, not just the event stream.
  rs->recorder->note(
      "capture " + ctx.device_serial + " n=" +
      std::to_string(capture.samples_ma().size()) + " mean=" +
      util::format_double(capture.mean_current_ma(), 6));
  ctx.workspace->store_artifact(
      "mean_ma", util::format_double(capture.mean_current_ma(), 3));
  // The scheduler archived this capture into the platform store; its
  // footer-served summary must match the sequential mean (only last-ulp
  // float-summation differences are tolerated), and its chunks must decode
  // back to the exact sample count. Folding the stored mean into the digest
  // makes replay sensitive to the whole encode/summarize path.
  store::CaptureStore* cs = rs->server->scheduler().capture_store();
  const auto cid = ctx.api->last_capture_id();
  if (cs != nullptr && cid.has_value()) {
    const auto stored = cs->mean_ma(*cid);
    const double mean = capture.mean_current_ma();
    if (!stored.ok() ||
        std::abs(stored.value() - mean) >
            1e-6 * std::max(1.0, std::abs(mean))) {
      rs->violations->push_back(
          {"capture-store",
           "archived summary diverges from capture " + cid->str() + ": " +
               (stored.ok() ? util::format_double(stored.value(), 6)
                            : stored.error().str()) +
               " vs " + util::format_double(mean, 6)});
    }
    const store::ChunkedCapture* archived = cs->find(*cid);
    if (archived == nullptr ||
        archived->sample_count() != capture.sample_count()) {
      rs->violations->push_back(
          {"capture-store", "archived sample count diverges for " +
                                cid->str()});
    }
    rs->recorder->note("store " + cid->str() + " chunks=" +
                       std::to_string(archived != nullptr
                                          ? archived->chunk_count()
                                          : 0) +
                       " mean=" +
                       util::format_double(stored.ok() ? stored.value() : -1.0,
                                           6));
  }
  return util::Status::ok_status();
}

server::JobScript make_script(const JobGenSpec& gen, RunState* rs) {
  const Duration duration = gen.measure_duration;
  switch (gen.kind) {
    case JobKind::kIdle:
      return [](server::JobContext& ctx) {
        ctx.workspace->log("idle tick");
        ctx.api->vantage_point().simulator().run_for(Duration::millis(200));
        return util::Status::ok_status();
      };
    case JobKind::kAdb:
      return [](server::JobContext& ctx) -> util::Status {
        api::VantagePoint& vp = ctx.api->vantage_point();
        device::AndroidDevice* dev = vp.find_device(ctx.device_serial);
        if (dev != nullptr &&
            dev->spec().platform == device::Platform::kIos) {
          ctx.workspace->log("adb skipped on iOS");
          return util::Status::ok_status();
        }
        auto out = ctx.api->execute_adb(ctx.device_serial, "dumpsys battery");
        if (!out.ok()) return out.error();
        ctx.workspace->log(out.value());
        return util::Status::ok_status();
      };
    case JobKind::kMeasure:
      return [rs, duration](server::JobContext& ctx) {
        return run_measure(rs, ctx, duration);
      };
    case JobKind::kVideo:
      return [rs, duration, name = gen.name](server::JobContext& ctx) {
        api::VantagePoint& vp = ctx.api->vantage_point();
        device::AndroidDevice* dev = vp.find_device(ctx.device_serial);
        device::VideoPlayerApp* player = nullptr;
        if (dev != nullptr &&
            dev->spec().platform == device::Platform::kAndroid) {
          auto app = std::make_unique<device::VideoPlayerApp>(
              *dev, "com.fz." + name);
          device::VideoPlayerApp* raw = app.get();
          if (dev->os().install(std::move(app)).ok() &&
              dev->os().start_activity(raw->package()).ok() &&
              raw->play("/sdcard/fuzz.mp4").ok()) {
            player = raw;
          }
        }
        auto st = run_measure(rs, ctx, duration);
        if (player != nullptr) (void)player->pause();
        return st;
      };
    case JobKind::kMirror:
      return [](server::JobContext& ctx) {
        if (auto st = ctx.api->device_mirroring(ctx.device_serial, true);
            !st.ok()) {
          return st;
        }
        ctx.api->vantage_point().simulator().run_for(Duration::millis(500));
        return ctx.api->device_mirroring(ctx.device_serial, false);
      };
  }
  return [](server::JobContext&) { return util::Status::ok_status(); };
}

server::Job make_job(const ScenarioSpec& spec, const JobGenSpec& gen,
                     RunState* rs) {
  server::Job job;
  job.name = gen.name;
  // Two simulated minutes bounds the worst-case credit hold: funded owners
  // can always cover it, near-broke ones get gated.
  job.max_duration = Duration::minutes(2);
  const NodeGenSpec& node = spec.nodes[gen.node];
  const DeviceGenSpec& dev = node.devices[gen.device % node.devices.size()];
  switch (gen.shape) {
    case ConstraintShape::kNone: break;
    case ConstraintShape::kPinSerial:
      job.constraints.device_serial = dev.serial;
      break;
    case ConstraintShape::kGhostSerial:
      job.constraints.device_serial = "FZ-GHOST-404";
      break;
    case ConstraintShape::kModel:
      job.constraints.device_model = make_device_spec(dev).model;
      break;
    case ConstraintShape::kPinNode:
      job.constraints.node_label = node.label;
      break;
    case ConstraintShape::kVpnLocation:
      job.constraints.network_location = gen.location;
      break;
  }
  job.script = make_script(gen, rs);
  return job;
}

void schedule_faults(const ScenarioSpec& spec, RunState* rs) {
  for (const FaultSpec& f : spec.faults) {
    api::VantagePoint* vp = rs->ctx->nodes[f.node];
    const NodeGenSpec& node = spec.nodes[f.node];
    const std::string serial =
        node.devices[f.device % node.devices.size()].serial;
    std::string label =
        std::string("fault:") + fault_kind_name(f.kind) + ":" + node.label;
    if (f.kind == FaultKind::kRelayFlap || f.kind == FaultKind::kWifiDrop ||
        f.kind == FaultKind::kWifiRestore ||
        f.kind == FaultKind::kUsbPowerCycle) {
      label += ":" + serial;
    }
    sim::Simulator* sim = rs->sim;
    switch (f.kind) {
      case FaultKind::kRelayFlap:
        sim->schedule_after(f.at, [rs, vp, serial] {
          ++rs->faults_fired;
          auto channel = vp->relay_channel_of(serial);
          if (!channel.ok()) return;
          auto pos = vp->relay().position(channel.value());
          if (!pos.ok()) return;
          const auto flipped = pos.value() == hw::RelayPosition::kBypass
                                   ? hw::RelayPosition::kBattery
                                   : hw::RelayPosition::kBypass;
          (void)vp->switch_power(serial, flipped);
        }, label);
        break;
      case FaultKind::kMainsLoss:
        sim->schedule_after(f.at, [rs, vp] {
          ++rs->faults_fired;
          (void)vp->power_socket().turn_off();
        }, label);
        break;
      case FaultKind::kMainsRestore:
        sim->schedule_after(f.at, [rs, vp] {
          ++rs->faults_fired;
          (void)vp->power_socket().turn_on();
        }, label);
        break;
      case FaultKind::kWifiDrop:
      case FaultKind::kWifiRestore:
        sim->schedule_after(
            f.at,
            [rs, vp, serial, enable = f.kind == FaultKind::kWifiRestore] {
              ++rs->faults_fired;
              device::AndroidDevice* dev = vp->find_device(serial);
              if (dev == nullptr) return;
              net::Link* wifi = rs->net->find_link(vp->controller_host(),
                                                   dev->host(), "wifi");
              if (wifi != nullptr) wifi->set_enabled(enable);
            },
            label);
        break;
      case FaultKind::kVpnConnect:
        sim->schedule_after(f.at, [rs, vp, location = f.location] {
          ++rs->faults_fired;
          (void)rs->vpn->connect(vp->controller_host(), location);
        }, label);
        break;
      case FaultKind::kVpnDisconnect:
        sim->schedule_after(f.at, [rs, vp] {
          ++rs->faults_fired;
          (void)rs->vpn->disconnect(vp->controller_host());
        }, label);
        break;
      case FaultKind::kNodeRetire:
        sim->schedule_after(f.at, [rs, node_label = node.label] {
          ++rs->faults_fired;
          (void)rs->server->registry().retire(node_label);
        }, label);
        break;
      case FaultKind::kNodeReonboard:
        // Onboarding flags (key, whitelist) persist through retirement, so
        // re-approval alone restores the node and its DNS record.
        sim->schedule_after(f.at, [rs, node_label = node.label] {
          ++rs->faults_fired;
          (void)rs->server->registry().approve(node_label);
        }, label);
        break;
      case FaultKind::kUsbPowerCycle:
        sim->schedule_after(f.at, [rs, vp, sim, serial, label] {
          ++rs->faults_fired;
          device::AndroidDevice* dev = vp->find_device(serial);
          if (dev == nullptr) return;
          (void)vp->usb_hub().set_port_power_for(dev->host(), false);
          vp->refresh_usb_power();
          sim->schedule_after(Duration::millis(800), [vp, dev] {
            (void)vp->usb_hub().set_port_power_for(dev->host(), true);
            vp->refresh_usb_power();
          }, label + ":restore");
        }, label);
        break;
    }
  }
}

/// Worker-pool map over a seed corpus. Results land at the index of their
/// seed, so the output order is deterministic no matter how many workers run
/// or which finishes first; the atomic claim index is the only coordination.
template <typename Result, typename Fn>
std::vector<Result> pooled_map(const std::vector<std::uint64_t>& seeds,
                               unsigned jobs, Fn fn) {
  std::vector<Result> results(seeds.size());
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, seeds.size()));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) results[i] = fn(seeds[i]);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= seeds.size()) return;
      results[i] = fn(seeds[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::string job_state_counts(const server::Scheduler& scheduler) {
  std::size_t queued = 0, running = 0, ok = 0, failed = 0, aborted = 0;
  for (const server::Job* job : scheduler.all_jobs()) {
    switch (job->state) {
      case server::JobState::kCreated:
      case server::JobState::kQueued: ++queued; break;
      case server::JobState::kRunning: ++running; break;
      case server::JobState::kSucceeded: ++ok; break;
      case server::JobState::kFailed: ++failed; break;
      case server::JobState::kAborted: ++aborted; break;
    }
  }
  std::ostringstream os;
  os << "jobs queued=" << queued << " running=" << running << " ok=" << ok
     << " failed=" << failed << " aborted=" << aborted;
  return os.str();
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, RunOptions{});
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunOptions& options) {
  ScenarioResult result;
  result.seed = spec.seed;
  result.description = describe(spec);

  // ---- deployment (mirrors the integration-test topology) -------------
  sim::Simulator sim;
  net::Network net{sim, spec.seed};
  server::AccessServer server{sim, net};
  net::VpnProvider vpn{net, "internet"};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(Duration::millis(4), 900.0));
  server.scheduler().attach_vpn(&vpn);
  if (spec.enforce_credits) server.enable_credit_enforcement();
  if (!options.persist_dir.empty()) {
    if (auto st = server.enable_persistence(options.persist_dir); !st.ok()) {
      result.violations.push_back(
          {"persistence", "enable_persistence failed: " + st.str()});
      return result;
    }
  }

  TraceRecorder recorder{sim};
  recorder.note(result.description);

  OracleContext ctx;
  ctx.sim = &sim;
  ctx.server = &server;

  RunState state;
  state.sim = &sim;
  state.net = &net;
  state.vpn = &vpn;
  state.server = &server;
  state.recorder = &recorder;
  state.ctx = &ctx;
  state.violations = &result.violations;

  std::vector<std::unique_ptr<api::VantagePoint>> nodes;
  for (const NodeGenSpec& node : spec.nodes) {
    api::VantagePointConfig config;
    config.name = node.label;
    config.seed = spec.seed ^ util::fnv1a(node.label);
    auto vp = std::make_unique<api::VantagePoint>(sim, net, config);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(
                     Duration::seconds(node.wan_latency_ms / 1e3),
                     node.wan_mbps));
    for (const DeviceGenSpec& gen : node.devices) {
      auto added = vp->add_device(make_device_spec(gen));
      if (!added.ok()) continue;
      device::AndroidDevice* dev = added.value();
      for (const ProcessSpec& proc : gen.processes) {
        dev->processes().spawn(proc.name, proc.demand, proc.jitter);
      }
      dev->recompute_power();
      ctx.registered_serials.push_back(gen.serial);
    }
    (void)server.onboard_vantage_point(node.label, *vp);
    state.node_index[node.label] = ctx.nodes.size();
    ctx.nodes.push_back(vp.get());
    nodes.push_back(std::move(vp));
  }

  if (options.enable_health) {
    // After onboarding, so the SLO set covers every vantage point. The
    // recurring evaluation (and, with persistence, checkpoint) jobs ride the
    // ordinary maintenance pipeline and fold into the digest like any job.
    if (auto st = server.enable_health(); !st.ok()) {
      result.violations.push_back(
          {"health", "enable_health failed: " + st.str()});
      return result;
    }
    (void)server.schedule_health_evaluations(options.health_period);
    if (server.persistence_enabled()) {
      (void)server.schedule_persist_checkpoints(options.health_period * 2.0);
    }
  }

  // ---- users and funding ----------------------------------------------
  std::string admin_token;
  if (auto admin = server.users().register_user("fz-admin",
                                                server::Role::kAdmin);
      admin.ok()) {
    admin_token = admin.value();
  }
  std::vector<std::string> exp_names;
  std::vector<std::string> exp_tokens;
  for (std::size_t e = 0; e < spec.experimenters; ++e) {
    const std::string name = "fz-exp" + std::to_string(e);
    exp_names.push_back(name);
    auto token =
        server.users().register_user(name, server::Role::kExperimenter);
    exp_tokens.push_back(token.ok() ? token.value() : std::string{});
    if (spec.enforce_credits && e < spec.initial_credits.size()) {
      (void)server.credits().open_account(name, spec.initial_credits[e]);
    }
  }

  schedule_faults(spec, &state);

  OracleRegistry oracles;

  // ---- the scenario loop ----------------------------------------------
  bool killed = false;
  for (int step = 0; step < spec.steps; ++step) {
    recorder.note("step " + std::to_string(step) + " begin");
    for (const JobGenSpec& gen : spec.jobs) {
      if (gen.submit_step != step) continue;
      const std::string& token = exp_tokens[gen.owner % exp_tokens.size()];
      auto id = server.submit_job(token, make_job(spec, gen, &state));
      if (!id.ok()) continue;
      ++result.jobs_submitted;
      if (gen.approved) (void)server.approve_pipeline(admin_token, id.value());
    }
    if (auto ran = server.run_queue(exp_tokens.front()); ran.ok()) {
      result.jobs_dispatched += ran.value();
    }
    if (options.kill_after_steps >= 0 && step == options.kill_after_steps) {
      // Mid-step kill: advance a fraction of the step, then abandon the loop.
      // No oracles, no step-end note — the process is "dead".
      sim.run_for(std::min(options.kill_extra, spec.step_length));
      killed = true;
      break;
    }
    sim.run_for(spec.step_length);
    // Flush lazy battery integration so the sanity oracle sees fresh state.
    for (api::VantagePoint* vp : ctx.nodes) {
      for (const auto& serial : ctx.registered_serials) {
        if (device::AndroidDevice* dev = vp->find_device(serial)) {
          if (dev->powered_on()) dev->recompute_power();
        }
      }
    }
    for (auto& finding : oracles.run(ctx)) {
      result.violations.push_back(std::move(finding));
    }
    if (options.retry_failed_jobs) {
      // Step-end retry sweep: give every freshly failed/aborted chain one
      // more attempt (dispatch happens through the next step's run_queue).
      // The resubmit events and ids fold into the digest, keeping retry runs
      // replay-checked like everything else.
      server::Scheduler& scheduler = server.scheduler();
      std::vector<server::JobId> to_retry;
      for (const server::Job* job : scheduler.all_jobs()) {
        const bool terminal_bad = job->state == server::JobState::kFailed ||
                                  job->state == server::JobState::kAborted;
        if (terminal_bad && !job->retried_by.valid() &&
            job->attempt < options.max_attempts) {
          to_retry.push_back(job->id);
        }
      }
      for (server::JobId id : to_retry) {
        auto retry = scheduler.resubmit(id);
        if (retry.ok()) {
          recorder.note("resubmit " + id.str() + " -> " + retry.value().str());
        }
      }
    }
    std::string balances = "balances";
    for (const std::string& name : exp_names) {
      const auto& ledger = server.credits().balances();
      const auto it = ledger.find(name);
      balances += " " + name + "=" +
                  (it == ledger.end()
                       ? std::string("-")
                       : util::format_double(it->second, 4));
    }
    recorder.note("step " + std::to_string(step) + " end: " +
                  job_state_counts(server.scheduler()) + "; " + balances);
  }
  if (!killed) recorder.note("scenario end");
  if (options.before_teardown) options.before_teardown(server);

  result.events_executed = sim.executed_events();
  result.captures = ctx.captures.size();
  result.faults_injected = state.faults_fired;
  result.metrics = sim.metrics().snapshot();
  result.metrics_text = obs::encode_prometheus(result.metrics);
  result.spans = sim.tracer().spans();
  result.trace_json = obs::encode_trace_json(result.spans);
  if (server.health_enabled()) {
    // Capture the REST bodies through the real endpoint handlers, so the
    // serial-vs-pooled byte-identity check covers the whole query path.
    controller::RestBackend* rest = server.health_rest();
    const auto grab = [&](const char* endpoint, const std::string& query) {
      auto body = rest->call(endpoint, query);
      return body.ok() ? body.value() : "error: " + body.error().str();
    };
    result.rollup_fleet_json = grab("rollup", "scope=fleet");
    result.rollup_job_json = grab("rollup", "scope=job");
    result.rollup_vantage_json = grab("rollup", "scope=vantage");
    result.health_json = grab("health", "");
  }
  result.digest = recorder.digest();
  result.digest_hex = recorder.digest_hex();
  result.trace = recorder.events();
  return result;
}

ScenarioResult run_scenario(std::uint64_t seed) {
  return run_scenario(generate_scenario(seed));
}

std::vector<ScenarioResult> run_corpus(const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs) {
  return pooled_map<ScenarioResult>(
      seeds, jobs, [](std::uint64_t seed) { return run_scenario(seed); });
}

std::vector<ScenarioResult> run_corpus(const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs,
                                       const RunOptions& options) {
  return pooled_map<ScenarioResult>(seeds, jobs, [&options](std::uint64_t seed) {
    return run_scenario(generate_scenario(seed), options);
  });
}

std::string ScenarioResult::violation_summary() const {
  std::ostringstream os;
  os << "seed " << seed << " (" << description << "): "
     << violations.size() << " oracle violation(s)";
  for (const auto& v : violations) {
    os << "\n  [" << v.oracle << "] " << v.detail;
  }
  return os.str();
}

ReplayReport replay_check(std::uint64_t seed) {
  ReplayReport report;
  report.seed = seed;
  const ScenarioSpec spec = generate_scenario(seed);
  report.first = run_scenario(spec);
  report.second = run_scenario(spec);
  report.divergence = first_divergence(report.first.trace,
                                       report.second.trace);
  report.deterministic = !report.divergence.diverged &&
                         report.first.digest == report.second.digest;
  return report;
}

std::vector<ReplayReport> run_replay_corpus(
    const std::vector<std::uint64_t>& seeds, unsigned jobs) {
  return pooled_map<ReplayReport>(
      seeds, jobs, [](std::uint64_t seed) { return replay_check(seed); });
}

std::string ReplayReport::describe() const {
  if (deterministic) {
    return "seed " + std::to_string(seed) + ": deterministic (digest " +
           first.digest_hex + ", " + std::to_string(first.trace.size()) +
           " events)";
  }
  return "seed " + std::to_string(seed) +
         " is non-deterministic: " + divergence.describe();
}

}  // namespace blab::testing
