// Deterministic-simulation-testing harness.
//
// Builds a whole BatteryLab deployment from a ScenarioSpec — access server,
// vantage points, device zoo, VPN — schedules the spec's fault events on the
// simulator clock, drives the job stream through the real submit/approve/
// dispatch pipeline, and runs the invariant oracles after every step. A
// TraceRecorder shadows the run: every executed simulator event plus every
// scenario-level observation (captures, balances, job-state counts) folds
// into one rolling digest, so two runs of the same seed must produce the
// same 64-bit value or `replay_check` can name the first divergent event.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "testing/oracles.hpp"
#include "testing/scenario.hpp"
#include "testing/trace.hpp"

namespace blab::server {
class AccessServer;
}  // namespace blab::server

namespace blab::testing {

struct ScenarioResult {
  std::uint64_t seed = 0;
  std::string description;        ///< one-line scenario summary
  std::uint64_t digest = 0;       ///< rolling trace digest at scenario end
  std::string digest_hex;
  std::uint64_t events_executed = 0;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_dispatched = 0;
  std::size_t captures = 0;       ///< completed measurements
  std::size_t faults_injected = 0;
  std::vector<OracleFinding> violations;
  std::vector<TraceEventRecord> trace;
  /// Registry snapshot at scenario end. Deliberately NOT folded into the
  /// digest (the digests are pinned), but two runs of the same seed must
  /// still render byte-identical `metrics_text`.
  obs::MetricsSnapshot metrics;
  std::string metrics_text;  ///< Prometheus rendering of `metrics`
  /// Finished spans at scenario end plus their Perfetto rendering. Like the
  /// metrics snapshot these are NOT in the digest, but serial and pooled
  /// runs of the same seed must produce byte-identical `trace_json`.
  std::vector<obs::SpanRecord> spans;
  std::string trace_json;
  /// Fleet-health REST bodies captured at scenario end when
  /// RunOptions::enable_health was set (empty otherwise): GET /rollup for
  /// each scope plus GET /health. Same contract as metrics_text — NOT in the
  /// digest, but serial and pooled runs must be byte-identical.
  std::string rollup_fleet_json;
  std::string rollup_job_json;
  std::string rollup_vantage_json;
  std::string health_json;

  bool ok() const { return violations.empty(); }
  /// Failure-message payload: the seed plus every oracle finding.
  std::string violation_summary() const;
};

/// Knobs for persistence-aware runs. The defaults reproduce the plain
/// run_scenario behavior exactly (same digests, same event stream).
struct RunOptions {
  /// Non-empty: enable the durable capture store rooted here before any job
  /// runs. A directory left by a previous run is recovered, which is how the
  /// kill-restart oracle models a process restart.
  std::string persist_dir;
  /// >= 0: run that many full steps, then *partially* run one more — submit
  /// and dispatch its jobs, advance the clock by min(kill_extra,
  /// step_length), and tear the whole deployment down mid-flight with no
  /// checkpoint or shutdown hook. With persistence enabled this is a
  /// kill -9: only what the WAL/manifest already made durable survives.
  int kill_after_steps = -1;
  /// Sim-time slice of the killed step to execute before the teardown.
  util::Duration kill_extra;
  /// Called right before the deployment is destroyed (after the kill point
  /// on killed runs, after the final step otherwise). The oracle uses it to
  /// snapshot pre-crash query answers.
  std::function<void(server::AccessServer&)> before_teardown;
  /// Retry terminally failed/aborted jobs at each step end via
  /// Scheduler::resubmit, up to max_attempts total attempts per chain. The
  /// resubmitted job gets a fresh trace with a "retry_of" link back to the
  /// predecessor (validated by the retry-chain oracle). Off by default — the
  /// extra submissions change the event stream, so the pinned golden digests
  /// only cover runs without it.
  bool retry_failed_jobs = false;
  std::uint32_t max_attempts = 2;
  /// Turn on the fleet health engine after onboarding: GET /rollup and
  /// GET /health become live, a recurring maintenance job evaluates every
  /// SLO each `health_period`, and (when persistence is on) scheduled
  /// checkpoints fold WALs at twice that cadence. The recurring jobs change
  /// the event stream, so the pinned golden digests only cover runs without
  /// it; the rollup-accuracy oracle only runs with it.
  bool enable_health = false;
  /// Sim-time cadence of the health-evaluation maintenance job. Scenario
  /// horizons are tens of simulated seconds (3-6 steps of 2-5 s), so the
  /// default is short enough that every scenario gets several evaluations.
  util::Duration health_period = util::Duration::seconds(2);
};

/// Run one fully-specified scenario through a fresh deployment.
ScenarioResult run_scenario(const ScenarioSpec& spec);
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunOptions& options);

/// Generate the scenario for `seed` and run it.
ScenarioResult run_scenario(std::uint64_t seed);

/// Run every seed's scenario on a pool of worker threads.
///
/// `jobs == 0` means std::thread::hardware_concurrency(); any value is
/// clamped to the corpus size, and `jobs <= 1` runs inline with no threads.
/// Each scenario builds its own simulator/deployment, so runs are fully
/// independent; workers claim seeds through an atomic index and write into a
/// pre-sized result vector, so `result[i]` always corresponds to `seeds[i]`
/// and the output is byte-identical to a serial run regardless of the job
/// count or completion order. The only shared state is the global log sink:
/// warning lines from concurrent scenarios may interleave on stderr.
std::vector<ScenarioResult> run_corpus(const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs = 0);
/// run_corpus with per-scenario RunOptions (persist dirs are NOT seed-scoped
/// here, so only option sets without persist_dir make sense for a corpus).
std::vector<ScenarioResult> run_corpus(const std::vector<std::uint64_t>& seeds,
                                       unsigned jobs,
                                       const RunOptions& options);

/// Outcome of running one seed twice from scratch and diffing the traces.
struct ReplayReport {
  std::uint64_t seed = 0;
  bool deterministic = false;
  Divergence divergence;  ///< meaningful when !deterministic
  ScenarioResult first;
  ScenarioResult second;

  std::string describe() const;
};

ReplayReport replay_check(std::uint64_t seed);

/// replay_check() across a corpus, on a worker pool. Same jobs semantics and
/// ordering guarantee as run_corpus: `result[i]` is always `seeds[i]`'s
/// report, independent of the job count.
std::vector<ReplayReport> run_replay_corpus(
    const std::vector<std::uint64_t>& seeds, unsigned jobs = 0);

}  // namespace blab::testing
