#include "testing/persist_check.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string_view>
#include <thread>

#include "net/network.hpp"
#include "server/access_server.hpp"
#include "sim/simulator.hpp"
#include "store/capture_store.hpp"
#include "store/persist/engine.hpp"
#include "testing/harness.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace blab::testing {

namespace {

namespace fs = std::filesystem;
using util::Duration;
using util::TimePoint;

/// Every answer the store's query API gives for every record it knows,
/// rendered to one deterministic string. Compared byte-for-byte across the
/// kill. Deliberately excludes source_of(): "memory" before the crash versus
/// "disk" after is the one difference recovery is *allowed* to make.
std::string snapshot_store(store::CaptureStore& store) {
  std::ostringstream os;
  for (const std::string& ws : store.workspaces()) {
    for (const store::CaptureId& id : store.list(ws)) {
      os << id.str();
      if (const auto name = store.name_of(id); name.has_value()) {
        os << " name=" << *name;
      }
      auto raw = store.range(id, TimePoint::epoch(), TimePoint::max());
      if (raw.ok()) {
        const auto& samples = raw.value().samples_ma();
        std::string bits(reinterpret_cast<const char*>(samples.data()),
                         samples.size() * sizeof(float));
        os << " raw n=" << samples.size() << " h=" << util::fnv1a(bits);
      } else {
        os << " raw err=" << util::error_code_name(raw.error().code);
      }
      if (const auto e = store.energy_mwh(id); e.ok()) {
        os << " mwh=" << util::format_double(e.value(), 9);
      }
      if (const auto m = store.mean_ma(id); m.ok()) {
        os << " ma=" << util::format_double(m.value(), 9);
      }
      if (auto agg = store.aggregate(id, Duration::seconds(1)); agg.ok()) {
        os << " agg";
        for (const auto& b : agg.value()) {
          os << " [" << b.t_begin.us() << "," << b.t_end.us() << ")"
             << b.samples << ":" << util::format_double(b.mean_ma, 6) << "/"
             << util::format_double(b.min_ma, 6) << "/"
             << util::format_double(b.max_ma, 6);
        }
      }
      if (auto cdf = store.percentiles(id); cdf.ok()) {
        os << " cdf n=" << cdf.value().count()
           << " p50=" << util::format_double(cdf.value().quantile(0.5), 6)
           << " p90=" << util::format_double(cdf.value().quantile(0.9), 6)
           << " p99=" << util::format_double(cdf.value().quantile(0.99), 6);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

std::string first_diff(const std::string& before, const std::string& after) {
  const auto pre = util::split(before, '\n');
  const auto post = util::split(after, '\n');
  for (std::size_t i = 0; i < std::max(pre.size(), post.size()); ++i) {
    const std::string_view a = i < pre.size() ? pre[i] : "<missing>";
    const std::string_view b = i < post.size() ? post[i] : "<missing>";
    if (a != b) {
      return "line " + std::to_string(i) + ": pre-crash \"" + std::string{a} +
             "\" vs recovered \"" + std::string{b} + "\"";
    }
  }
  return "snapshots differ";
}

/// Smear `garbage` bytes over the end of one shard's WAL — a torn write that
/// landed past the committed prefix. Recovery must drop it and nothing else.
void append_wal_garbage(const std::string& dir, std::size_t shard,
                        util::Rng& rng) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%03zu", shard);
  const fs::path wal = fs::path{dir} / name / "wal.log";
  std::FILE* f = std::fopen(wal.string().c_str(), "ab");
  if (f == nullptr) return;
  const std::size_t garbage =
      static_cast<std::size_t>(rng.uniform_int(1, 24));
  for (std::size_t i = 0; i < garbage; ++i) {
    const char byte = static_cast<char>(rng.uniform_int(0, 255));
    std::fwrite(&byte, 1, 1, f);
  }
  std::fclose(f);
}

}  // namespace

CrashRecoveryReport check_crash_recovery(std::uint64_t seed,
                                         const std::string& dir) {
  CrashRecoveryReport report;
  report.seed = seed;

  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  const ScenarioSpec spec = generate_scenario(seed);
  util::Rng rng{seed ^ 0x6B1115EEDULL};

  RunOptions options;
  options.persist_dir = dir;
  options.kill_after_steps =
      static_cast<int>(rng.uniform_int(0, std::max(0, spec.steps - 1)));
  options.kill_extra = spec.step_length * rng.uniform(0.05, 0.95);
  report.kill_step = options.kill_after_steps;

  std::string before;
  options.before_teardown = [&before](server::AccessServer& server) {
    before = snapshot_store(server.capture_store());
  };
  const ScenarioResult crashed = run_scenario(spec, options);
  for (const auto& v : crashed.violations) {
    if (v.oracle == "persistence") {
      report.detail = v.detail;
      return report;
    }
  }
  report.captures = count_lines(before);

  // Most seeds also tear the tail of one WAL before the "restart".
  if (rng.chance(0.7)) {
    report.torn_tail = true;
    const std::size_t shard = static_cast<std::size_t>(
        rng.uniform_int(0, 3));  // default PersistOptions has 4 shards
    append_wal_garbage(dir, shard, rng);
  }

  // The restart: a fresh deployment recovering the same directory. Only the
  // store matters — no vantage points are onboarded.
  std::string after;
  {
    sim::Simulator sim;
    net::Network net{sim, seed};
    server::AccessServer server{sim, net};
    if (auto st = server.enable_persistence(dir); !st.ok()) {
      report.detail = "recovery open failed: " + st.str();
      return report;
    }
    report.recovered = server.persist_engine()->stats().recovered_records;
    after = snapshot_store(server.capture_store());
  }

  if (before != after) {
    report.detail = first_diff(before, after);
    return report;
  }
  report.ok = true;
  fs::remove_all(dir, ec);
  return report;
}

std::vector<CrashRecoveryReport> run_crash_recovery_corpus(
    const std::vector<std::uint64_t>& seeds, unsigned jobs,
    const std::string& base_dir) {
  // Same worker-pool shape as run_corpus: atomic claim index, results land
  // at their seed's slot, per-seed directories keep the runs independent.
  std::vector<CrashRecoveryReport> results(seeds.size());
  auto one = [&base_dir](std::uint64_t seed) {
    return check_crash_recovery(seed,
                                base_dir + "/seed-" + std::to_string(seed));
  };
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(std::min<std::size_t>(jobs, seeds.size()));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) results[i] = one(seeds[i]);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= seeds.size()) return;
      results[i] = one(seeds[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::string CrashRecoveryReport::describe() const {
  std::ostringstream os;
  os << "seed " << seed << ": kill after step " << kill_step
     << (torn_tail ? " +torn-tail" : "") << ", " << captures
     << " record(s), " << recovered << " recovered -> "
     << (ok ? "match" : detail);
  return os.str();
}

}  // namespace blab::testing
