// Kill-restart oracle for the durable capture store.
//
// Runs a scenario with persistence enabled and tears the whole deployment
// down at a seed-fuzzed sim-time (a mid-step kill -9: no checkpoint, no
// shutdown hook, FILE* handles just close). Snapshots every query answer the
// store can give right before the kill, then boots a fresh deployment on the
// same directory and verifies recovery reproduces the snapshot byte for
// byte. Most seeds also smear garbage over a shard's WAL tail first, so
// recovery additionally has to shrug off a torn write beyond the committed
// prefix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blab::testing {

struct CrashRecoveryReport {
  std::uint64_t seed = 0;
  bool ok = false;
  int kill_step = 0;            ///< full steps completed before the kill
  bool torn_tail = false;       ///< garbage appended to a WAL before restart
  std::size_t captures = 0;     ///< records covered by the snapshot
  std::uint64_t recovered = 0;  ///< records the restart recovered
  std::string detail;           ///< first divergence, when !ok

  std::string describe() const;
};

/// Run the kill/restart/compare cycle for one seed. `dir` must be usable as
/// a fresh persistence root (created if absent, removed on success).
CrashRecoveryReport check_crash_recovery(std::uint64_t seed,
                                         const std::string& dir);

/// check_crash_recovery across a corpus on a worker pool (same jobs
/// semantics as run_corpus). Each seed gets its own directory under
/// `base_dir`.
std::vector<CrashRecoveryReport> run_crash_recovery_corpus(
    const std::vector<std::uint64_t>& seeds, unsigned jobs,
    const std::string& base_dir);

}  // namespace blab::testing
