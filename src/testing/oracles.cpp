#include "testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

namespace blab::testing {

namespace {

using util::Duration;
using util::TimePoint;

/// Time-weighted mean of piecewise-constant segments over [t0, t1).
double segments_mean(const std::vector<std::pair<TimePoint, double>>& segs,
                     TimePoint t0, TimePoint t1) {
  if (segs.empty() || t1 <= t0) return 0.0;
  double integral = 0.0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const TimePoint start = std::max(segs[i].first, t0);
    const TimePoint end = i + 1 < segs.size() ? segs[i + 1].first : t1;
    if (end <= start) continue;
    integral += segs[i].second * (end - start).to_seconds();
  }
  return integral / (t1 - t0).to_seconds();
}

class ClockMonotonicityOracle : public InvariantOracle {
 public:
  const char* name() const override { return "clock-monotonicity"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    const TimePoint now = ctx.sim->now();
    const std::uint64_t executed = ctx.sim->executed_events();
    if (now < last_now_) {
      out.push_back({name(), "simulator clock moved backwards: " +
                                 util::to_string(last_now_) + " -> " +
                                 util::to_string(now)});
    }
    if (executed < last_executed_) {
      out.push_back({name(), "executed-event counter decreased"});
    }
    last_now_ = now;
    last_executed_ = executed;
  }

 private:
  TimePoint last_now_ = TimePoint::epoch();
  std::uint64_t last_executed_ = 0;
};

class SchedulerSafetyOracle : public InvariantOracle {
 public:
  const char* name() const override { return "scheduler-safety"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    const auto& scheduler = ctx.server->scheduler();
    // Jobs run to completion inside dispatch, so between steps no device may
    // still be held — a leak here is a stuck busy-set entry.
    for (const auto& serial : scheduler.busy_serials()) {
      out.push_back({name(), "device still busy between steps: " + serial});
      if (std::find(ctx.registered_serials.begin(),
                    ctx.registered_serials.end(),
                    serial) == ctx.registered_serials.end()) {
        out.push_back({name(), "busy set names unregistered device: " +
                                   serial});
      }
    }
    for (const server::Job* job : scheduler.all_jobs()) {
      const bool ran = job->state == server::JobState::kRunning ||
                       job->state == server::JobState::kSucceeded ||
                       job->state == server::JobState::kFailed;
      if (ran && !job->pipeline_approved) {
        out.push_back({name(), "unapproved job dispatched: " + job->name});
      }
      if (job->state == server::JobState::kRunning) {
        out.push_back({name(), "job still running between steps: " +
                                   job->name});
      }
      const bool finished = job->state == server::JobState::kSucceeded ||
                            job->state == server::JobState::kFailed;
      if (finished && job->finished_at < job->started_at) {
        out.push_back({name(), "job finished before it started: " +
                                   job->name});
      }
    }
  }
};

class CreditLedgerOracle : public InvariantOracle {
 public:
  const char* name() const override { return "credit-ledger"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    for (const auto& [account, balance] : ctx.server->credits().balances()) {
      if (balance < -1e-9) {
        out.push_back({name(), "negative balance for " + account + ": " +
                                   util::format_double(balance, 4)});
      }
    }
  }
};

class EnergyConservationOracle : public InvariantOracle {
 public:
  const char* name() const override { return "energy-conservation"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Each capture is validated once, as it appears.
    for (; checked_ < ctx.captures.size(); ++checked_) {
      const CaptureRecord& rec = ctx.captures[checked_];
      api::VantagePoint* vp = ctx.nodes[rec.node];
      const auto segs = vp->relay().current_segments(rec.t0, rec.t1);
      const double analytic = segments_mean(segs, rec.t0, rec.t1);
      const auto& spec = vp->monitor().spec();
      const double expected =
          analytic * spec.gain * vp->monitor().gain_correction();
      const double sampled = rec.capture.mean_current_ma();
      // 1% models sampling quantization; 0.5 mA absorbs calibration noise
      // including the clamp-at-zero bias on near-idle channels.
      const double tolerance = expected * 0.01 + 0.5;
      if (std::abs(sampled - expected) > tolerance) {
        out.push_back(
            {name(),
             "capture on node " + std::to_string(rec.node) + " [" +
                 util::to_string(rec.t0) + ", " + util::to_string(rec.t1) +
                 "): sampled mean " + util::format_double(sampled, 3) +
                 " mA vs analytic " + util::format_double(expected, 3) +
                 " mA (tolerance " + util::format_double(tolerance, 3) +
                 ")"});
      }
    }
  }

 private:
  std::size_t checked_ = 0;
};

class BatterySanityOracle : public InvariantOracle {
 public:
  const char* name() const override { return "battery-sanity"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    for (std::size_t n = 0; n < ctx.nodes.size(); ++n) {
      for (const auto& serial : ctx.registered_serials) {
        auto* dev = ctx.nodes[n]->find_device(serial);
        if (dev == nullptr) continue;  // serial lives on another node
        const double mah = dev->battery().remaining_mah();
        if (mah < -1e-6) {
          out.push_back({name(), serial + " pack holds negative charge: " +
                                     util::format_double(mah, 4) + " mAh"});
        }
      }
    }
  }
};

class MirroringLifecycleOracle : public InvariantOracle {
 public:
  const char* name() const override { return "mirroring-lifecycle"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Between steps every job has released its device, so no mirroring
    // stream may still be running on a device nobody holds — a leak here
    // would hand the next experimenter a live view of the previous session.
    const auto& scheduler = ctx.server->scheduler();
    for (std::size_t n = 0; n < ctx.nodes.size(); ++n) {
      for (const auto& serial : ctx.registered_serials) {
        auto* session = ctx.nodes[n]->mirroring(serial);
        if (session != nullptr && session->active() &&
            !scheduler.device_busy(serial)) {
          out.push_back({name(), "mirroring session outlived device release: " +
                                     serial + " on node " + std::to_string(n)});
        }
      }
    }
  }
};

class DnsCertConsistencyOracle : public InvariantOracle {
 public:
  const char* name() const override { return "dns-cert-consistency"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    const auto& registry = ctx.server->registry();
    const auto& dns = ctx.server->dns();
    const auto& certs = ctx.server->certs();
    for (const auto& label : registry.all_labels()) {
      const server::NodeRecord* node = registry.find(label);
      const auto resolved = dns.resolve(dns.fqdn(label));
      if (node->state == server::NodeState::kApproved) {
        if (!resolved.ok()) {
          out.push_back({name(), "approved node has no DNS record: " + label});
        } else if (resolved.value() != node->controller_host) {
          out.push_back({name(), label + " resolves to " + resolved.value() +
                                     ", expected " + node->controller_host});
        }
        if (!dns.wildcard_covers(dns.fqdn(label))) {
          out.push_back({name(), "wildcard does not cover " + label});
        }
        const std::uint64_t deployed = certs.deployed_serial(label);
        if (deployed == 0) {
          out.push_back({name(), "approved node never got a certificate: " +
                                     label});
        } else if (deployed > certs.current().serial) {
          out.push_back({name(), label + " holds serial from the future: " +
                                     std::to_string(deployed)});
        }
      } else if (resolved.ok()) {
        out.push_back({name(), std::string{"non-approved node ("} +
                                   server::node_state_name(node->state) +
                                   ") still resolves: " + label});
      }
    }
  }
};

class MetricAccountingOracle : public InvariantOracle {
 public:
  const char* name() const override { return "metric-accounting"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Telemetry must agree with ground truth: every submitted job is in
    // exactly one of {queued, running, succeeded, failed, aborted}, and the
    // registry's counters/gauges track those transitions exactly. A drift
    // here means an instrument site was skipped (or double-hit) on some
    // code path the fuzzer found.
    const obs::MetricsSnapshot snap = ctx.sim->metrics().snapshot();
    const double submitted =
        snap.value_or("blab_scheduler_jobs_submitted_total");
    const double queued = snap.value_or("blab_scheduler_queue_depth");
    const double running = snap.value_or("blab_scheduler_jobs_running");
    const double succeeded = snap.value_or(
        "blab_scheduler_jobs_finished_total", {{"result", "succeeded"}});
    const double failed = snap.value_or(
        "blab_scheduler_jobs_finished_total", {{"result", "failed"}});
    const double aborted = snap.value_or("blab_scheduler_jobs_aborted_total");

    const double accounted = queued + running + succeeded + failed + aborted;
    if (submitted != accounted) {
      out.push_back(
          {name(), "job conservation broken: submitted=" +
                       util::format_double(submitted, 0) + " but queued+" +
                       "running+finished+aborted=" +
                       util::format_double(accounted, 0)});
    }

    // Cross-check each series against the scheduler's actual job states.
    std::size_t s_queued = 0, s_running = 0, s_ok = 0, s_failed = 0,
                s_aborted = 0;
    const auto& scheduler = ctx.server->scheduler();
    for (const server::Job* job : scheduler.all_jobs()) {
      switch (job->state) {
        case server::JobState::kCreated:
        case server::JobState::kQueued: ++s_queued; break;
        case server::JobState::kRunning: ++s_running; break;
        case server::JobState::kSucceeded: ++s_ok; break;
        case server::JobState::kFailed: ++s_failed; break;
        case server::JobState::kAborted: ++s_aborted; break;
      }
    }
    const auto expect = [&](const char* what, double metric,
                            std::size_t truth) {
      if (metric != static_cast<double>(truth)) {
        out.push_back({name(), std::string{what} + " metric says " +
                                   util::format_double(metric, 0) +
                                   ", scheduler holds " +
                                   std::to_string(truth)});
      }
    };
    expect("submitted", submitted, scheduler.all_jobs().size());
    expect("queue-depth", queued, s_queued);
    expect("running", running, s_running);
    expect("succeeded", succeeded, s_ok);
    expect("failed", failed, s_failed);
    expect("aborted", aborted, s_aborted);
  }
};

class TraceIntegrityOracle : public InvariantOracle {
 public:
  const char* name() const override { return "trace-integrity"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Every job must yield one well-formed causal trace: a single root span,
    // every span reachable from it, children contained in their parents'
    // intervals, no spans left open once the job reaches a terminal state,
    // and no trace shared between jobs.
    const obs::Tracer& tracer = ctx.sim->tracer();
    std::map<std::uint64_t, std::string> trace_owner;
    for (const server::Job* job : ctx.server->scheduler().all_jobs()) {
      if (job->trace_id == 0) {
        out.push_back({name(), "job " + job->id.str() + " has no trace"});
        continue;
      }
      const auto [it, inserted] =
          trace_owner.emplace(job->trace_id, job->id.str());
      if (!inserted) {
        out.push_back({name(), "trace " + std::to_string(job->trace_id) +
                                   " shared by jobs " + it->second + " and " +
                                   job->id.str()});
        continue;
      }
      const bool terminal = job->state == server::JobState::kSucceeded ||
                            job->state == server::JobState::kFailed ||
                            job->state == server::JobState::kAborted;
      if (job->workspace.purged() && !terminal) {
        out.push_back({name(), "non-terminal job has a purged workspace (job " +
                                   job->id.str() + ")"});
      }
      if (!terminal) continue;  // root still legitimately open

      const std::string where =
          " (job " + job->id.str() + ", trace " +
          std::to_string(job->trace_id) + ")";
      if (const std::size_t open = tracer.open_in_trace(job->trace_id);
          open != 0) {
        out.push_back({name(), std::to_string(open) +
                                   " span(s) still open after job finished" +
                                   where});
      }
      const auto spans = tracer.spans_in(job->trace_id);
      if (spans.empty()) {
        out.push_back({name(), "finished job has no spans" + where});
        continue;
      }
      std::map<std::uint64_t, const obs::SpanRecord*> by_id;
      std::size_t roots = 0;
      for (const obs::SpanRecord* s : spans) {
        by_id.emplace(s->id, s);
        if (s->parent == 0) ++roots;
      }
      if (roots != 1) {
        out.push_back({name(), std::to_string(roots) +
                                   " root spans, expected exactly 1" + where});
      }
      for (const obs::SpanRecord* s : spans) {
        if (s->parent == 0) continue;
        const auto parent = by_id.find(s->parent);
        if (parent == by_id.end()) {
          out.push_back({name(), "span " + std::to_string(s->id) + " (" +
                                     s->component + "/" + s->name +
                                     ") unreachable: parent " +
                                     std::to_string(s->parent) +
                                     " not in trace" + where});
          continue;
        }
        const obs::SpanRecord* p = parent->second;
        if (s->start_us < p->start_us || s->end_us > p->end_us) {
          out.push_back({name(), "span " + std::to_string(s->id) + " (" +
                                     s->component + "/" + s->name +
                                     ") escapes its parent interval" + where});
        }
      }
      // Cross-trace links must be structurally sane and time-ordered: a link
      // points at a *different* trace, and a resolvable target span ended at
      // or before the linking span started (a retry can only reference a
      // predecessor whose root already closed).
      for (const obs::SpanRecord* s : spans) {
        for (const obs::SpanLink& link : s->links) {
          if (link.trace == 0 || link.span == 0) {
            out.push_back({name(), "span " + std::to_string(s->id) +
                                       " carries a null link" + where});
            continue;
          }
          if (link.trace == s->trace) {
            out.push_back({name(), "span " + std::to_string(s->id) +
                                       " links within its own trace" + where});
            continue;
          }
          for (const obs::SpanRecord* t : tracer.spans_in(link.trace)) {
            if (t->id != link.span) continue;
            if (t->end_us > s->start_us) {
              out.push_back({name(), "link target span " +
                                         std::to_string(link.span) +
                                         " ends after linking span " +
                                         std::to_string(s->id) + " starts" +
                                         where});
            }
          }
        }
      }
    }
  }
};

class RetryChainOracle : public InvariantOracle {
 public:
  const char* name() const override { return "retry-chain"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Retry lineage must form well-founded chains: every retry names a
    // terminally failed/aborted predecessor, retried_by/retry_of are a
    // bijection, attempts count up by one, ids and queue times only move
    // forward (so chains are acyclic), each attempt has its own trace, and a
    // finished retry's root span carries exactly one "retry_of" link to the
    // predecessor's root.
    const obs::Tracer& tracer = ctx.sim->tracer();
    const auto& scheduler = ctx.server->scheduler();
    for (const server::Job* job : scheduler.all_jobs()) {
      if (job->retried_by.valid()) {
        const server::Job* succ = scheduler.find(job->retried_by);
        if (succ == nullptr) {
          out.push_back({name(), "job " + job->id.str() +
                                     " retried by unknown job " +
                                     job->retried_by.str()});
        } else if (succ->retry_of != job->id) {
          out.push_back({name(), "retry bijection broken: " + job->id.str() +
                                     " -> " + succ->id.str() + " -> " +
                                     succ->retry_of.str()});
        }
      }
      if (!job->retry_of.valid()) continue;

      const std::string where = " (retry " + job->id.str() + " of " +
                                job->retry_of.str() + ")";
      const server::Job* pred = scheduler.find(job->retry_of);
      if (pred == nullptr) {
        out.push_back({name(), "predecessor unknown" + where});
        continue;
      }
      if (pred->state != server::JobState::kFailed &&
          pred->state != server::JobState::kAborted) {
        out.push_back({name(), std::string{"predecessor is "} +
                                   server::job_state_name(pred->state) +
                                   ", not failed/aborted" + where});
      }
      if (pred->retried_by != job->id) {
        out.push_back({name(), "predecessor's retried_by is " +
                                   pred->retried_by.str() + where});
      }
      if (job->attempt != pred->attempt + 1) {
        out.push_back({name(), "attempt " + std::to_string(job->attempt) +
                                   " after attempt " +
                                   std::to_string(pred->attempt) + where});
      }
      if (!(pred->id < job->id)) {
        out.push_back({name(), "retry id does not follow predecessor" + where});
      }
      if (job->queued_at < pred->queued_at) {
        out.push_back({name(), "retry queued before its predecessor" + where});
      }
      // Aborted-from-queue jobs never got a finished_at stamp; skip those.
      if (pred->finished_at.us() != 0 && job->queued_at < pred->finished_at) {
        out.push_back({name(), "retry queued before predecessor finished" +
                                   where});
      }
      if (job->trace_id == pred->trace_id) {
        out.push_back({name(), "retry shares the predecessor's trace" + where});
      }

      // Walk the chain tail -> head; monotone ids make real cycles
      // impossible, so the bound only guards against corrupted pointers.
      std::size_t hops = 0;
      const std::size_t bound = scheduler.all_jobs().size() + 1;
      for (const server::Job* cur = job;
           cur != nullptr && cur->retry_of.valid();
           cur = scheduler.find(cur->retry_of)) {
        if (++hops > bound) {
          out.push_back({name(), "retry chain does not terminate" + where});
          break;
        }
      }

      const bool terminal = job->state == server::JobState::kSucceeded ||
                            job->state == server::JobState::kFailed ||
                            job->state == server::JobState::kAborted;
      if (!terminal) continue;  // root still open; link checked once closed
      const obs::SpanRecord* root = nullptr;
      for (const obs::SpanRecord* s : tracer.spans_in(job->trace_id)) {
        if (s->parent == 0) root = s;
      }
      if (root == nullptr) {
        out.push_back({name(), "finished retry has no root span" + where});
        continue;
      }
      std::size_t retry_links = 0;
      for (const obs::SpanLink& link : root->links) {
        if (link.kind != "retry_of") continue;
        ++retry_links;
        if (link.trace != pred->trace_id || link.span != pred->root_span) {
          out.push_back({name(), "retry_of link targets trace " +
                                     std::to_string(link.trace) + " span " +
                                     std::to_string(link.span) +
                                     ", expected the predecessor root" +
                                     where});
        }
      }
      if (retry_links != 1) {
        out.push_back({name(), std::to_string(retry_links) +
                                   " retry_of links on the root, expected 1" +
                                   where});
      }
    }
  }
};

class SpanConservationOracle : public InvariantOracle {
 public:
  const char* name() const override { return "span-conservation"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    // Weighted span aggregates must be EXACT: for every sampled family the
    // sum of kept-span weights PLUS the spans still awaiting their trace's
    // tail-sampling decision equals the unsampled counter in the metrics
    // registry, at every step boundary. A sampled-out span may never reach
    // the buffer (its weight rides on a kept sibling instead); an undecided
    // span sits in the tail buffer at weight 1 until its root closes.
    const obs::Tracer& tracer = ctx.sim->tracer();
    std::uint64_t frames = 0;
    std::uint64_t blocks = 0;
    for (const obs::SpanRecord& s : tracer.spans()) {
      if (s.weight == 0) {
        out.push_back({name(), "sampled-out span reached the buffer: " +
                                   s.component + "/" + s.name + " id " +
                                   std::to_string(s.id)});
      }
      if (s.component == "mirror" && s.name == "frame") frames += s.weight;
      if (s.component == "monsoon" && s.name == "synth_block") {
        blocks += s.weight;
      }
    }
    // Once the buffer cap has dropped spans (or a credit had no kept span
    // left to land on, or a runaway trace overflowed its tail buffer) the
    // buffer no longer covers the full history and exact conservation is
    // unprovable from it.
    if (tracer.dropped() > 0 || tracer.weight_uncredited() > 0 ||
        tracer.tail_overflows() > 0) {
      return;
    }
    const obs::MetricsSnapshot snap = ctx.sim->metrics().snapshot();
    const auto expect = [&](const char* family, std::uint64_t weighted,
                            const char* metric) {
      const double counted = snap.value_or(metric);
      if (static_cast<double>(weighted) != counted) {
        out.push_back({name(), std::string{family} + " weighted span sum " +
                                   std::to_string(weighted) + " != " + metric +
                                   " " + util::format_double(counted, 0)});
      }
    };
    expect("mirror/frame", frames + tracer.tail_pending("mirror", "frame"),
           "blab_mirror_frames_total");
    expect("monsoon/synth_block",
           blocks + tracer.tail_pending("monsoon", "synth_block"),
           "blab_monsoon_synth_blocks_total");
  }
};

class RollupAccuracyOracle : public InvariantOracle {
 public:
  const char* name() const override { return "rollup-accuracy"; }

  void check(const OracleContext& ctx,
             std::vector<OracleFinding>& out) override {
    server::AccessServer* server = ctx.server;
    if (server == nullptr || !server->health_enabled()) return;
    health::RollupEngine* engine = server->rollup_engine();
    store::CaptureStore& store = server->capture_store();

    // Independent fold over the catalog, in the engine's documented order
    // and arithmetic (ascending CaptureId, plain double accumulation) — the
    // fleet rollup must reproduce it EXACTLY, no tolerance.
    double energy = 0.0;
    double charge = 0.0;
    double mean_acc = 0.0;
    std::uint64_t samples = 0;
    std::size_t captures = 0;
    for (const store::CaptureId& id :
         store.catalog(util::TimePoint::epoch(), util::TimePoint::max())) {
      const auto summary = store.summary(id);
      if (!summary.ok()) continue;
      const store::CaptureSummary& s = summary.value();
      energy += s.energy_mwh;
      charge += s.charge_mah;
      mean_acc += s.mean_ma * static_cast<double>(s.samples);
      samples += s.samples;
      ++captures;
      // Chain to ground truth: the summary's energy must be exactly the
      // store's canonical footer integral (warm and cold paths agree); that
      // integral's physical accuracy against the relay board's analytic
      // model is the energy-conservation oracle's job.
      const auto direct = store.energy_mwh(id);
      if (!direct.ok() || direct.value() != s.energy_mwh) {
        out.push_back({name(),
                       "summary energy diverges from footer integral for " +
                           id.str()});
      }
    }
    const double mean = samples > 0
                            ? mean_acc / static_cast<double>(samples)
                            : 0.0;

    const health::Rollup fleet =
        engine->compute(health::RollupScope::kFleet);
    if (fleet.captures_scanned != captures || fleet.groups.size() > 1) {
      out.push_back({name(), "fleet rollup scanned " +
                                 std::to_string(fleet.captures_scanned) +
                                 " captures in " +
                                 std::to_string(fleet.groups.size()) +
                                 " group(s), expected " +
                                 std::to_string(captures) + " in <= 1"});
      return;
    }
    if (captures == 0) return;
    const health::RollupGroup& g = fleet.groups.front();
    const auto exact = [&](const char* field, double got, double want) {
      if (got != want) {
        out.push_back({name(), std::string{"fleet rollup "} + field + " " +
                                   util::format_double(got, 9) +
                                   " != recomputed " +
                                   util::format_double(want, 9)});
      }
    };
    exact("energy_mwh", g.energy_mwh, energy);
    exact("charge_mah", g.charge_mah, charge);
    exact("mean_ma", g.mean_ma, mean);
    if (g.samples != samples || g.captures != captures) {
      out.push_back({name(), "fleet rollup counts diverge: " +
                                 std::to_string(g.captures) + "/" +
                                 std::to_string(g.samples) + " vs " +
                                 std::to_string(captures) + "/" +
                                 std::to_string(samples)});
    }

    // Job- and vantage-scoped rollups must partition the fleet: identical
    // capture/sample counts, and the same energy up to summation order
    // (per-group partial sums re-associate the additions).
    for (const auto scope :
         {health::RollupScope::kJob, health::RollupScope::kVantage}) {
      const health::Rollup partitioned = engine->compute(scope);
      std::uint64_t part_samples = 0;
      std::size_t part_captures = 0;
      double part_energy = 0.0;
      for (const health::RollupGroup& group : partitioned.groups) {
        part_samples += group.samples;
        part_captures += group.captures;
        part_energy += group.energy_mwh;
      }
      if (part_captures != captures || part_samples != samples) {
        out.push_back({name(),
                       std::string{health::rollup_scope_name(scope)} +
                           " rollup does not partition the fleet: " +
                           std::to_string(part_captures) + "/" +
                           std::to_string(part_samples) + " vs " +
                           std::to_string(captures) + "/" +
                           std::to_string(samples)});
      }
      if (std::abs(part_energy - energy) >
          1e-9 * std::max(1.0, std::abs(energy))) {
        out.push_back({name(),
                       std::string{health::rollup_scope_name(scope)} +
                           " rollup energy " +
                           util::format_double(part_energy, 9) +
                           " diverges from fleet " +
                           util::format_double(energy, 9)});
      }
    }
  }
};

}  // namespace

OracleRegistry::OracleRegistry() {
  add(std::make_unique<ClockMonotonicityOracle>());
  add(std::make_unique<SchedulerSafetyOracle>());
  add(std::make_unique<CreditLedgerOracle>());
  add(std::make_unique<EnergyConservationOracle>());
  add(std::make_unique<BatterySanityOracle>());
  add(std::make_unique<MirroringLifecycleOracle>());
  add(std::make_unique<DnsCertConsistencyOracle>());
  add(std::make_unique<MetricAccountingOracle>());
  add(std::make_unique<TraceIntegrityOracle>());
  add(std::make_unique<RetryChainOracle>());
  add(std::make_unique<SpanConservationOracle>());
  add(std::make_unique<RollupAccuracyOracle>());
}

void OracleRegistry::add(std::unique_ptr<InvariantOracle> oracle) {
  oracles_.push_back(std::move(oracle));
}

std::vector<std::string> OracleRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(oracles_.size());
  for (const auto& oracle : oracles_) out.emplace_back(oracle->name());
  return out;
}

std::vector<OracleFinding> OracleRegistry::run(const OracleContext& ctx) {
  std::vector<OracleFinding> findings;
  for (const auto& oracle : oracles_) oracle->check(ctx, findings);
  return findings;
}

}  // namespace blab::testing
