#include "testing/scenario.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace blab::testing {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kPhone: return "phone";
    case DeviceKind::kIphone: return "iphone";
    case DeviceKind::kLaptop: return "laptop";
    case DeviceKind::kIotSensor: return "iot";
  }
  return "?";
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRelayFlap: return "relay-flap";
    case FaultKind::kMainsLoss: return "mains-loss";
    case FaultKind::kMainsRestore: return "mains-restore";
    case FaultKind::kWifiDrop: return "wifi-drop";
    case FaultKind::kWifiRestore: return "wifi-restore";
    case FaultKind::kVpnConnect: return "vpn-connect";
    case FaultKind::kVpnDisconnect: return "vpn-disconnect";
    case FaultKind::kUsbPowerCycle: return "usb-power-cycle";
    case FaultKind::kNodeRetire: return "node-retire";
    case FaultKind::kNodeReonboard: return "node-reonboard";
  }
  return "?";
}

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kIdle: return "idle";
    case JobKind::kMeasure: return "measure";
    case JobKind::kAdb: return "adb";
    case JobKind::kVideo: return "video";
    case JobKind::kMirror: return "mirror";
  }
  return "?";
}

namespace {

/// The VPN exits the fuzzer draws from (Table 2 country names).
const std::vector<std::string>& vpn_pool() {
  static const std::vector<std::string> pool{"Japan", "Italy", "Brazil"};
  return pool;
}

DeviceGenSpec generate_device(util::Rng& rng, std::size_t node_index,
                              std::size_t device_index) {
  DeviceGenSpec dev;
  // Phones dominate the zoo like they do the paper's testbed; the exotic
  // classes keep the voltage range and the noise floor honest.
  const double dice = rng.uniform();
  if (dice < 0.65) {
    dev.kind = DeviceKind::kPhone;
  } else if (dice < 0.80) {
    dev.kind = DeviceKind::kIphone;
  } else if (dice < 0.90) {
    dev.kind = DeviceKind::kLaptop;
  } else {
    dev.kind = DeviceKind::kIotSensor;
  }
  std::ostringstream serial;
  serial << "FZ" << node_index << "-" << device_index << "-"
         << device_kind_name(dev.kind);
  dev.serial = serial.str();
  const int procs = static_cast<int>(rng.uniform_int(0, 4));
  for (int p = 0; p < procs; ++p) {
    dev.processes.push_back(ProcessSpec{
        "proc" + std::to_string(p), rng.uniform(0.01, 0.15),
        rng.uniform(0.0, 0.4)});
  }
  return dev;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  util::Rng rng{seed};

  // ---- topology: 1-8 vantage points, varied WAN links -----------------
  util::Rng topo = rng.fork("topology");
  const int node_count = static_cast<int>(topo.uniform_int(1, 8));
  for (int n = 0; n < node_count; ++n) {
    NodeGenSpec node;
    node.label = "fz-node" + std::to_string(n);
    node.wan_latency_ms = topo.uniform(2.0, 40.0);
    node.wan_mbps = topo.uniform(20.0, 500.0);
    const int devices = static_cast<int>(topo.uniform_int(1, 3));
    for (int d = 0; d < devices; ++d) {
      node.devices.push_back(
          generate_device(topo, static_cast<std::size_t>(n),
                          static_cast<std::size_t>(d)));
    }
    spec.nodes.push_back(std::move(node));
  }

  // ---- schedule shape -------------------------------------------------
  util::Rng shape = rng.fork("shape");
  spec.steps = static_cast<int>(shape.uniform_int(3, 6));
  spec.step_length =
      util::Duration::seconds(shape.uniform(2.0, 5.0));
  spec.enforce_credits = shape.chance(0.5);
  spec.experimenters = static_cast<std::size_t>(shape.uniform_int(1, 3));
  for (std::size_t e = 0; e < spec.experimenters; ++e) {
    // Some owners are nearly broke so credit gating actually gates.
    spec.initial_credits.push_back(shape.chance(0.25)
                                       ? shape.uniform(0.0, 1.0)
                                       : shape.uniform(30.0, 200.0));
  }
  const util::Duration horizon = spec.step_length * spec.steps;

  // ---- fault schedule -------------------------------------------------
  util::Rng faults = rng.fork("faults");
  const int fault_count = static_cast<int>(faults.uniform_int(2, 8));
  for (int f = 0; f < fault_count; ++f) {
    FaultSpec fault;
    const double dice = faults.uniform();
    if (dice < 0.2) {
      fault.kind = FaultKind::kRelayFlap;
    } else if (dice < 0.4) {
      fault.kind = FaultKind::kMainsLoss;
    } else if (dice < 0.6) {
      fault.kind = FaultKind::kWifiDrop;
    } else if (dice < 0.8) {
      fault.kind = FaultKind::kVpnConnect;
    } else {
      fault.kind = FaultKind::kUsbPowerCycle;
    }
    fault.at = horizon * faults.uniform(0.05, 0.85);
    fault.node = static_cast<std::size_t>(
        faults.uniform_int(0, static_cast<std::int64_t>(spec.nodes.size()) - 1));
    fault.device = static_cast<std::size_t>(faults.uniform_int(
        0,
        static_cast<std::int64_t>(spec.nodes[fault.node].devices.size()) - 1));
    if (fault.kind == FaultKind::kVpnConnect) {
      fault.location = faults.pick(vpn_pool());
    }
    spec.faults.push_back(fault);
    // Transient faults heal after a random fraction of a step, so recovery
    // paths get exercised too.
    const util::Duration heal =
        fault.at + spec.step_length * faults.uniform(0.3, 1.5);
    switch (fault.kind) {
      case FaultKind::kMainsLoss:
        spec.faults.push_back(
            FaultSpec{FaultKind::kMainsRestore, heal, fault.node, 0, {}});
        break;
      case FaultKind::kWifiDrop:
        spec.faults.push_back(FaultSpec{FaultKind::kWifiRestore, heal,
                                        fault.node, fault.device, {}});
        break;
      case FaultKind::kVpnConnect:
        spec.faults.push_back(
            FaultSpec{FaultKind::kVpnDisconnect, heal, fault.node, 0, {}});
        break;
      default:
        break;
    }
  }

  // ---- job stream -----------------------------------------------------
  util::Rng jobs = rng.fork("jobs");
  const int job_count = static_cast<int>(jobs.uniform_int(4, 12));
  for (int j = 0; j < job_count; ++j) {
    JobGenSpec job;
    const double kind_dice = jobs.uniform();
    if (kind_dice < 0.30) {
      job.kind = JobKind::kMeasure;
    } else if (kind_dice < 0.50) {
      job.kind = JobKind::kAdb;
    } else if (kind_dice < 0.65) {
      job.kind = JobKind::kVideo;
    } else if (kind_dice < 0.80) {
      job.kind = JobKind::kMirror;
    } else {
      job.kind = JobKind::kIdle;
    }
    job.name = "fz-job" + std::to_string(j) + "-" + job_kind_name(job.kind);
    job.submit_step = static_cast<int>(jobs.uniform_int(0, spec.steps - 1));
    job.approved = jobs.chance(0.8);
    job.owner = static_cast<std::size_t>(jobs.uniform_int(
        0, static_cast<std::int64_t>(spec.experimenters) - 1));
    job.node = static_cast<std::size_t>(
        jobs.uniform_int(0, static_cast<std::int64_t>(spec.nodes.size()) - 1));
    job.device = static_cast<std::size_t>(jobs.uniform_int(
        0, static_cast<std::int64_t>(spec.nodes[job.node].devices.size()) - 1));
    job.measure_duration = util::Duration::seconds(jobs.uniform(1.0, 3.0));
    const double shape_dice = jobs.uniform();
    if (shape_dice < 0.35) {
      job.shape = ConstraintShape::kNone;
    } else if (shape_dice < 0.55) {
      job.shape = ConstraintShape::kPinSerial;
    } else if (shape_dice < 0.65) {
      job.shape = ConstraintShape::kGhostSerial;
    } else if (shape_dice < 0.75) {
      job.shape = ConstraintShape::kModel;
    } else if (shape_dice < 0.90) {
      job.shape = ConstraintShape::kPinNode;
    } else {
      job.shape = ConstraintShape::kVpnLocation;
      job.location = jobs.pick(vpn_pool());
    }
    spec.jobs.push_back(std::move(job));
  }

  // ---- onboarding churn -----------------------------------------------
  // Retire/re-onboard cycles exercise the DNS/certificate-consistency
  // oracle. A dedicated fork keeps the topology/shape/fault/job draws of
  // every pre-churn seed byte-identical.
  util::Rng churn = rng.fork("churn");
  const int churn_count = static_cast<int>(churn.uniform_int(0, 2));
  for (int c = 0; c < churn_count; ++c) {
    FaultSpec retire;
    retire.kind = FaultKind::kNodeRetire;
    retire.at = horizon * churn.uniform(0.10, 0.70);
    retire.node = static_cast<std::size_t>(churn.uniform_int(
        0, static_cast<std::int64_t>(spec.nodes.size()) - 1));
    spec.faults.push_back(retire);
    if (churn.chance(0.75)) {
      spec.faults.push_back(FaultSpec{
          FaultKind::kNodeReonboard,
          retire.at + spec.step_length * churn.uniform(0.2, 1.0),
          retire.node, 0, {}});
    }
  }

  return spec;
}

std::string describe(const ScenarioSpec& spec) {
  std::size_t devices = 0;
  for (const auto& node : spec.nodes) devices += node.devices.size();
  std::ostringstream os;
  os << "scenario seed=" << spec.seed << ": " << spec.nodes.size()
     << " nodes, " << devices << " devices, " << spec.jobs.size() << " jobs, "
     << spec.faults.size() << " faults, " << spec.steps << " steps x "
     << util::to_string(spec.step_length)
     << (spec.enforce_credits ? ", credits enforced" : "");
  return os.str();
}

std::vector<std::uint64_t> default_corpus(std::size_t n) {
  // SplitMix64 walk from a fixed base: appending to the corpus never changes
  // existing seeds, so golden digests stay pinned as the corpus grows.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  std::uint64_t state = 0x20191113BA77E27AULL;  // HotNets'19 + battery
  for (std::size_t i = 0; i < n; ++i) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    seeds.push_back(z ^ (z >> 31));
  }
  return seeds;
}

}  // namespace blab::testing
