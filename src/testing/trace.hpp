// Event-trace recording and divergence diffing.
//
// Determinism is the property the whole reproduction rests on: every run is a
// pure function of (seed, scenario). The TraceRecorder attaches to a
// Simulator's trace hook and folds every executed event — timestamp, sequence
// number, label — into a rolling digest, plus any scenario-level notes the
// harness injects (step boundaries, capture stats, ledger balances). Running
// the same scenario twice and diffing the recorded traces turns "it should be
// deterministic" into a failing test that names the first divergent event.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace blab::testing {

struct TraceEventRecord {
  util::TimePoint at;
  std::uint64_t seq = 0;       ///< simulator sequence number (0 for notes)
  std::string label;
  std::uint64_t digest = 0;    ///< rolling digest *after* this event
};

class TraceRecorder {
 public:
  /// Installs itself as `sim`'s trace hook; restores on destruction.
  explicit TraceRecorder(sim::Simulator& sim);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Fold a scenario-level mark into the digest (step boundaries, oracle
  /// checkpoints, capture statistics). Recorded like an event, seq 0.
  void note(std::string_view label);

  const std::vector<TraceEventRecord>& events() const { return events_; }
  std::uint64_t digest() const { return digest_; }
  /// Digest rendered as fixed-width hex, the form pinned by golden tests.
  std::string digest_hex() const;

 private:
  void record(util::TimePoint at, std::uint64_t seq, std::string_view label);

  sim::Simulator& sim_;
  std::vector<TraceEventRecord> events_;
  std::uint64_t digest_ = 0x6261747465727921ULL;  // arbitrary nonzero start
};

/// Where two recorded traces first disagree.
struct Divergence {
  bool diverged = false;
  std::size_t index = 0;  ///< first differing event index
  std::string first;      ///< rendering of run A's event at `index`
  std::string second;     ///< rendering of run B's event at `index`

  /// Human-readable one-liner for test failure messages.
  std::string describe() const;
};

/// Compare two traces event by event; identifies the first event where the
/// (timestamp, seq, label) triple differs, or a length mismatch.
Divergence first_divergence(const std::vector<TraceEventRecord>& a,
                            const std::vector<TraceEventRecord>& b);

}  // namespace blab::testing
