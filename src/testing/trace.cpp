#include "testing/trace.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace blab::testing {

namespace {

// SplitMix64-style mixing keeps the rolling digest sensitive to ordering,
// not just content.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  return h;
}

std::string render(const TraceEventRecord& ev) {
  std::ostringstream os;
  os << "t=" << ev.at.us() << "us seq=" << ev.seq << " label=\""
     << (ev.label.empty() ? "<unlabeled>" : ev.label) << "\"";
  return os.str();
}

}  // namespace

TraceRecorder::TraceRecorder(sim::Simulator& sim) : sim_{sim} {
  sim_.set_trace_hook(
      [this](util::TimePoint at, std::uint64_t seq, const std::string& label) {
        record(at, seq, label);
      });
}

TraceRecorder::~TraceRecorder() { sim_.set_trace_hook(nullptr); }

void TraceRecorder::record(util::TimePoint at, std::uint64_t seq,
                           std::string_view label) {
  digest_ = mix(digest_, static_cast<std::uint64_t>(at.us()));
  digest_ = mix(digest_, seq);
  digest_ = mix(digest_, util::fnv1a(label));
  events_.push_back(
      TraceEventRecord{at, seq, std::string{label}, digest_});
}

void TraceRecorder::note(std::string_view label) {
  record(sim_.now(), 0, label);
}

std::string TraceRecorder::digest_hex() const {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << digest_;
  return os.str();
}

Divergence first_divergence(const std::vector<TraceEventRecord>& a,
                            const std::vector<TraceEventRecord>& b) {
  Divergence out;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i].at != b[i].at || a[i].seq != b[i].seq ||
        a[i].label != b[i].label) {
      out.diverged = true;
      out.index = i;
      out.first = render(a[i]);
      out.second = render(b[i]);
      return out;
    }
  }
  if (a.size() != b.size()) {
    out.diverged = true;
    out.index = common;
    out.first = common < a.size() ? render(a[common])
                                  : "<trace ended after " +
                                        std::to_string(a.size()) + " events>";
    out.second = common < b.size() ? render(b[common])
                                   : "<trace ended after " +
                                         std::to_string(b.size()) + " events>";
  }
  return out;
}

std::string Divergence::describe() const {
  if (!diverged) return "traces identical";
  return "first divergence at event " + std::to_string(index) + ": run A " +
         first + " vs run B " + second;
}

}  // namespace blab::testing
