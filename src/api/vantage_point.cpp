#include "api/vantage_point.hpp"

#include "util/logging.hpp"

namespace blab::api {
namespace {
constexpr int kRelayBasePin = 17;  // first free GPIO on the Pi header
}  // namespace

VantagePoint::VantagePoint(sim::Simulator& sim, net::Network& net,
                           VantagePointConfig config)
    : sim_{sim},
      net_{net},
      config_{std::move(config)},
      controller_{sim, net, "ctrl." + config_.name, config_.seed},
      gpio_{40},
      relay_{sim, gpio_, config_.relay_channels, kRelayBasePin, config_.relay},
      monitor_{sim, util::Rng{config_.seed ^ 0x5EED}, config_.monsoon},
      socket_{net, "socket." + config_.name},
      hub_{net, controller_.host(), config_.usb_ports},
      ap_{net, controller_.host(), controller_.host(), config_.ap_mode},
      poller_{controller_.resources(), monitor_},
      rest_{net, controller_.host()} {
  // The Monsoon's main channel is fed by the relay board output; individual
  // devices reach it by flipping their channel to bypass.
  monitor_.connect_load(&relay_);
  socket_.attach_monitor(&monitor_);
}

VantagePoint::~VantagePoint() {
  // Sessions reference devices; drop them first.
  sessions_.clear();
}

util::Result<device::AndroidDevice*> VantagePoint::add_device(
    device::DeviceSpec spec) {
  if (find_device(spec.serial) != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "serial " + spec.serial + " already present");
  }
  const int channel = static_cast<int>(devices_.size());
  if (channel >= relay_.channel_count()) {
    return util::make_error(util::ErrorCode::kResourceExhausted,
                            "no free relay channel");
  }
  ManagedDevice md;
  md.device = std::make_unique<device::AndroidDevice>(
      sim_, net_, "dev." + spec.serial, spec,
      config_.seed ^ util::fnv1a(spec.serial));
  if (spec.platform == device::Platform::kAndroid) {
    md.adbd = std::make_unique<device::AdbDaemon>(*md.device);
  }
  // The HID input service backs the Bluetooth keyboard channel — and is the
  // only remote-input path on iOS.
  md.hid = std::make_unique<device::BtHidService>(*md.device);
  md.relay_channel = channel;

  auto* dev = md.device.get();
  if (auto r = hub_.attach(dev->host()); !r.ok()) return r.error();
  if (auto st = ap_.associate(dev->host()); !st.ok()) return st.error();
  // NAT mode needs explicit forwards for inbound adb/scrcpy control.
  ap_.forward_port(dev->host(), device::kAdbPort);
  ap_.forward_port(dev->host(), mirror::kScrcpyControlPort);
  if (auto st = relay_.connect_load(channel, dev); !st.ok()) return st.error();
  if (auto st = controller_.register_device(dev); !st.ok()) return st.error();

  dev->set_power_source(device::PowerSource::kBattery);
  dev->set_usb_charge_ma(hub_.charge_current_ma(dev->host()));
  dev->power_on();
  devices_.push_back(std::move(md));
  return dev;
}

device::AndroidDevice* VantagePoint::find_device(const std::string& serial) {
  for (auto& md : devices_) {
    if (md.device->serial() == serial) return md.device.get();
  }
  return nullptr;
}

util::Result<int> VantagePoint::relay_channel_of(
    const std::string& serial) const {
  for (const auto& md : devices_) {
    if (md.device->serial() == serial) return md.relay_channel;
  }
  return util::make_error(util::ErrorCode::kNotFound,
                          "no device with serial " + serial);
}

util::Status VantagePoint::switch_power(const std::string& serial,
                                        hw::RelayPosition pos) {
  auto channel = relay_channel_of(serial);
  if (!channel.ok()) return channel.error();
  device::AndroidDevice* dev = find_device(serial);
  if (pos == hw::RelayPosition::kBypass && !monitor_.ready()) {
    // Flipping to bypass without a programmed monitor browns the phone out.
    BLAB_WARN("vantage-point",
              serial << " switched to bypass with monitor down: brown-out");
    if (auto st = relay_.set_position(channel.value(), pos); !st.ok()) {
      return st;
    }
    dev->set_power_source(device::PowerSource::kNone);
    dev->power_off();
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "monitor not ready; device browned out");
  }
  if (auto st = relay_.set_position(channel.value(), pos); !st.ok()) return st;
  dev->set_power_source(pos == hw::RelayPosition::kBypass
                            ? device::PowerSource::kMonitorBypass
                            : device::PowerSource::kBattery);
  return util::Status::ok_status();
}

util::Result<mirror::MirroringSession*> VantagePoint::start_mirroring(
    const std::string& serial) {
  device::AndroidDevice* dev = find_device(serial);
  if (dev == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no device with serial " + serial);
  }
  auto& slot = sessions_[serial];
  if (slot != nullptr && slot->active()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "mirroring already active for " + serial);
  }
  slot = std::make_unique<mirror::MirroringSession>(
      controller_, *dev, config_.encoder, config_.mirror_timings);
  if (auto st = slot->start(); !st.ok()) {
    slot.reset();
    return st.error();
  }
  return slot.get();
}

util::Status VantagePoint::stop_mirroring(const std::string& serial) {
  const auto it = sessions_.find(serial);
  if (it == sessions_.end() || it->second == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no mirroring session for " + serial);
  }
  it->second->stop();
  sessions_.erase(it);
  return util::Status::ok_status();
}

mirror::MirroringSession* VantagePoint::mirroring(const std::string& serial) {
  const auto it = sessions_.find(serial);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void VantagePoint::refresh_usb_power() {
  for (auto& md : devices_) {
    md.device->set_usb_charge_ma(hub_.charge_current_ma(md.device->host()));
  }
}

}  // namespace blab::api
