// BatteryLab's experimenter API — Table 1 of the paper.
//
//   list_devices       List ADB ids of test devices
//   device_mirroring   Activate device mirroring          (device_id)
//   power_monitor      Toggle Monsoon power state
//   set_voltage        Set target voltage                 (voltage_val)
//   start_monitor      Start battery measurement          (device_id, duration)
//   stop_monitor       Stop battery measurement
//   batt_switch        (De)activate battery               (device_id)
//   execute_adb        Execute ADB command                (device_id, command)
//
// The API object runs at a vantage point; jobs dispatched by the access
// server call it (in the paper this is the Python library shipped to
// Jenkins jobs). start_monitor enforces the measurement hygiene the paper
// describes: USB charge power is cut first (uhubctl), automation falls back
// to WiFi, and the relay flips the device onto the Monsoon.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/vantage_point.hpp"
#include "hw/power_monitor.hpp"
#include "store/capture_store.hpp"
#include "util/result.hpp"

namespace blab::api {

class BatteryLabApi {
 public:
  explicit BatteryLabApi(VantagePoint& vp);

  /// Table 1: list ADB ids of test devices.
  std::vector<std::string> list_devices() const;

  /// Table 1: activate (or deactivate) device mirroring.
  util::Status device_mirroring(const std::string& device_id, bool on = true);
  bool mirroring_active(const std::string& device_id);

  /// Table 1: toggle Monsoon power state (via the WiFi socket).
  util::Status power_monitor();
  bool monitor_powered() const;

  /// Table 1: set target output voltage.
  util::Status set_voltage(double voltage);

  /// Table 1: start a battery measurement on a device. Cuts the device's USB
  /// charge current, flips its relay channel to bypass and starts the 5 kHz
  /// poller. With `duration` set, an auto-stop is scheduled.
  util::Status start_monitor(const std::string& device_id,
                             std::optional<util::Duration> duration = {});
  /// Table 1: stop the measurement and retrieve the capture. Also restores
  /// battery operation and USB power.
  util::Result<hw::Capture> stop_monitor();
  bool monitoring() const { return monitored_device_.has_value(); }

  /// Convenience: start, run the simulator for `duration`, stop.
  util::Result<hw::Capture> run_monitor(const std::string& device_id,
                                        util::Duration duration);

  /// Table 1: toggle a device between battery and bypass.
  util::Status batt_switch(const std::string& device_id);

  /// Table 1: execute an ADB command. Transport: WiFi while a measurement is
  /// active (USB is powered down), USB otherwise (§3.3).
  util::Result<std::string> execute_adb(const std::string& device_id,
                                        const std::string& command);

  /// Register the GUI toolbar's REST endpoints (§3.2) against the backend.
  void bind_rest_endpoints();

  /// Archive every successful stop_monitor capture into `store` under
  /// `workspace` (the dispatching job's id). nullptr detaches.
  void attach_capture_store(store::CaptureStore* store, std::string workspace);
  /// Id of the most recently archived capture, if any.
  std::optional<store::CaptureId> last_capture_id() const {
    return last_capture_id_;
  }

  VantagePoint& vantage_point() { return vp_; }

 private:
  util::Status require_device(const std::string& device_id) const;

  VantagePoint& vp_;
  std::optional<std::string> monitored_device_;
  sim::EventId auto_stop_ = sim::kInvalidEvent;
  store::CaptureStore* capture_store_ = nullptr;
  std::string store_workspace_;
  std::optional<store::CaptureId> last_capture_id_;
};

}  // namespace blab::api
