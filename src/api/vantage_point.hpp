// A BatteryLab vantage point (§3.2, Figure 1(b)).
//
// Assembles and wires every component the paper's Figure 1(b) shows at a
// member site: the Raspberry Pi controller (with WiFi AP, USB hub, Bluetooth,
// SSH server, GUI backend), the Monsoon power monitor fed through the relay
// circuit switch, the Meross WiFi power socket, and the attached test
// devices.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/controller.hpp"
#include "controller/monsoon_poller.hpp"
#include "controller/rest_backend.hpp"
#include "device/adb.hpp"
#include "device/device.hpp"
#include "device/hid_service.hpp"
#include "hw/gpio.hpp"
#include "hw/power_monitor.hpp"
#include "hw/power_socket.hpp"
#include "hw/relay.hpp"
#include "mirror/session.hpp"
#include "net/usb.hpp"
#include "net/wifi.hpp"
#include "util/result.hpp"

namespace blab::api {

struct VantagePointConfig {
  std::string name = "node1";  ///< DNS label under batterylab.dev
  std::uint64_t seed = 20191113;  ///< HotNets'19 opening day
  int relay_channels = 4;
  int usb_ports = 4;
  net::ApMode ap_mode = net::ApMode::kNat;
  hw::MonsoonSpec monsoon{};
  hw::RelayBoardSpec relay{};
  mirror::EncoderConfig encoder{};
  mirror::MirrorTimings mirror_timings{};
};

class VantagePoint {
 public:
  VantagePoint(sim::Simulator& sim, net::Network& net,
               VantagePointConfig config = {});
  ~VantagePoint();
  VantagePoint(const VantagePoint&) = delete;
  VantagePoint& operator=(const VantagePoint&) = delete;

  const VantagePointConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  std::string controller_host() const { return controller_.host(); }

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  controller::Controller& controller() { return controller_; }
  hw::GpioController& gpio() { return gpio_; }
  hw::RelayBoard& relay() { return relay_; }
  hw::PowerMonitor& monitor() { return monitor_; }
  hw::PowerSocket& power_socket() { return socket_; }
  net::UsbHub& usb_hub() { return hub_; }
  net::WifiAccessPoint& access_point() { return ap_; }
  controller::MonsoonPoller& poller() { return poller_; }
  controller::RestBackend& rest() { return rest_; }

  /// Create a test device, wire it to USB, WiFi and a relay channel, start
  /// its adbd, and boot it (on its own battery).
  util::Result<device::AndroidDevice*> add_device(device::DeviceSpec spec);
  device::AndroidDevice* find_device(const std::string& serial);
  util::Result<int> relay_channel_of(const std::string& serial) const;

  /// Route a device's power terminal: battery or monitor bypass. Switching
  /// to bypass requires the monitor to be up and programmed, or the phone
  /// browns out (power_off).
  util::Status switch_power(const std::string& serial, hw::RelayPosition pos);

  /// Device mirroring session management (one per device).
  util::Result<mirror::MirroringSession*> start_mirroring(
      const std::string& serial);
  util::Status stop_mirroring(const std::string& serial);
  mirror::MirroringSession* mirroring(const std::string& serial);

  /// USB charge bookkeeping: refresh each device's charge current from its
  /// hub port state. Call after toggling port power.
  void refresh_usb_power();

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  VantagePointConfig config_;
  controller::Controller controller_;
  hw::GpioController gpio_;
  hw::RelayBoard relay_;
  hw::PowerMonitor monitor_;
  hw::PowerSocket socket_;
  net::UsbHub hub_;
  net::WifiAccessPoint ap_;
  controller::MonsoonPoller poller_;
  controller::RestBackend rest_;

  struct ManagedDevice {
    std::unique_ptr<device::AndroidDevice> device;
    std::unique_ptr<device::AdbDaemon> adbd;      ///< Android only
    std::unique_ptr<device::BtHidService> hid;    ///< both platforms
    int relay_channel = -1;
  };
  std::vector<ManagedDevice> devices_;
  std::unordered_map<std::string, std::unique_ptr<mirror::MirroringSession>>
      sessions_;
};

}  // namespace blab::api
