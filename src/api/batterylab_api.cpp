#include "api/batterylab_api.hpp"

#include "controller/rest_backend.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::api {

BatteryLabApi::BatteryLabApi(VantagePoint& vp) : vp_{vp} {}

util::Status BatteryLabApi::require_device(const std::string& device_id) const {
  if (const_cast<VantagePoint&>(vp_).find_device(device_id) == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown device " + device_id);
  }
  return util::Status::ok_status();
}

std::vector<std::string> BatteryLabApi::list_devices() const {
  return const_cast<VantagePoint&>(vp_).controller().device_serials();
}

util::Status BatteryLabApi::device_mirroring(const std::string& device_id,
                                             bool on) {
  // No ScopedSpan here: the mirroring session opens its own detached span
  // parented at the tracer's current context, and that session outlives this
  // call. Wrapping the toggle in a short api span would make it the session's
  // parent and the session would escape its interval; parenting directly
  // under the caller (run_job) keeps the trace tree well-nested.
  if (auto st = require_device(device_id); !st.ok()) return st;
  if (on) {
    auto r = vp_.start_mirroring(device_id);
    return r.ok() ? util::Status::ok_status() : util::Status{r.error()};
  }
  return vp_.stop_mirroring(device_id);
}

bool BatteryLabApi::mirroring_active(const std::string& device_id) {
  auto* session = vp_.mirroring(device_id);
  return session != nullptr && session->active();
}

util::Status BatteryLabApi::power_monitor() {
  auto& socket = vp_.power_socket();
  return socket.is_on() ? socket.turn_off() : socket.turn_on();
}

bool BatteryLabApi::monitor_powered() const {
  return const_cast<VantagePoint&>(vp_).monitor().has_mains();
}

util::Status BatteryLabApi::set_voltage(double voltage) {
  return vp_.monitor().set_voltage(voltage);
}

util::Status BatteryLabApi::start_monitor(
    const std::string& device_id, std::optional<util::Duration> duration) {
  // Auto-stop fires as a sim event long after this frame is gone, so it
  // carries the context of the caller (e.g. the job's run_job span), captured
  // before this function's own span opens.
  const obs::TraceContext caller_ctx = vp_.simulator().tracer().current();
  obs::ScopedSpan span{&vp_.simulator().tracer(), "api", "start_monitor"};
  span.attr("device", device_id);
  if (auto st = require_device(device_id); !st.ok()) return st;
  if (monitored_device_.has_value()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "a measurement is already running on device " +
                                *monitored_device_);
  }
  auto* dev = vp_.find_device(device_id);
  // Measurement hygiene (§3.2/§3.3): cut USB charge current first.
  if (auto st = vp_.usb_hub().set_port_power_for(dev->host(), false);
      !st.ok()) {
    return st;
  }
  vp_.refresh_usb_power();
  // Battery bypass: the Monsoon now powers (and measures) the phone.
  if (auto st = vp_.switch_power(device_id, hw::RelayPosition::kBypass);
      !st.ok()) {
    (void)vp_.usb_hub().set_port_power_for(dev->host(), true);
    vp_.refresh_usb_power();
    return st;
  }
  // Let the relay contacts settle before sampling starts.
  vp_.simulator().run_for(vp_.relay().spec().switch_time +
                          vp_.relay().spec().transient_duration);
  if (auto st = vp_.poller().start(); !st.ok()) {
    (void)vp_.switch_power(device_id, hw::RelayPosition::kBattery);
    (void)vp_.usb_hub().set_port_power_for(dev->host(), true);
    vp_.refresh_usb_power();
    return st;
  }
  monitored_device_ = device_id;
  if (duration.has_value()) {
    auto_stop_ = vp_.simulator().schedule_after(*duration, [this, caller_ctx] {
      auto_stop_ = sim::kInvalidEvent;
      if (monitored_device_.has_value()) {
        obs::ScopedSpan stop_span{&vp_.simulator().tracer(), "api",
                                  "auto_stop", caller_ctx};
        BLAB_INFO("api", "auto-stopping measurement");
        (void)stop_monitor();
      }
    }, "api.auto-stop");
  }
  return util::Status::ok_status();
}

util::Result<hw::Capture> BatteryLabApi::stop_monitor() {
  if (!monitored_device_.has_value()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no measurement running");
  }
  const std::string device_id = *monitored_device_;
  monitored_device_.reset();
  obs::ScopedSpan span{&vp_.simulator().tracer(), "api", "stop_monitor"};
  span.attr("device", device_id);
  if (auto_stop_ != sim::kInvalidEvent) {
    vp_.simulator().cancel(auto_stop_);
    auto_stop_ = sim::kInvalidEvent;
  }
  auto capture = vp_.poller().stop();
  if (capture.ok()) {
    span.attr("samples",
              static_cast<std::int64_t>(capture.value().sample_count()));
  }
  // Restore battery operation and USB charging for the idle period.
  (void)vp_.switch_power(device_id, hw::RelayPosition::kBattery);
  if (auto* dev = vp_.find_device(device_id)) {
    (void)vp_.usb_hub().set_port_power_for(dev->host(), true);
  }
  vp_.refresh_usb_power();
  if (capture.ok() && capture_store_ != nullptr) {
    last_capture_id_ = capture_store_->append(store_workspace_, device_id,
                                              capture.value(),
                                              vp_.simulator().now());
  }
  return capture;
}

void BatteryLabApi::attach_capture_store(store::CaptureStore* store,
                                         std::string workspace) {
  capture_store_ = store;
  store_workspace_ = std::move(workspace);
  last_capture_id_.reset();
}

util::Result<hw::Capture> BatteryLabApi::run_monitor(
    const std::string& device_id, util::Duration duration) {
  if (auto st = start_monitor(device_id); !st.ok()) return st.error();
  vp_.simulator().run_for(duration);
  return stop_monitor();
}

util::Status BatteryLabApi::batt_switch(const std::string& device_id) {
  if (auto st = require_device(device_id); !st.ok()) return st;
  auto channel = vp_.relay_channel_of(device_id);
  if (!channel.ok()) return channel.error();
  auto pos = vp_.relay().position(channel.value());
  if (!pos.ok()) return pos.error();
  const auto target = pos.value() == hw::RelayPosition::kBattery
                          ? hw::RelayPosition::kBypass
                          : hw::RelayPosition::kBattery;
  return vp_.switch_power(device_id, target);
}

util::Result<std::string> BatteryLabApi::execute_adb(
    const std::string& device_id, const std::string& command) {
  obs::ScopedSpan span{&vp_.simulator().tracer(), "api", "execute_adb"};
  span.attr("device", device_id);
  if (auto st = require_device(device_id); !st.ok()) return st.error();
  auto* dev = vp_.find_device(device_id);
  // Table 1 offers execute_adb "if available" — there is no adbd on iOS.
  if (dev->spec().platform != device::Platform::kAndroid) {
    return util::make_error(util::ErrorCode::kUnsupported,
                            "ADB is not available on " + device_id +
                                " (" + dev->spec().model +
                                "); use UI tests or the BT keyboard (§3.3)");
  }
  // USB is preferred when its port is powered; during measurements it is
  // not, and automation rides WiFi (§3.3).
  const bool usb_up = vp_.usb_hub().data_path_up(dev->host());
  const auto transport = usb_up ? device::AdbTransport::kUsb
                                : device::AdbTransport::kWifi;
  return vp_.controller().adb().shell_sync(dev->host(), transport, command);
}

void BatteryLabApi::bind_rest_endpoints() {
  auto& rest = vp_.rest();
  rest.register_endpoint("list_devices", [this](const std::string&) {
    return util::Result<std::string>{util::join(list_devices(), ",")};
  });
  rest.register_endpoint(
      "device_mirroring", [this](const std::string& query) {
        const auto params = controller::parse_query(query);
        const auto it = params.find("device_id");
        if (it == params.end()) {
          return util::Result<std::string>{util::make_error(
              util::ErrorCode::kInvalidArgument, "device_id required")};
        }
        const bool off = params.contains("off");
        if (auto st = device_mirroring(it->second, !off); !st.ok()) {
          return util::Result<std::string>{st.error()};
        }
        return util::Result<std::string>{std::string{"ok"}};
      });
  rest.register_endpoint("power_monitor", [this](const std::string&) {
    if (auto st = power_monitor(); !st.ok()) {
      return util::Result<std::string>{st.error()};
    }
    return util::Result<std::string>{
        std::string{monitor_powered() ? "on" : "off"}};
  });
  rest.register_endpoint("set_voltage", [this](const std::string& query) {
    const auto params = controller::parse_query(query);
    const auto it = params.find("voltage_val");
    if (it == params.end()) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument, "voltage_val required")};
    }
    const auto voltage = util::parse_double(it->second);
    if (!voltage.has_value()) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument,
          "voltage_val must be a finite number")};
    }
    if (auto st = set_voltage(*voltage); !st.ok()) {
      return util::Result<std::string>{st.error()};
    }
    return util::Result<std::string>{std::string{"ok"}};
  });
  rest.register_endpoint("start_monitor", [this](const std::string& query) {
    const auto params = controller::parse_query(query);
    const auto it = params.find("device_id");
    if (it == params.end()) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument, "device_id required")};
    }
    std::optional<util::Duration> duration;
    if (const auto d = params.find("duration"); d != params.end()) {
      const auto seconds = util::parse_double(d->second);
      if (!seconds.has_value() || *seconds < 0.0) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kInvalidArgument,
            "duration must be a non-negative number of seconds")};
      }
      duration = util::Duration::seconds(*seconds);
    }
    if (auto st = start_monitor(it->second, duration); !st.ok()) {
      return util::Result<std::string>{st.error()};
    }
    return util::Result<std::string>{std::string{"ok"}};
  });
  rest.register_endpoint("stop_monitor", [this](const std::string&) {
    auto capture = stop_monitor();
    if (!capture.ok()) return util::Result<std::string>{capture.error()};
    return util::Result<std::string>{
        "samples=" + std::to_string(capture.value().sample_count()) +
        "&mean_ma=" +
        util::format_double(capture.value().mean_current_ma(), 2)};
  });
  rest.register_endpoint("batt_switch", [this](const std::string& query) {
    const auto params = controller::parse_query(query);
    const auto it = params.find("device_id");
    if (it == params.end()) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument, "device_id required")};
    }
    if (auto st = batt_switch(it->second); !st.ok()) {
      return util::Result<std::string>{st.error()};
    }
    return util::Result<std::string>{std::string{"ok"}};
  });
  // GET /captures/:id/source — where a stored capture currently lives
  // (memory | disk | tier). Endpoint names have no path segments, so the
  // capture id rides in the query: "id=<workspace>%23<seq>" ('#' must be
  // percent-escaped). With no id, reports on the last archived capture.
  rest.register_endpoint("captures_source", [this](const std::string& query) {
    if (capture_store_ == nullptr) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kFailedPrecondition, "no capture store attached")};
    }
    const auto params = controller::parse_query(query);
    std::optional<store::CaptureId> id;
    if (const auto it = params.find("id"); it != params.end()) {
      const auto hash = it->second.rfind('#');
      if (hash == std::string::npos) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kInvalidArgument,
            "id must be <workspace>#<seq> ('#' percent-escaped as %23)")};
      }
      const auto seq = util::parse_u64(it->second.substr(hash + 1));
      if (!seq.has_value()) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kInvalidArgument,
            "capture sequence must be a decimal integer")};
      }
      id = store::CaptureId{it->second.substr(0, hash), *seq};
    } else {
      id = last_capture_id_;
    }
    if (!id.has_value()) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument,
          "id required (no capture archived yet)")};
    }
    const auto source = capture_store_->source_of(*id);
    if (!source.ok()) return util::Result<std::string>{source.error()};
    return util::Result<std::string>{
        "id=" + id->str() +
        "&source=" + store::capture_source_name(source.value())};
  });
  rest.register_endpoint("execute_adb", [this](const std::string& query) {
    const auto params = controller::parse_query(query);
    const auto dev = params.find("device_id");
    const auto cmd = params.find("command");
    if (dev == params.end() || cmd == params.end()) {
      return util::Result<std::string>{
          util::make_error(util::ErrorCode::kInvalidArgument,
                           "device_id and command required")};
    }
    return execute_adb(dev->second, cmd->second);
  });
}

}  // namespace blab::api
