#include "net/bluetooth.hpp"

namespace blab::net {

BluetoothAdapter::BluetoothAdapter(Network& net, std::string host)
    : net_{net}, host_{std::move(host)} {
  net_.add_host(host_);
}

util::Status BluetoothAdapter::pair(BluetoothAdapter& peer, BtProfile profile) {
  if (peer.host_ == host_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "cannot pair with self");
  }
  if (pairings_.contains(peer.host_)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "already paired with " + peer.host_);
  }
  if (net_.find_link(host_, peer.host_, "bt") == nullptr) {
    LinkSpec spec;
    spec.latency = Duration::millis(8);
    spec.bandwidth_ab_mbps = 1.5;
    spec.bandwidth_ba_mbps = 1.5;
    spec.jitter_fraction = 0.25;
    spec.hop_cost = 6;  // prefer USB and WiFi paths when available
    net_.add_link(host_, peer.host_, spec, "bt");
  }
  pairings_[peer.host_] = BtPairing{peer.host_, profile, true};
  peer.pairings_[host_] = BtPairing{host_, profile, true};
  return util::Status::ok_status();
}

util::Status BluetoothAdapter::unpair(const std::string& peer_host) {
  if (pairings_.erase(peer_host) == 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "not paired with " + peer_host);
  }
  return util::Status::ok_status();
}

bool BluetoothAdapter::paired_with(const std::string& peer_host) const {
  return pairings_.contains(peer_host);
}

const BtPairing* BluetoothAdapter::pairing(const std::string& peer_host) const {
  const auto it = pairings_.find(peer_host);
  return it == pairings_.end() ? nullptr : &it->second;
}

}  // namespace blab::net
