// SpeedTest client (Table 2 methodology).
//
// Measures RTT with small probes and up/down throughput with bulk Flow
// transfers between a client host and a speedtest server host. Used to
// regenerate Table 2 through each VPN tunnel.
#pragma once

#include <string>

#include "net/flow.hpp"
#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::net {

struct SpeedTestConfig {
  std::size_t download_bytes = 12 * 1024 * 1024;
  std::size_t upload_bytes = 12 * 1024 * 1024;
  int ping_count = 8;
  Duration timeout = Duration::seconds(120);
};

struct SpeedTestResult {
  double download_mbps = 0.0;
  double upload_mbps = 0.0;
  double rtt_ms = 0.0;
};

class SpeedTest {
 public:
  SpeedTest(Network& net, std::string client_host, std::string server_host,
            SpeedTestConfig config = {});

  /// Run ping + download + upload, pumping the simulator until done.
  util::Result<SpeedTestResult> run();

 private:
  util::Result<double> measure_rtt_ms();
  util::Result<double> measure_mbps(const std::string& from,
                                    const std::string& to, std::size_t bytes);

  Network& net_;
  std::string client_;
  std::string server_;
  SpeedTestConfig config_;
};

}  // namespace blab::net
