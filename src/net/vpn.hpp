// VPN provider and tunnels (§4.3, Table 2).
//
// The paper emulates geographic diversity by tunneling the vantage point's
// traffic through ProtonVPN exit nodes in five countries. Here each exit node
// is a real host in the network graph with a calibrated link (download /
// upload bandwidth, latency from Table 2); "connecting" installs a gateway
// route on the client host.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::net {

struct VpnLocation {
  std::string country;
  std::string city;
  double server_distance_km = 0.0;  ///< speedtest server distance (Table 2)
  double down_mbps = 0.0;
  double up_mbps = 0.0;
  double rtt_ms = 0.0;

  std::string node_host() const { return "vpn." + city; }
};

/// The five ProtonVPN exit profiles of Table 2 (D/U are *measured* speedtest
/// numbers; we configure raw link capacity slightly above so a flow-based
/// speedtest lands near the paper's figures).
const std::vector<VpnLocation>& proton_vpn_locations();
/// Lookup by country name ("Japan") or city ("Bunkyo"); nullptr when unknown.
const VpnLocation* find_vpn_location(const std::string& name);

class VpnProvider {
 public:
  /// Builds one exit-node host per location, linked to `internet_host`.
  VpnProvider(Network& net, std::string internet_host,
              std::vector<VpnLocation> locations = proton_vpn_locations());

  const std::vector<VpnLocation>& locations() const { return locations_; }

  /// Tunnel all of `client_host`'s traffic through the named location.
  util::Status connect(const std::string& client_host,
                       const std::string& location_name);
  util::Status disconnect(const std::string& client_host);
  /// Country of the active tunnel, or empty string.
  std::string active_location(const std::string& client_host) const;

 private:
  Network& net_;
  std::string internet_host_;
  std::vector<VpnLocation> locations_;
  std::unordered_map<std::string, std::string> active_;  // client -> country
};

}  // namespace blab::net
