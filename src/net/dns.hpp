// BatteryLab DNS registry (§3.4).
//
// Vantage points get human-readable names under the platform zone
// (node1.batterylab.dev), served by a Route53-style registry that the access
// server owns. Wildcard support models the *.batterylab.dev certificate zone.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"

namespace blab::net {

class DnsRegistry {
 public:
  explicit DnsRegistry(std::string zone = "batterylab.dev");

  const std::string& zone() const { return zone_; }

  /// Register `label`.zone -> host; rejects duplicates and empty labels.
  util::Status register_node(const std::string& label, const std::string& host);
  util::Status deregister_node(const std::string& label);

  /// Resolve a fully qualified name ("node1.batterylab.dev").
  util::Result<std::string> resolve(const std::string& fqdn) const;
  /// True when `fqdn` is covered by the platform wildcard (*.zone).
  bool wildcard_covers(const std::string& fqdn) const;

  std::vector<std::string> labels() const;
  std::string fqdn(const std::string& label) const { return label + "." + zone_; }

 private:
  std::string zone_;
  std::unordered_map<std::string, std::string> records_;  // label -> host
};

}  // namespace blab::net
