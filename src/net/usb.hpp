// USB hub with per-port power control (§3.2).
//
// Each test device hangs off one controller USB port. USB carries both data
// (ADB) and charge current; the charge current corrupts power-monitor
// readings, so BatteryLab toggles port power with uhubctl before a
// measurement. The hub model exposes exactly that control surface.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::net {

/// Nominal USB 2.0 charge current delivered to an attached device (mA).
inline constexpr double kUsbChargeCurrentMa = 450.0;

struct UsbPort {
  int index = 0;
  bool powered = true;
  bool data_enabled = true;
  std::string attached_host;  ///< empty when vacant

  bool occupied() const { return !attached_host.empty(); }
};

class UsbHub {
 public:
  UsbHub(Network& net, std::string hub_host, int ports);

  const std::string& host() const { return hub_host_; }
  int port_count() const { return static_cast<int>(ports_.size()); }
  const UsbPort& port(int index) const;

  /// Attach a device to a vacant port; creates the USB data link
  /// (480 Mbps / 100 us — high-speed USB 2.0).
  util::Result<int> attach(const std::string& device_host);
  util::Status detach(const std::string& device_host);
  /// uhubctl-style per-port power toggle.
  util::Status set_port_power(int index, bool on);
  util::Status set_port_power_for(const std::string& device_host, bool on);

  /// Charge current currently flowing into `device_host` (mA); zero when the
  /// port is off or the device not attached. This is the interference term
  /// Fig. 2's methodology eliminates.
  double charge_current_ma(const std::string& device_host) const;
  bool data_path_up(const std::string& device_host) const;

  int find_port(const std::string& device_host) const;  ///< -1 if absent

 private:
  Network& net_;
  std::string hub_host_;
  std::vector<UsbPort> ports_;
};

}  // namespace blab::net
