#include "net/usb.hpp"

#include <stdexcept>

namespace blab::net {

UsbHub::UsbHub(Network& net, std::string hub_host, int ports)
    : net_{net}, hub_host_{std::move(hub_host)} {
  if (ports <= 0) throw std::invalid_argument{"UsbHub needs >= 1 port"};
  net_.add_host(hub_host_);
  ports_.resize(static_cast<std::size_t>(ports));
  for (int i = 0; i < ports; ++i) ports_[static_cast<std::size_t>(i)].index = i;
}

const UsbPort& UsbHub::port(int index) const {
  return ports_.at(static_cast<std::size_t>(index));
}

util::Result<int> UsbHub::attach(const std::string& device_host) {
  if (find_port(device_host) >= 0) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            device_host + " already attached");
  }
  for (auto& p : ports_) {
    if (!p.occupied()) {
      p.attached_host = device_host;
      if (net_.find_link(hub_host_, device_host, "usb") == nullptr) {
        net_.add_link(hub_host_, device_host,
                      LinkSpec::symmetric(Duration::micros(100), 480.0),
                      "usb");
      }
      return p.index;
    }
  }
  return util::make_error(util::ErrorCode::kResourceExhausted,
                          "no vacant USB port");
}

util::Status UsbHub::detach(const std::string& device_host) {
  const int idx = find_port(device_host);
  if (idx < 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            device_host + " not attached");
  }
  ports_[static_cast<std::size_t>(idx)].attached_host.clear();
  return util::Status::ok_status();
}

util::Status UsbHub::set_port_power(int index, bool on) {
  if (index < 0 || index >= port_count()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad port index " + std::to_string(index));
  }
  auto& p = ports_[static_cast<std::size_t>(index)];
  p.powered = on;
  // USB 2.0 data requires bus power on this hub: cutting power drops data too,
  // and the link disappears from routing.
  p.data_enabled = on;
  if (p.occupied()) {
    if (Link* link = net_.find_link(hub_host_, p.attached_host, "usb")) {
      link->set_enabled(on);
    }
  }
  return util::Status::ok_status();
}

util::Status UsbHub::set_port_power_for(const std::string& device_host,
                                        bool on) {
  const int idx = find_port(device_host);
  if (idx < 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            device_host + " not attached");
  }
  return set_port_power(idx, on);
}

double UsbHub::charge_current_ma(const std::string& device_host) const {
  const int idx = find_port(device_host);
  if (idx < 0) return 0.0;
  const auto& p = ports_[static_cast<std::size_t>(idx)];
  return p.powered ? kUsbChargeCurrentMa : 0.0;
}

bool UsbHub::data_path_up(const std::string& device_host) const {
  const int idx = find_port(device_host);
  if (idx < 0) return false;
  const auto& p = ports_[static_cast<std::size_t>(idx)];
  return p.data_enabled;
}

int UsbHub::find_port(const std::string& device_host) const {
  for (const auto& p : ports_) {
    if (p.attached_host == device_host) return p.index;
  }
  return -1;
}

}  // namespace blab::net
