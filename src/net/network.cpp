#include "net/network.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace blab::net {

Network::Network(sim::Simulator& sim, std::uint64_t seed)
    : sim_{sim}, rng_{seed} {
  obs::MetricsRegistry& m = sim_.metrics();
  metrics_.delivered = &m.counter("blab_net_messages_delivered_total");
  metrics_.dropped = &m.counter("blab_net_messages_dropped_total");
  metrics_.bytes_delivered = &m.counter("blab_net_bytes_delivered_total");
}

void Network::add_host(const std::string& name) {
  adjacency_.try_emplace(name);
  stats_.try_emplace(name);
}

bool Network::has_host(const std::string& name) const {
  return adjacency_.contains(name);
}

Link& Network::add_link(const std::string& a, const std::string& b,
                        const LinkSpec& spec, const std::string& label) {
  add_host(a);
  add_host(b);
  links_.push_back(std::make_unique<Link>(a, b, spec, label));
  const std::size_t idx = links_.size() - 1;
  adjacency_[a].push_back(idx);
  adjacency_[b].push_back(idx);
  return *links_.back();
}

Link* Network::find_link(const std::string& a, const std::string& b,
                         const std::string& label) {
  for (auto& link : links_) {
    if (!link->connects(a, b)) continue;
    if (!label.empty() && link->label() != label) continue;
    return link.get();
  }
  return nullptr;
}

void Network::listen(const Address& addr, MessageHandler handler) {
  listeners_[addr] = std::move(handler);
}

void Network::unlisten(const Address& addr) { listeners_.erase(addr); }

bool Network::is_listening(const Address& addr) const {
  return listeners_.contains(addr);
}

Link* Network::best_link(const std::string& from,
                         const std::string& to) const {
  Link* best = nullptr;
  for (std::size_t idx : adjacency_.at(from)) {
    Link* link = links_[idx].get();
    if (!link->enabled() || link->peer_of(from) != to) continue;
    if (best == nullptr || link->spec().hop_cost < best->spec().hop_cost) {
      best = link;
    }
  }
  return best;
}

std::vector<std::string> Network::bfs_path(const std::string& from,
                                           const std::string& to) const {
  // Uniform-cost search over enabled links, minimizing total hop cost.
  if (!adjacency_.contains(from) || !adjacency_.contains(to)) return {};
  if (from == to) return {from};
  std::unordered_map<std::string, int> dist;
  std::unordered_map<std::string, std::string> parent;
  using Entry = std::pair<int, std::string>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[from] = 0;
  frontier.emplace(0, from);
  while (!frontier.empty()) {
    const auto [d, cur] = frontier.top();
    frontier.pop();
    if (d > dist[cur]) continue;
    if (cur == to) break;
    for (std::size_t idx : adjacency_.at(cur)) {
      const auto& link = *links_[idx];
      if (!link.enabled()) continue;
      const std::string next = link.peer_of(cur);
      const int nd = d + link.spec().hop_cost;
      const auto it = dist.find(next);
      if (it == dist.end() || nd < it->second) {
        dist[next] = nd;
        parent[next] = cur;
        frontier.emplace(nd, next);
      }
    }
  }
  if (!parent.contains(to)) return {};
  std::vector<std::string> path{to};
  std::string p = to;
  while (p != from) {
    p = parent[p];
    path.push_back(p);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::string> Network::routed_path(const std::string& from,
                                              const std::string& to) const {
  // A tunneled host sends through its gateway, and — because its public
  // address *is* the exit node's — traffic toward it returns through the
  // same gateway. Collect the forced waypoints in order.
  std::vector<std::string> waypoints;
  if (const auto gw = gateways_.find(from);
      gw != gateways_.end() && gw->second != to && gw->second != from) {
    waypoints.push_back(gw->second);
  }
  if (const auto gw = gateways_.find(to);
      gw != gateways_.end() && gw->second != from && gw->second != to &&
      (waypoints.empty() || waypoints.back() != gw->second)) {
    waypoints.push_back(gw->second);
  }
  std::vector<std::string> path{from};
  std::string cursor = from;
  waypoints.push_back(to);
  for (const auto& next : waypoints) {
    auto leg = bfs_path(cursor, next);
    if (leg.empty()) return {};
    path.insert(path.end(), leg.begin() + 1, leg.end());
    cursor = next;
  }
  return path;
}

util::Status Network::send(Message msg) {
  msg.id = next_msg_id_++;
  const auto route = routed_path(msg.src.host, msg.dst.host);
  if (route.empty()) {
    return util::make_error(util::ErrorCode::kUnavailable,
                            "no route from " + msg.src.host + " to " +
                                msg.dst.host);
  }
  if (!listeners_.contains(msg.dst)) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no listener on " + msg.dst.str());
  }
  const std::size_t bytes = msg.size();
  Duration total = Duration::zero();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    Link* link = best_link(route[i], route[i + 1]);
    if (link == nullptr) {
      return util::make_error(util::ErrorCode::kUnavailable,
                              "link vanished mid-route");
    }
    const Transit transit = link->send(route[i], bytes, sim_.now() + total, rng_);
    if (transit.dropped) {
      ++dropped_;
      metrics_.dropped->inc();
      return util::Status::ok_status();  // lost in transit, like UDP
    }
    total += transit.delay;
  }
  auto& tx = stats_[msg.src.host];
  tx.bytes_tx += bytes;
  ++tx.msgs_tx;

  sim_.schedule_after(total, [this, msg = std::move(msg), bytes] {
    const auto it = listeners_.find(msg.dst);
    if (it == listeners_.end()) return;  // listener went away in flight
    auto& rx = stats_[msg.dst.host];
    rx.bytes_rx += bytes;
    ++rx.msgs_rx;
    ++delivered_;
    metrics_.delivered->inc();
    metrics_.bytes_delivered->inc(bytes);
    // Copy before invoking: handlers may unlisten (destroy) themselves.
    const MessageHandler handler = it->second;
    handler(msg);
  }, "net.deliver");
  return util::Status::ok_status();
}

util::Status Network::set_gateway(const std::string& host,
                                  const std::string& gateway) {
  if (gateway.empty()) {
    gateways_.erase(host);
    return util::Status::ok_status();
  }
  if (!has_host(gateway)) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown gateway host " + gateway);
  }
  if (bfs_path(host, gateway).empty()) {
    return util::make_error(util::ErrorCode::kUnavailable,
                            "gateway " + gateway + " unreachable from " + host);
  }
  gateways_[host] = gateway;
  return util::Status::ok_status();
}

std::string Network::gateway_of(const std::string& host) const {
  const auto it = gateways_.find(host);
  return it == gateways_.end() ? std::string{} : it->second;
}

std::vector<std::string> Network::path(const std::string& from,
                                       const std::string& to) const {
  return routed_path(from, to);
}

util::Result<Duration> Network::path_delay(const std::string& from,
                                           const std::string& to,
                                           std::size_t bytes) const {
  const auto route = routed_path(from, to);
  if (route.empty()) {
    return util::make_error(util::ErrorCode::kUnavailable, "no route");
  }
  Duration total = Duration::zero();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (const Link* link = best_link(route[i], route[i + 1])) {
      total += link->spec().latency;
      total +=
          serialization_time(bytes, link->bandwidth_from_mbps(route[i]));
    }
  }
  return total;
}

util::Result<double> Network::path_bandwidth_mbps(const std::string& from,
                                                  const std::string& to) const {
  const auto route = routed_path(from, to);
  if (route.empty()) {
    return util::make_error(util::ErrorCode::kUnavailable, "no route");
  }
  double mbps = 1e12;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (const Link* link = best_link(route[i], route[i + 1])) {
      mbps = std::min(mbps, link->bandwidth_from_mbps(route[i]));
    }
  }
  return mbps;
}

const HostStats& Network::stats(const std::string& host) const {
  return stats_[host];
}

void Network::reset_stats() {
  for (auto& [_, s] : stats_) s = HostStats{};
}

}  // namespace blab::net
