#include "net/flow.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace blab::net {
namespace {

int next_ephemeral_port() {
  static std::atomic<int> port{40000};
  return port++;
}

}  // namespace

Flow::Flow(Network& net, std::string src_host, std::string dst_host,
           std::size_t total_bytes, FlowOptions options, Callback on_done)
    : net_{net},
      src_host_{std::move(src_host)},
      dst_host_{std::move(dst_host)},
      total_bytes_{total_bytes},
      options_{options},
      on_done_{std::move(on_done)} {
  src_addr_ = Address{src_host_, next_ephemeral_port()};
  dst_addr_ = Address{dst_host_, next_ephemeral_port()};
  total_segments_ = std::max<std::size_t>(
      1, (total_bytes_ + options_.segment_bytes - 1) / options_.segment_bytes);
}

Flow::~Flow() {
  if (started_flag_ && !done_) {
    net_.unlisten(src_addr_);
    net_.unlisten(dst_addr_);
    if (rto_event_ != sim::kInvalidEvent) net_.simulator().cancel(rto_event_);
    net_.simulator().tracer().end(span_);
  }
}

void Flow::start() {
  started_flag_ = true;
  started_ = net_.simulator().now();
  obs::Tracer& tracer = net_.simulator().tracer();
  span_ = tracer.begin_detached("net", "flow", tracer.current());
  tracer.set_attr(span_, "src", src_host_);
  tracer.set_attr(span_, "dst", dst_host_);
  tracer.set_attr(span_, "bytes", static_cast<std::int64_t>(total_bytes_));
  net_.simulator().metrics().counter("blab_net_flows_started_total").inc();
  cwnd_ = static_cast<double>(options_.init_cwnd_segments);

  // Receiver: advance the contiguous-receive point, reply with cumulative
  // acks. The receiver's counter is distinct from the sender's ack state —
  // many segments are in flight between the two.
  net_.listen(dst_addr_, [this](const Message& msg) {
    if (done_) return;
    const auto seg = static_cast<std::size_t>(std::stoull(msg.payload));
    if (seg == received_) {
      ++received_;
    } else if (seg > received_) {
      // Out-of-order future segment: dropped (go-back-N receiver), but we
      // still re-ack so the sender learns the receive point.
    }
    Message ack;
    ack.src = dst_addr_;
    ack.dst = src_addr_;
    ack.tag = "flow.ack";
    ack.payload = std::to_string(received_);
    ack.wire_bytes = 64;
    (void)net_.send(std::move(ack));
  });

  // Sender: advance cumulative ack point, grow window, keep pumping.
  net_.listen(src_addr_, [this](const Message& msg) {
    if (done_) return;
    const auto cum = static_cast<std::size_t>(std::stoull(msg.payload));
    if (cum > acked_) {
      const std::size_t newly = cum - acked_;
      acked_ = cum;
      retries_ = 0;
      on_ack(newly);
    }
  });

  pump();
  arm_rto();
}

void Flow::on_ack(std::size_t acked_segments) {
  // Slow start: +1 segment of cwnd per acked segment (doubles per RTT).
  cwnd_ = std::min(cwnd_ + static_cast<double>(acked_segments),
                   static_cast<double>(options_.max_cwnd_segments));
  if (acked_ >= total_segments_) {
    finish(true);
    return;
  }
  pump();
  arm_rto();
}

void Flow::pump() {
  const auto window = static_cast<std::size_t>(cwnd_);
  while (next_to_send_ < total_segments_ &&
         next_to_send_ < acked_ + window) {
    const std::size_t seg = next_to_send_++;
    const std::size_t bytes =
        (seg + 1 == total_segments_)
            ? total_bytes_ - seg * options_.segment_bytes
            : options_.segment_bytes;
    Message m;
    m.src = src_addr_;
    m.dst = dst_addr_;
    m.tag = "flow.data";
    m.payload = std::to_string(seg);
    m.wire_bytes = std::max<std::size_t>(bytes, 1) + 64;
    if (auto st = net_.send(std::move(m)); !st.ok()) {
      finish(false);
      return;
    }
  }
}

void Flow::arm_rto() {
  auto& sim = net_.simulator();
  if (rto_event_ != sim::kInvalidEvent) sim.cancel(rto_event_);
  rto_event_ = sim.schedule_after(options_.rto, [this] { on_rto(); },
                                  "flow.rto");
}

void Flow::on_rto() {
  rto_event_ = sim::kInvalidEvent;
  if (done_) return;
  if (++retries_ > options_.max_retries) {
    finish(false);
    return;
  }
  ++retransmissions_;
  // Go-back-N: resume sending from the cumulative ack point with a fresh
  // (conservative) window.
  next_to_send_ = acked_;
  cwnd_ = static_cast<double>(options_.init_cwnd_segments);
  pump();
  arm_rto();
}

void Flow::finish(bool success) {
  if (done_) return;
  done_ = true;
  auto& sim = net_.simulator();
  if (rto_event_ != sim::kInvalidEvent) {
    sim.cancel(rto_event_);
    rto_event_ = sim::kInvalidEvent;
  }
  net_.unlisten(src_addr_);
  net_.unlisten(dst_addr_);
  result_.success = success;
  result_.bytes = total_bytes_;
  result_.elapsed = sim.now() - started_;
  result_.retransmissions = retransmissions_;
  if (result_.elapsed > Duration::zero()) {
    result_.throughput_mbps = static_cast<double>(total_bytes_) * 8.0 /
                              result_.elapsed.to_seconds() / 1e6;
  }
  obs::MetricsRegistry& m = net_.simulator().metrics();
  m.counter("blab_net_flows_completed_total",
            {{"result", success ? "success" : "failure"}})
      .inc();
  if (retransmissions_ > 0) {
    m.counter("blab_net_flow_retransmissions_total")
        .inc(static_cast<std::uint64_t>(retransmissions_));
  }
  obs::Tracer& tracer = sim.tracer();
  tracer.set_attr(span_, "success", static_cast<std::int64_t>(success ? 1 : 0));
  tracer.set_attr(span_, "retransmissions",
                  static_cast<std::int64_t>(retransmissions_));
  tracer.end(span_);
  span_ = 0;
  if (on_done_) on_done_(result_);
}

Duration Flow::estimate(std::size_t bytes, Duration rtt, double mbps,
                        const FlowOptions& options) {
  if (mbps <= 0.0) return Duration::max();
  const double bdp_segments =
      mbps * 1e6 / 8.0 * rtt.to_seconds() /
      static_cast<double>(options.segment_bytes);
  double cwnd = static_cast<double>(options.init_cwnd_segments);
  double sent = 0.0;
  const double total =
      std::ceil(static_cast<double>(bytes) /
                static_cast<double>(options.segment_bytes));
  Duration t = Duration::zero();
  // Slow-start rounds until the window covers the BDP (or data runs out).
  while (sent < total && cwnd < bdp_segments) {
    sent += cwnd;
    cwnd *= 2.0;
    t += rtt;
  }
  if (sent < total) {
    const double remaining_bytes =
        (total - sent) * static_cast<double>(options.segment_bytes);
    t += Duration::seconds(remaining_bytes * 8.0 / (mbps * 1e6));
    t += rtt;  // final ack
  }
  return t;
}

}  // namespace blab::net
