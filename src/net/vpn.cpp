#include "net/vpn.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

namespace blab::net {

const std::vector<VpnLocation>& proton_vpn_locations() {
  static const std::vector<VpnLocation> locations = {
      {"South Africa", "Johannesburg", 3.21, 6.26, 9.77, 222.04},
      {"China", "Hong Kong", 4.86, 7.64, 7.77, 286.32},
      {"Japan", "Bunkyo", 2.21, 9.68, 7.76, 239.38},
      {"Brazil", "Sao Paulo", 8.84, 9.75, 8.82, 235.05},
      {"CA, USA", "Santa Clara", 7.99, 10.63, 14.87, 215.16},
  };
  return locations;
}

const VpnLocation* find_vpn_location(const std::string& name) {
  for (const auto& loc : proton_vpn_locations()) {
    if (loc.country == name || loc.city == name) return &loc;
  }
  return nullptr;
}

VpnProvider::VpnProvider(Network& net, std::string internet_host,
                         std::vector<VpnLocation> locations)
    : net_{net},
      internet_host_{std::move(internet_host)},
      locations_{std::move(locations)} {
  net_.add_host(internet_host_);
  for (const auto& loc : locations_) {
    // Exit link: the VPN node's own uplink is the throughput bottleneck.
    // Traffic from the internet toward the client transits internet->vpn at
    // the *download* rate; client->internet transits vpn->internet at the
    // *upload* rate. Raw capacity sits a few percent above the measured
    // speedtest numbers (protocol overhead and slow-start eat the gap).
    LinkSpec spec;
    spec.latency = Duration::millis(3);  // speedtest server sits by the node
    spec.bandwidth_ab_mbps = loc.up_mbps * 1.06;    // vpn -> internet
    spec.bandwidth_ba_mbps = loc.down_mbps * 1.06;  // internet -> vpn
    spec.jitter_fraction = 0.05;
    net_.add_link(loc.node_host(), internet_host_, spec);
  }
}

util::Status VpnProvider::connect(const std::string& client_host,
                                  const std::string& location_name) {
  obs::ScopedSpan span{&net_.simulator().tracer(), "net", "vpn_connect"};
  span.attr("client", client_host);
  span.attr("location", location_name);
  const VpnLocation* loc = nullptr;
  for (const auto& candidate : locations_) {
    if (candidate.country == location_name || candidate.city == location_name) {
      loc = &candidate;
      break;
    }
  }
  if (loc == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown VPN location " + location_name);
  }
  // Access leg: the encrypted tunnel from the client to the exit node. It
  // carries (almost all of) the end-to-end RTT Table 2 reports; capacity is
  // the client's fast university uplink, so the exit link stays the
  // bottleneck.
  if (net_.find_link(client_host, loc->node_host()) == nullptr) {
    LinkSpec access;
    access.latency = Duration::millis(
        static_cast<std::int64_t>(loc->rtt_ms / 2.0) - 3);
    access.bandwidth_ab_mbps = 200.0;
    access.bandwidth_ba_mbps = 200.0;
    access.jitter_fraction = 0.05;
    net_.add_link(client_host, loc->node_host(), access);
  }
  if (auto st = net_.set_gateway(client_host, loc->node_host()); !st.ok()) {
    return st;
  }
  active_[client_host] = loc->country;
  obs::MetricsRegistry& m = net_.simulator().metrics();
  m.counter("blab_vpn_connects_total", {{"country", loc->country}}).inc();
  m.gauge("blab_vpn_active_tunnels").set(static_cast<double>(active_.size()));
  return util::Status::ok_status();
}

util::Status VpnProvider::disconnect(const std::string& client_host) {
  obs::ScopedSpan span{&net_.simulator().tracer(), "net", "vpn_disconnect"};
  span.attr("client", client_host);
  if (active_.erase(client_host) == 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            client_host + " has no active tunnel");
  }
  obs::MetricsRegistry& m = net_.simulator().metrics();
  m.counter("blab_vpn_disconnects_total").inc();
  m.gauge("blab_vpn_active_tunnels").set(static_cast<double>(active_.size()));
  return net_.set_gateway(client_host, "");
}

std::string VpnProvider::active_location(const std::string& client_host) const {
  const auto it = active_.find(client_host);
  return it == active_.end() ? std::string{} : it->second;
}

}  // namespace blab::net
