#include "net/link.hpp"

#include <algorithm>
#include <cassert>

namespace blab::net {

Duration serialization_time(std::size_t bytes, double mbps) {
  if (mbps <= 0.0) return Duration::max();
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
  return Duration::seconds(seconds);
}

Link::Link(std::string host_a, std::string host_b, LinkSpec spec,
           std::string label)
    : host_a_{std::move(host_a)},
      host_b_{std::move(host_b)},
      spec_{spec},
      label_{std::move(label)} {
  assert(host_a_ != host_b_);
}

bool Link::connects(const std::string& x, const std::string& y) const {
  return (x == host_a_ && y == host_b_) || (x == host_b_ && y == host_a_);
}

std::string Link::peer_of(const std::string& x) const {
  if (x == host_a_) return host_b_;
  if (x == host_b_) return host_a_;
  return {};
}

double Link::bandwidth_from_mbps(const std::string& from) const {
  return from == host_a_ ? spec_.bandwidth_ab_mbps : spec_.bandwidth_ba_mbps;
}

Transit Link::send(const std::string& from, std::size_t bytes, TimePoint now,
                   util::Rng& rng) {
  Transit t;
  if (spec_.loss_rate > 0.0 && rng.chance(spec_.loss_rate)) {
    t.dropped = true;
    ++drops_;
    return t;
  }
  const bool ab = (from == host_a_);
  TimePoint& free_at = ab ? free_ab_ : free_ba_;
  (ab ? bytes_ab_ : bytes_ba_) += bytes;

  const Duration ser = serialization_time(bytes, bandwidth_from_mbps(from));
  Duration prop = spec_.latency;
  if (spec_.jitter_fraction > 0.0) {
    prop = prop * (1.0 + rng.uniform(-spec_.jitter_fraction,
                                     spec_.jitter_fraction));
  }
  // Queue behind in-flight serializations in this direction.
  const TimePoint start = std::max(free_at, now);
  const TimePoint tx_done = start + ser;
  free_at = tx_done;
  // The medium is ordered (L2CAP / TCP-like framing): jitter may stretch a
  // packet's latency but never lets it overtake an earlier one.
  TimePoint arrival = tx_done + prop;
  TimePoint& last = ab ? last_arrival_ab_ : last_arrival_ba_;
  if (arrival < last) arrival = last;
  last = arrival;
  t.delay = arrival - now;
  return t;
}

}  // namespace blab::net
