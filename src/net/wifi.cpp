#include "net/wifi.hpp"

namespace blab::net {

const char* ap_mode_name(ApMode mode) {
  switch (mode) {
    case ApMode::kNat: return "NAT";
    case ApMode::kBridge: return "Bridge";
  }
  return "?";
}

WifiAccessPoint::WifiAccessPoint(Network& net, std::string ap_host,
                                 std::string uplink_host, ApMode mode)
    : net_{net},
      ap_host_{std::move(ap_host)},
      uplink_host_{std::move(uplink_host)},
      mode_{mode} {
  net_.add_host(ap_host_);
  // When the AP runs on the uplink machine itself (the Pi is the AP, §3.2),
  // no wired uplink link is needed.
  if (ap_host_ != uplink_host_ &&
      net_.find_link(ap_host_, uplink_host_) == nullptr) {
    net_.add_link(ap_host_, uplink_host_,
                  LinkSpec::symmetric(Duration::micros(300), 1000.0));
  }
}

util::Status WifiAccessPoint::associate(const std::string& station_host,
                                        double phy_rate_mbps) {
  if (stations_.contains(station_host)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            station_host + " already associated");
  }
  if (net_.find_link(ap_host_, station_host, "wifi") == nullptr) {
    // Effective throughput of 802.11 is roughly half the PHY rate. Hop cost
    // 2: ADB and mirroring prefer USB while its port is powered (§3.3).
    LinkSpec spec;
    spec.latency = Duration::millis(2);
    spec.bandwidth_ab_mbps = phy_rate_mbps * 0.5;
    spec.bandwidth_ba_mbps = phy_rate_mbps * 0.5;
    spec.jitter_fraction = 0.3;
    spec.hop_cost = 2;
    net_.add_link(ap_host_, station_host, spec, "wifi");
  }
  stations_[station_host] = WifiStationInfo{station_host, true, phy_rate_mbps};
  return util::Status::ok_status();
}

util::Status WifiAccessPoint::disassociate(const std::string& station_host) {
  if (stations_.erase(station_host) == 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            station_host + " not associated");
  }
  return util::Status::ok_status();
}

bool WifiAccessPoint::is_associated(const std::string& station_host) const {
  return stations_.contains(station_host);
}

void WifiAccessPoint::forward_port(const std::string& station_host, int port) {
  forwards_.insert(station_host + ":" + std::to_string(port));
}

bool WifiAccessPoint::inbound_allowed(const std::string& station_host,
                                      int port) const {
  if (mode_ == ApMode::kBridge) return is_associated(station_host);
  return forwards_.contains(station_host + ":" + std::to_string(port));
}

const WifiStationInfo* WifiAccessPoint::station(const std::string& host) const {
  const auto it = stations_.find(host);
  return it == stations_.end() ? nullptr : &it->second;
}

}  // namespace blab::net
