#include "net/speedtest.hpp"

#include <atomic>

namespace blab::net {
namespace {

int next_probe_port() {
  static std::atomic<int> port{52000};
  return port++;
}

}  // namespace

SpeedTest::SpeedTest(Network& net, std::string client_host,
                     std::string server_host, SpeedTestConfig config)
    : net_{net},
      client_{std::move(client_host)},
      server_{std::move(server_host)},
      config_{config} {}

util::Result<SpeedTestResult> SpeedTest::run() {
  SpeedTestResult out;
  auto rtt = measure_rtt_ms();
  if (!rtt.ok()) return rtt.error();
  out.rtt_ms = rtt.value();

  auto down = measure_mbps(server_, client_, config_.download_bytes);
  if (!down.ok()) return down.error();
  out.download_mbps = down.value();

  auto up = measure_mbps(client_, server_, config_.upload_bytes);
  if (!up.ok()) return up.error();
  out.upload_mbps = up.value();
  return out;
}

util::Result<double> SpeedTest::measure_rtt_ms() {
  auto& sim = net_.simulator();
  const Address client_addr{client_, next_probe_port()};
  const Address server_addr{server_, next_probe_port()};

  // Echo server.
  net_.listen(server_addr, [this, client_addr, server_addr](const Message& m) {
    Message reply;
    reply.src = server_addr;
    reply.dst = client_addr;
    reply.tag = "ping.reply";
    reply.payload = m.payload;
    reply.wire_bytes = 64;
    (void)net_.send(std::move(reply));
  });

  double total_ms = 0.0;
  int received = 0;
  for (int i = 0; i < config_.ping_count; ++i) {
    util::TimePoint sent = sim.now();
    bool got = false;
    net_.listen(client_addr, [&](const Message&) { got = true; });
    Message probe;
    probe.src = client_addr;
    probe.dst = server_addr;
    probe.tag = "ping";
    probe.payload = std::to_string(i);
    probe.wire_bytes = 64;
    if (auto st = net_.send(std::move(probe)); !st.ok()) {
      net_.unlisten(client_addr);
      net_.unlisten(server_addr);
      return st.error();
    }
    const util::TimePoint deadline = sim.now() + Duration::seconds(5);
    while (!got && sim.now() < deadline) {
      if (!sim.step()) break;
    }
    if (got) {
      total_ms += (sim.now() - sent).to_millis();
      ++received;
    }
  }
  net_.unlisten(client_addr);
  net_.unlisten(server_addr);
  if (received == 0) {
    return util::make_error(util::ErrorCode::kTimeout, "all pings lost");
  }
  return total_ms / received;
}

util::Result<double> SpeedTest::measure_mbps(const std::string& from,
                                             const std::string& to,
                                             std::size_t bytes) {
  auto& sim = net_.simulator();
  bool finished = false;
  FlowResult flow_result;
  Flow flow{net_, from, to, bytes, FlowOptions{},
            [&](const FlowResult& r) {
              finished = true;
              flow_result = r;
            }};
  flow.start();
  const util::TimePoint deadline = sim.now() + config_.timeout;
  while (!finished && sim.now() < deadline) {
    if (!sim.step()) break;
  }
  if (!finished || !flow_result.success) {
    return util::make_error(util::ErrorCode::kTimeout,
                            "bulk transfer did not complete");
  }
  return flow_result.throughput_mbps;
}

}  // namespace blab::net
