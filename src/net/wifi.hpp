// WiFi access point hosted on the vantage-point controller (§3.2).
//
// The controller exposes an AP that test devices join; it can run in NAT or
// Bridge mode. ADB-over-WiFi automation and scrcpy mirroring traffic ride on
// these links, avoiding the USB charge current that corrupts power readings.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::net {

enum class ApMode { kNat, kBridge };

const char* ap_mode_name(ApMode mode);

struct WifiStationInfo {
  std::string host;
  bool associated = false;
  double phy_rate_mbps = 0.0;
};

class WifiAccessPoint {
 public:
  /// `ap_host` is the AP's own network identity; `uplink_host` is the wired
  /// side (the controller's LAN), connected with an Ethernet-class link.
  WifiAccessPoint(Network& net, std::string ap_host, std::string uplink_host,
                  ApMode mode = ApMode::kNat);

  const std::string& host() const { return ap_host_; }
  ApMode mode() const { return mode_; }
  void set_mode(ApMode mode) { mode_ = mode; }

  /// Associate a station (test device). The PHY rate defaults to a typical
  /// 802.11n single-stream rate; latency ~2 ms with light jitter.
  util::Status associate(const std::string& station_host,
                         double phy_rate_mbps = 72.0);
  util::Status disassociate(const std::string& station_host);
  bool is_associated(const std::string& station_host) const;
  std::size_t station_count() const { return stations_.size(); }

  /// In NAT mode, inbound connections to stations must have a forwarding
  /// entry; bridge mode is transparent.
  void forward_port(const std::string& station_host, int port);
  bool inbound_allowed(const std::string& station_host, int port) const;

  const WifiStationInfo* station(const std::string& host) const;

 private:
  Network& net_;
  std::string ap_host_;
  std::string uplink_host_;
  ApMode mode_;
  std::unordered_map<std::string, WifiStationInfo> stations_;
  std::unordered_set<std::string> forwards_;  // "host:port"
};

}  // namespace blab::net
