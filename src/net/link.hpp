// Point-to-point link model: latency, asymmetric bandwidth, jitter, loss,
// and per-direction serialization (a busy link queues subsequent packets).
#pragma once

#include <string>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace blab::net {

using util::Duration;
using util::TimePoint;

struct LinkSpec {
  Duration latency = Duration::millis(1);
  double bandwidth_ab_mbps = 100.0;  ///< a -> b direction
  double bandwidth_ba_mbps = 100.0;  ///< b -> a direction
  double jitter_fraction = 0.0;      ///< +/- fraction of latency, uniform
  double loss_rate = 0.0;            ///< probability a packet is dropped
  /// Routing cost: paths minimize total hop cost, so a slow direct link
  /// (Bluetooth, cost 3) loses to a two-hop WiFi path (cost 2).
  int hop_cost = 1;

  static LinkSpec symmetric(Duration latency, double mbps) {
    LinkSpec spec;
    spec.latency = latency;
    spec.bandwidth_ab_mbps = mbps;
    spec.bandwidth_ba_mbps = mbps;
    return spec;
  }
};

/// Directed transfer outcome computed by the link.
struct Transit {
  bool dropped = false;
  Duration delay = Duration::zero();  ///< queueing + serialization + latency
};

class Link {
 public:
  Link(std::string host_a, std::string host_b, LinkSpec spec,
       std::string label = {});

  const std::string& host_a() const { return host_a_; }
  const std::string& host_b() const { return host_b_; }
  /// Medium label ("usb", "wifi", "bt", ...) distinguishing parallel links
  /// between the same host pair.
  const std::string& label() const { return label_; }
  const LinkSpec& spec() const { return spec_; }
  void set_spec(const LinkSpec& spec) { spec_ = spec; }

  /// Disabled links carry no traffic and are invisible to routing (e.g. a
  /// USB port whose power was cut with uhubctl).
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  bool connects(const std::string& x, const std::string& y) const;
  /// The host on the other end, or empty if `x` is not an endpoint.
  std::string peer_of(const std::string& x) const;

  /// Compute the delivery delay for `bytes` sent from `from` at time `now`.
  /// Updates the directional queue so back-to-back sends serialize.
  Transit send(const std::string& from, std::size_t bytes, TimePoint now,
               util::Rng& rng);

  double bandwidth_from_mbps(const std::string& from) const;

  std::uint64_t bytes_ab() const { return bytes_ab_; }
  std::uint64_t bytes_ba() const { return bytes_ba_; }
  std::uint64_t drops() const { return drops_; }

 private:
  std::string host_a_;
  std::string host_b_;
  LinkSpec spec_;
  std::string label_;
  bool enabled_ = true;
  TimePoint free_ab_ = TimePoint::epoch();
  TimePoint free_ba_ = TimePoint::epoch();
  TimePoint last_arrival_ab_ = TimePoint::epoch();
  TimePoint last_arrival_ba_ = TimePoint::epoch();
  std::uint64_t bytes_ab_ = 0;
  std::uint64_t bytes_ba_ = 0;
  std::uint64_t drops_ = 0;
};

/// Serialization time of `bytes` at `mbps` megabits per second.
Duration serialization_time(std::size_t bytes, double mbps);

}  // namespace blab::net
