// Network graph: hosts, links, message routing and delivery.
//
// Messages route over the shortest hop path (BFS); each hop adds the link's
// queueing + serialization + propagation delay. Per-host byte counters feed
// the paper's traffic accounting (§4.2: 32 MB upload per ~7 min mirroring
// session). A host may be forced to route via a gateway — that is how VPN
// tunnels are modeled (§4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace blab::obs {
class Counter;
}  // namespace blab::obs

namespace blab::net {

struct Message {
  Address src;
  Address dst;
  std::string tag;      ///< protocol discriminator, e.g. "ssh.exec"
  std::string payload;  ///< protocol body (opaque to the network)
  std::size_t wire_bytes = 0;  ///< size on the wire; defaults to payload size
  std::uint64_t id = 0;

  std::size_t size() const {
    return wire_bytes > 0 ? wire_bytes : payload.size() + 64;  // 64B header
  }
};

using MessageHandler = std::function<void(const Message&)>;

struct HostStats {
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t msgs_tx = 0;
  std::uint64_t msgs_rx = 0;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim, std::uint64_t seed = 42);

  sim::Simulator& simulator() { return sim_; }

  void add_host(const std::string& name);
  bool has_host(const std::string& name) const;
  Link& add_link(const std::string& a, const std::string& b,
                 const LinkSpec& spec, const std::string& label = {});
  /// First link between a and b; with a non-empty label, the label must
  /// match (parallel media between the same host pair are distinct links).
  Link* find_link(const std::string& a, const std::string& b,
                  const std::string& label = {});

  /// Bind a handler to an address; replaces any previous binding.
  void listen(const Address& addr, MessageHandler handler);
  void unlisten(const Address& addr);
  bool is_listening(const Address& addr) const;

  /// Route and deliver asynchronously. Fails fast when no path or no
  /// listener exists; per-packet loss surfaces as a silent drop, like UDP.
  util::Status send(Message msg);

  /// Force all traffic from `host` through `gateway` (VPN-style). Pass an
  /// empty gateway to restore direct routing.
  util::Status set_gateway(const std::string& host, const std::string& gateway);
  std::string gateway_of(const std::string& host) const;

  /// Shortest path (list of hosts, inclusive) or empty when unreachable.
  std::vector<std::string> path(const std::string& from,
                                const std::string& to) const;
  /// One-way propagation + serialization delay estimate for `bytes` along the
  /// current path, without mutating link queues.
  util::Result<Duration> path_delay(const std::string& from,
                                    const std::string& to,
                                    std::size_t bytes) const;
  /// Min bandwidth along the routed path, in Mbps, in the from->to direction.
  util::Result<double> path_bandwidth_mbps(const std::string& from,
                                           const std::string& to) const;

  const HostStats& stats(const std::string& host) const;
  void reset_stats();

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  /// Lowest-hop-cost enabled link between adjacent hosts.
  Link* best_link(const std::string& from, const std::string& to) const;
  std::vector<std::string> bfs_path(const std::string& from,
                                    const std::string& to) const;
  std::vector<std::string> routed_path(const std::string& from,
                                       const std::string& to) const;

  sim::Simulator& sim_;
  util::Rng rng_;
  std::unordered_map<std::string, std::vector<std::size_t>> adjacency_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<Address, MessageHandler> listeners_;
  std::unordered_map<std::string, std::string> gateways_;
  mutable std::unordered_map<std::string, HostStats> stats_;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  /// Registry instruments (sim_.metrics()), cached at construction.
  struct Metrics {
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* bytes_delivered = nullptr;
  };
  Metrics metrics_;
};

}  // namespace blab::net
