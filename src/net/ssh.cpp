#include "net/ssh.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace blab::net {
namespace {

constexpr char kExecTag[] = "ssh.exec";
constexpr char kReplyTag[] = "ssh.reply";
constexpr char kDeniedTag[] = "ssh.denied";

int next_session_port_global() {
  static std::atomic<int> port{30000};
  return port++;
}

}  // namespace

SshKeyPair SshKeyPair::generate(const std::string& owner) {
  // Stable, collision-resistant-enough token standing in for key material.
  const std::uint64_t h = util::fnv1a("ssh-ed25519/" + owner);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return SshKeyPair{owner, "ssh-ed25519 AAAA" + std::string{buf} + " " + owner};
}

std::string SshKeyPair::fingerprint() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "SHA256:%016llx",
                static_cast<unsigned long long>(util::fnv1a(public_key)));
  return buf;
}

SshServer::SshServer(Network& net, std::string host, int port)
    : net_{net}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const Message& m) { on_message(m); });
}

SshServer::~SshServer() { net_.unlisten(addr_); }

void SshServer::authorize_key(const std::string& public_key) {
  authorized_keys_.insert(public_key);
}

void SshServer::revoke_key(const std::string& public_key) {
  authorized_keys_.erase(public_key);
}

bool SshServer::key_authorized(const std::string& public_key) const {
  return authorized_keys_.contains(public_key);
}

void SshServer::whitelist_source(const std::string& host) {
  whitelist_.insert(host);
}

void SshServer::clear_whitelist() { whitelist_.clear(); }

void SshServer::set_command_handler(SshCommandHandler handler) {
  handler_ = std::move(handler);
}

void SshServer::on_message(const Message& msg) {
  if (msg.tag != kExecTag) return;
  auto deny = [&](const std::string& reason) {
    Message reply;
    reply.src = addr_;
    reply.dst = msg.src;
    reply.tag = kDeniedTag;
    reply.payload = reason;
    reply.wire_bytes = 128;
    (void)net_.send(std::move(reply));
  };
  if (!whitelist_.empty() && !whitelist_.contains(msg.src.host)) {
    ++stats_.rejected_ip;
    BLAB_WARN("ssh", "rejected connection from non-whitelisted "
                         << msg.src.host);
    deny("source not whitelisted");
    return;
  }
  // Payload framing: "<public_key>\x1f<command>".
  const auto sep = msg.payload.find('\x1f');
  if (sep == std::string::npos) {
    deny("malformed exec request");
    return;
  }
  const std::string key = msg.payload.substr(0, sep);
  const std::string command = msg.payload.substr(sep + 1);
  if (!authorized_keys_.contains(key)) {
    ++stats_.rejected_key;
    BLAB_WARN("ssh", "rejected unauthorized key from " << msg.src.host);
    deny("publickey denied");
    return;
  }
  ++stats_.accepted;
  SshCommandResult result;
  if (handler_) {
    result = handler_(command);
  } else {
    result = SshCommandResult{127, "no command handler"};
  }
  Message reply;
  reply.src = addr_;
  reply.dst = msg.src;
  reply.tag = kReplyTag;
  reply.payload = std::to_string(result.exit_code) + "\x1f" + result.output;
  reply.wire_bytes = 128 + result.output.size();
  (void)net_.send(std::move(reply));
}

SshClient::SshClient(Network& net, std::string host, SshKeyPair key)
    : net_{net}, host_{std::move(host)}, key_{std::move(key)} {
  net_.add_host(host_);
}

void SshClient::exec(const Address& server, const std::string& command,
                     ExecCallback cb, Duration timeout) {
  auto& sim = net_.simulator();
  const Address session{host_, next_session_port_global()};
  // Shared completion flag so the timeout and the reply race safely.
  auto done = std::make_shared<bool>(false);

  net_.listen(session, [this, session, cb, done](const Message& m) {
    if (*done) return;
    *done = true;
    net_.unlisten(session);
    if (m.tag == kDeniedTag) {
      cb(util::make_error(util::ErrorCode::kPermissionDenied, m.payload));
      return;
    }
    const auto sep = m.payload.find('\x1f');
    SshCommandResult result;
    if (sep != std::string::npos) {
      result.exit_code = std::stoi(m.payload.substr(0, sep));
      result.output = m.payload.substr(sep + 1);
    }
    cb(result);
  });

  Message msg;
  msg.src = session;
  msg.dst = server;
  msg.tag = kExecTag;
  msg.payload = key_.public_key + "\x1f" + command;
  msg.wire_bytes = 256 + command.size();
  if (auto st = net_.send(std::move(msg)); !st.ok()) {
    *done = true;
    net_.unlisten(session);
    cb(st.error());
    return;
  }
  sim.schedule_after(timeout, [this, session, cb, done] {
    if (*done) return;
    *done = true;
    net_.unlisten(session);
    cb(util::make_error(util::ErrorCode::kTimeout, "ssh exec timed out"));
  }, "ssh.timeout");
}

util::Result<SshCommandResult> SshClient::exec_sync(const Address& server,
                                                    const std::string& command,
                                                    Duration timeout) {
  auto& sim = net_.simulator();
  bool finished = false;
  util::Result<SshCommandResult> out =
      util::make_error(util::ErrorCode::kUnknown, "not run");
  exec(server, command,
       [&](util::Result<SshCommandResult> r) {
         finished = true;
         out = std::move(r);
       },
       timeout);
  const util::TimePoint deadline = sim.now() + timeout + Duration::seconds(1);
  while (!finished && sim.now() < deadline) {
    if (!sim.step()) break;
  }
  if (!finished) {
    return util::make_error(util::ErrorCode::kTimeout, "ssh exec_sync stalled");
  }
  return out;
}

}  // namespace blab::net
