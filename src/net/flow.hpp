// Reliable bulk-transfer flow (simplified TCP).
//
// A Flow moves `total_bytes` from src to dst over the routed path using
// windowed, ack-clocked segments: slow-start doubling per RTT, cumulative
// acks, and a fixed retransmission timeout for lossy paths. Throughput
// converges to the bottleneck link bandwidth; the speedtest (Table 2) and the
// mirroring upload accounting both ride on this.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.hpp"

namespace blab::net {

struct FlowOptions {
  std::size_t segment_bytes = 64 * 1024;
  std::size_t init_cwnd_segments = 10;
  std::size_t max_cwnd_segments = 4096;
  Duration rto = Duration::millis(400);
  int max_retries = 20;
};

struct FlowResult {
  bool success = false;
  std::size_t bytes = 0;
  Duration elapsed = Duration::zero();
  double throughput_mbps = 0.0;
  int retransmissions = 0;
};

class Flow {
 public:
  using Callback = std::function<void(const FlowResult&)>;

  Flow(Network& net, std::string src_host, std::string dst_host,
       std::size_t total_bytes, FlowOptions options, Callback on_done);
  ~Flow();
  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  void start();
  bool done() const { return done_; }
  const FlowResult& result() const { return result_; }

  /// Closed-form estimate (no simulation): slow-start rounds + drain time.
  static Duration estimate(std::size_t bytes, Duration rtt, double mbps,
                           const FlowOptions& options = {});

 private:
  void pump();
  void on_ack(std::size_t acked_segments);
  void arm_rto();
  void on_rto();
  void finish(bool success);

  Network& net_;
  std::string src_host_;
  std::string dst_host_;
  std::size_t total_bytes_;
  FlowOptions options_;
  Callback on_done_;

  Address src_addr_;
  Address dst_addr_;
  std::size_t total_segments_ = 0;
  std::size_t next_to_send_ = 0;   ///< sender: next unsent segment index
  std::size_t acked_ = 0;          ///< sender: cumulative acked segments
  std::size_t received_ = 0;       ///< receiver: contiguous segments received
  double cwnd_ = 0.0;              ///< congestion window, segments
  int retries_ = 0;
  int retransmissions_ = 0;
  sim::EventId rto_event_ = sim::kInvalidEvent;
  util::TimePoint started_;
  bool started_flag_ = false;
  bool done_ = false;
  FlowResult result_;
  /// Detached net/flow span covering start -> finish; the transfer spans
  /// many sim events, so it cannot live on the tracer's LIFO stack.
  std::uint64_t span_ = 0;
};

}  // namespace blab::net
