// SSH channel between the access server and vantage-point controllers (§3.1,
// §3.4): public-key authentication, source-IP whitelisting, remote command
// execution with replies.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace blab::net {

/// An Ed25519-flavoured keypair; the "key material" is a stable token derived
/// from the owner name, which is all authentication needs in simulation.
struct SshKeyPair {
  std::string owner;
  std::string public_key;

  static SshKeyPair generate(const std::string& owner);
  std::string fingerprint() const;
};

struct SshExecStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_key = 0;
  std::uint64_t rejected_ip = 0;
};

/// Command handler: takes the command line, returns (exit_code, output).
struct SshCommandResult {
  int exit_code = 0;
  std::string output;
};
using SshCommandHandler = std::function<SshCommandResult(const std::string&)>;

class SshServer {
 public:
  SshServer(Network& net, std::string host, int port = kSshPort);
  ~SshServer();
  SshServer(const SshServer&) = delete;
  SshServer& operator=(const SshServer&) = delete;

  const Address& address() const { return addr_; }

  void authorize_key(const std::string& public_key);
  void revoke_key(const std::string& public_key);
  bool key_authorized(const std::string& public_key) const;

  /// IP lockdown: when the whitelist is non-empty, only whitelisted source
  /// hosts may connect (§3.1 "IP lockdown, security groups").
  void whitelist_source(const std::string& host);
  void clear_whitelist();

  void set_command_handler(SshCommandHandler handler);
  const SshExecStats& stats() const { return stats_; }

 private:
  void on_message(const Message& msg);

  Network& net_;
  Address addr_;
  std::unordered_set<std::string> authorized_keys_;
  std::unordered_set<std::string> whitelist_;
  SshCommandHandler handler_;
  SshExecStats stats_;
};

class SshClient {
 public:
  SshClient(Network& net, std::string host, SshKeyPair key);

  const SshKeyPair& key() const { return key_; }

  /// Asynchronous remote execution.
  using ExecCallback = std::function<void(util::Result<SshCommandResult>)>;
  void exec(const Address& server, const std::string& command,
            ExecCallback cb, Duration timeout = Duration::seconds(30));

  /// Synchronous helper: pumps the simulator until the reply (or timeout).
  util::Result<SshCommandResult> exec_sync(
      const Address& server, const std::string& command,
      Duration timeout = Duration::seconds(30));

 private:
  Network& net_;
  std::string host_;
  SshKeyPair key_;
};

}  // namespace blab::net
