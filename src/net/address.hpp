// Network addressing for the simulated BatteryLab deployment.
//
// Hosts are named ("controller.node1", "access-server", "vpn.tokyo"); an
// Address pairs a host with a port, mirroring the paper's fixed port layout
// (2222 SSH, 8080 GUI backend, 6081 noVNC).
#pragma once

#include <compare>
#include <functional>
#include <string>

namespace blab::net {

/// Well-known BatteryLab ports (§3.4).
inline constexpr int kSshPort = 2222;
inline constexpr int kGuiBackendPort = 8080;
inline constexpr int kNoVncPort = 6081;
inline constexpr int kHttpsPort = 443;

struct Address {
  std::string host;
  int port = 0;

  auto operator<=>(const Address&) const = default;
  std::string str() const { return host + ":" + std::to_string(port); }
};

}  // namespace blab::net

namespace std {
template <>
struct hash<blab::net::Address> {
  size_t operator()(const blab::net::Address& a) const noexcept {
    return std::hash<std::string>{}(a.host) * 31 ^
           std::hash<int>{}(a.port);
  }
};
}  // namespace std
