// Bluetooth adapter and pairing model (§3.3).
//
// The controller pairs with test devices over Bluetooth for two purposes:
// ADB-over-Bluetooth (rooted devices only) and the virtual HID keyboard that
// automates unrooted devices on the cellular network.
#pragma once

#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::net {

enum class BtProfile { kSerial, kHid };

struct BtPairing {
  std::string peer;
  BtProfile profile = BtProfile::kSerial;
  bool connected = false;
};

class BluetoothAdapter {
 public:
  BluetoothAdapter(Network& net, std::string host);

  const std::string& host() const { return host_; }

  /// Pair with a peer adapter over a given profile. Creates the (slow) radio
  /// link on first pairing: ~1.5 Mbps, 8 ms latency — BR/EDR class numbers.
  util::Status pair(BluetoothAdapter& peer, BtProfile profile);
  util::Status unpair(const std::string& peer_host);
  bool paired_with(const std::string& peer_host) const;
  const BtPairing* pairing(const std::string& peer_host) const;
  std::size_t pairing_count() const { return pairings_.size(); }

 private:
  Network& net_;
  std::string host_;
  std::unordered_map<std::string, BtPairing> pairings_;
};

}  // namespace blab::net
