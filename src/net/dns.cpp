#include "net/dns.hpp"

#include "util/strings.hpp"

namespace blab::net {

DnsRegistry::DnsRegistry(std::string zone) : zone_{std::move(zone)} {}

util::Status DnsRegistry::register_node(const std::string& label,
                                        const std::string& host) {
  if (label.empty() || label.find('.') != std::string::npos) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad DNS label '" + label + "'");
  }
  if (records_.contains(label)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            label + "." + zone_ + " already registered");
  }
  records_[label] = host;
  return util::Status::ok_status();
}

util::Status DnsRegistry::deregister_node(const std::string& label) {
  if (records_.erase(label) == 0) {
    return util::make_error(util::ErrorCode::kNotFound,
                            label + "." + zone_ + " not registered");
  }
  return util::Status::ok_status();
}

util::Result<std::string> DnsRegistry::resolve(const std::string& fqdn) const {
  const std::string suffix = "." + zone_;
  if (!util::ends_with(fqdn, suffix)) {
    return util::make_error(util::ErrorCode::kNotFound,
                            fqdn + " outside zone " + zone_);
  }
  const std::string label = fqdn.substr(0, fqdn.size() - suffix.size());
  const auto it = records_.find(label);
  if (it == records_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, "NXDOMAIN " + fqdn);
  }
  return it->second;
}

bool DnsRegistry::wildcard_covers(const std::string& fqdn) const {
  const std::string suffix = "." + zone_;
  if (!util::ends_with(fqdn, suffix)) return false;
  const std::string label = fqdn.substr(0, fqdn.size() - suffix.size());
  // A wildcard covers exactly one label level.
  return !label.empty() && label.find('.') == std::string::npos;
}

std::vector<std::string> DnsRegistry::labels() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& [label, _] : records_) out.push_back(label);
  return out;
}

}  // namespace blab::net
