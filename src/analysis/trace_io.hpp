// Capture trace import/export.
//
// The access server "collects logs from the power meter which are made
// available for several days within the job's workspace" (§3.1). Captures
// serialize to the Monsoon PowerTool CSV dialect (time_s,current_mA,voltage)
// so external tooling can consume them, and round-trip back for offline
// analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "hw/power_monitor.hpp"
#include "store/chunked_capture.hpp"
#include "util/result.hpp"

namespace blab::analysis {

/// Write a capture as CSV. `stride` keeps every n-th sample (1 = all; a
/// 5-minute 5 kHz capture at stride 1 is 1.5 M rows).
util::Status write_capture_csv(const hw::Capture& capture,
                               const std::string& path,
                               std::size_t stride = 1);
void write_capture_csv(const hw::Capture& capture, std::ostream& os,
                       std::size_t stride = 1);

/// Parse a capture back. The sample rate is recovered from row timestamps;
/// malformed rows fail with kInvalidArgument.
util::Result<hw::Capture> read_capture_csv(const std::string& path);
util::Result<hw::Capture> read_capture_csv_stream(std::istream& is);

/// Summarize a capture in one line (for job logs).
std::string capture_summary(const hw::Capture& capture);

/// Chunked-format adapters: serialize a capture in the store's compressed
/// columnar format (lossless, ~2-3 bytes/sample vs ~22 bytes/row CSV).
/// Exports that already live in a CaptureStore can be written directly via
/// `ChunkedCapture::serialize()`; these helpers cover the file boundary.
util::Status write_capture_chunked(const hw::Capture& capture,
                                   const std::string& path);
void write_capture_chunked(const hw::Capture& capture, std::ostream& os);
util::Result<hw::Capture> read_capture_chunked(const std::string& path);
util::Result<hw::Capture> read_capture_chunked_stream(std::istream& is);

}  // namespace blab::analysis
