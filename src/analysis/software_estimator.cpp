#include "analysis/software_estimator.hpp"

#include <cmath>

namespace blab::analysis {
namespace {

constexpr std::size_t kDim = 4;

/// Solve A x = b for a symmetric positive-definite 4x4 system (Gaussian
/// elimination with partial pivoting). Returns false when singular.
bool solve4(std::array<std::array<double, kDim>, kDim> a,
            std::array<double, kDim> b, std::array<double, kDim>& x) {
  for (std::size_t col = 0; col < kDim; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < kDim; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-9) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < kDim; ++row) {
      const double f = a[row][col] / a[col][col];
      for (std::size_t k = col; k < kDim; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  for (std::size_t i = kDim; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < kDim; ++k) acc -= a[i][k] * x[k];
    x[i] = acc / a[i][i];
  }
  return true;
}

std::array<double, kDim> features(const ResourceSample& s) {
  return {1.0, s.cpu_util, s.screen_on, s.radio_active};
}

/// Mean measured current over the trace window [i·period, (i+1)·period).
double window_mean_ma(const hw::Capture& capture, const ResourceTrace& trace,
                      std::size_t i) {
  const double period_s = trace.period().to_seconds();
  const double offset_s =
      (trace.start() - capture.start()).to_seconds() +
      static_cast<double>(i) * period_s;
  const auto first = static_cast<std::size_t>(
      std::max(0.0, offset_s * capture.sample_hz()));
  auto last = static_cast<std::size_t>(
      std::max(0.0, (offset_s + period_s) * capture.sample_hz()));
  last = std::min(last, capture.sample_count());
  if (first >= last) return 0.0;
  double acc = 0.0;
  for (std::size_t k = first; k < last; ++k) acc += capture.samples_ma()[k];
  return acc / static_cast<double>(last - first);
}

}  // namespace

ResourceTrace::ResourceTrace(util::TimePoint t0, util::Duration period)
    : t0_{t0}, period_{period} {}

void ResourceTrace::add(const ResourceSample& sample) {
  samples_.push_back(sample);
}

ResourceTrace ResourceTrace::sample(const hw::Timeline& cpu_util,
                                    const hw::Timeline& screen_on,
                                    const hw::Timeline& radio_active,
                                    util::TimePoint t0, util::TimePoint t1,
                                    util::Duration period) {
  ResourceTrace trace{t0, period};
  for (util::TimePoint t = t0; t + period <= t1; t += period) {
    ResourceSample s;
    // Time-weighted means over the window: closer to what a polling agent
    // integrating /proc counters reports than point samples.
    s.cpu_util = cpu_util.mean(t, t + period);
    s.screen_on = screen_on.mean(t, t + period);
    s.radio_active = radio_active.mean(t, t + period);
    trace.add(s);
  }
  return trace;
}

util::Status SoftwareEstimator::calibrate(const hw::Capture& capture,
                                          const ResourceTrace& trace) {
  if (trace.size() < 8) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "calibration trace too short");
  }
  std::array<std::array<double, kDim>, kDim> xtx{};
  std::array<double, kDim> xty{};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto f = features(trace.samples()[i]);
    const double y = window_mean_ma(capture, trace, i);
    for (std::size_t r = 0; r < kDim; ++r) {
      xty[r] += f[r] * y;
      for (std::size_t c = 0; c < kDim; ++c) xtx[r][c] += f[r] * f[c];
    }
  }
  // Ridge term: calibration workloads routinely hold a counter constant
  // (screen always on), making the plain normal equations singular. A tiny
  // diagonal load keeps the fit well-posed without biasing predictions.
  const double lambda = 1e-3 * static_cast<double>(trace.size());
  for (std::size_t d = 1; d < kDim; ++d) xtx[d][d] += lambda;
  std::array<double, kDim> beta{};
  if (!solve4(xtx, xty, beta)) {
    return util::make_error(
        util::ErrorCode::kFailedPrecondition,
        "degenerate calibration workload (no counter variation)");
  }
  model_.beta = beta;
  double sse = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto f = features(trace.samples()[i]);
    double pred = 0.0;
    for (std::size_t k = 0; k < kDim; ++k) pred += beta[k] * f[k];
    const double err = pred - window_mean_ma(capture, trace, i);
    sse += err * err;
  }
  model_.training_rmse_ma = std::sqrt(sse / static_cast<double>(trace.size()));
  calibrated_ = true;
  return util::Status::ok_status();
}

util::Result<EstimateResult> SoftwareEstimator::estimate(
    const ResourceTrace& trace) const {
  if (!calibrated_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "estimator not calibrated (§1: only possible "
                            "for calibrated devices)");
  }
  EstimateResult out;
  out.per_sample_ma.reserve(trace.size());
  double acc = 0.0;
  for (const auto& s : trace.samples()) {
    const auto f = features(s);
    double pred = 0.0;
    for (std::size_t k = 0; k < kDim; ++k) pred += model_.beta[k] * f[k];
    pred = std::max(0.0, pred);
    out.per_sample_ma.push_back(pred);
    acc += pred;
  }
  if (!out.per_sample_ma.empty()) {
    out.mean_current_ma = acc / static_cast<double>(out.per_sample_ma.size());
  }
  const double hours = trace.period().to_seconds() *
                       static_cast<double>(trace.size()) / 3600.0;
  out.charge_mah = out.mean_current_ma * hours;
  return out;
}

double SoftwareEstimator::relative_error(const EstimateResult& estimate,
                                         const hw::Capture& truth) {
  const double real = truth.mean_current_ma();
  if (real <= 0.0) return 0.0;
  return std::fabs(estimate.mean_current_ma - real) / real;
}

}  // namespace blab::analysis
