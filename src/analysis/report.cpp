#include "analysis/report.hpp"

#include <ostream>

#include "util/strings.hpp"

namespace blab::analysis {

CdfFigure::CdfFigure(std::string title, std::string x_label)
    : title_{std::move(title)}, x_label_{std::move(x_label)} {}

void CdfFigure::add_series(std::string label, util::Cdf cdf) {
  series_.push_back({std::move(label), std::move(cdf)});
}

bool CdfFigure::add_series_from_store(std::string label,
                                      store::CaptureStore& store,
                                      const store::CaptureId& id) {
  auto cdf = store.percentiles(id);
  if (!cdf.ok()) return false;
  series_.push_back({std::move(label), std::move(cdf.value())});
  return true;
}

std::vector<double> CdfFigure::default_quantiles() {
  return {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99};
}

void CdfFigure::print(std::ostream& os,
                      const std::vector<double>& quantiles) const {
  os << "== " << title_ << " ==\n";
  std::vector<std::string> header{"quantile"};
  for (const auto& s : series_) header.push_back(s.label);
  util::TextTable table{header};
  for (double q : quantiles) {
    std::vector<std::string> row{"p" + util::format_double(q * 100.0, 0)};
    for (const auto& s : series_) {
      row.push_back(s.cdf.empty() ? "-"
                                  : util::format_double(s.cdf.quantile(q), 1));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row{"mean"};
  for (const auto& s : series_) {
    mean_row.push_back(util::format_double(s.cdf.mean(), 1));
  }
  table.add_row(std::move(mean_row));
  table.print(os);
  os << "(" << x_label_ << ")\n";
}

bool CdfFigure::write_csv(const std::string& path, std::size_t points) const {
  util::CsvWriter csv{path};
  if (!csv.ok()) return false;
  csv.write_row({"series", x_label_, "cdf"});
  for (const auto& s : series_) {
    for (const auto& [value, prob] : s.cdf.curve(points)) {
      csv.write_row({s.label, util::format_double(value, 4),
                     util::format_double(prob, 4)});
    }
  }
  return true;
}

BarFigure::BarFigure(std::string title, std::string y_label)
    : title_{std::move(title)}, y_label_{std::move(y_label)} {}

void BarFigure::add_bar(std::string label, double mean, double stddev) {
  bars_.push_back({std::move(label), mean, stddev});
}

void BarFigure::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  util::TextTable table{{"series", y_label_, "stddev"}};
  for (const auto& b : bars_) {
    table.add_row({b.label, util::format_double(b.mean, 2),
                   util::format_double(b.stddev, 2)});
  }
  table.print(os);
}

bool BarFigure::write_csv(const std::string& path) const {
  util::CsvWriter csv{path};
  if (!csv.ok()) return false;
  csv.write_row({"series", y_label_, "stddev"});
  for (const auto& b : bars_) {
    csv.write_row({b.label, util::format_double(b.mean, 4),
                   util::format_double(b.stddev, 4)});
  }
  return true;
}

TableReport::TableReport(std::string title, std::vector<std::string> header)
    : title_{std::move(title)}, header_{std::move(header)} {}

void TableReport::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TableReport::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  util::TextTable table{header_};
  for (const auto& row : rows_) table.add_row(row);
  table.print(os);
}

bool TableReport::write_csv(const std::string& path) const {
  util::CsvWriter csv{path};
  if (!csv.ok()) return false;
  csv.write_row(header_);
  for (const auto& row : rows_) csv.write_row(row);
  return true;
}

}  // namespace blab::analysis
