// Software-based battery estimation — the baseline BatteryLab argues against.
//
// §1: startups "offer software-based battery measurements where device
// resource monitoring (screen, CPU, network, etc.) are used to infer the
// power consumed by few devices for which a calibration was possible."
//
// This implements that approach: a linear utilization-counter model
//
//   current_ma ≈ β0 + β1·cpu_util + β2·screen_on + β3·radio_active
//
// whose coefficients are fit (ordinary least squares) against ONE
// hardware-measured calibration capture, then applied to later workloads
// from resource counters alone. The bench compares its error against the
// hardware path — quantifying why BatteryLab wants real power meters.
#pragma once

#include <array>
#include <vector>

#include "hw/power_monitor.hpp"
#include "hw/timeline.hpp"
#include "util/result.hpp"

namespace blab::analysis {

/// One resource-counter observation (what a software agent can sample).
struct ResourceSample {
  double cpu_util = 0.0;     ///< [0,1]
  double screen_on = 0.0;    ///< 0/1
  double radio_active = 0.0; ///< 0/1
};

/// Resource counters sampled over a window, aligned with a capture.
class ResourceTrace {
 public:
  ResourceTrace(util::TimePoint t0, util::Duration period);

  void add(const ResourceSample& sample);
  /// Sample device state timelines over [t0, t1).
  static ResourceTrace sample(const hw::Timeline& cpu_util,
                              const hw::Timeline& screen_on,
                              const hw::Timeline& radio_active,
                              util::TimePoint t0, util::TimePoint t1,
                              util::Duration period);

  util::TimePoint start() const { return t0_; }
  util::Duration period() const { return period_; }
  const std::vector<ResourceSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }

 private:
  util::TimePoint t0_;
  util::Duration period_;
  std::vector<ResourceSample> samples_;
};

struct EstimatorModel {
  // β0 (idle) + β1·cpu + β2·screen + β3·radio, all in mA.
  std::array<double, 4> beta{0.0, 0.0, 0.0, 0.0};
  double training_rmse_ma = 0.0;
};

struct EstimateResult {
  double mean_current_ma = 0.0;
  double charge_mah = 0.0;
  std::vector<double> per_sample_ma;
};

class SoftwareEstimator {
 public:
  /// Fit the model on a hardware capture + aligned resource trace
  /// ("devices for which a calibration was possible", §1). Fails when the
  /// trace is too short or degenerate (singular normal equations).
  util::Status calibrate(const hw::Capture& capture,
                         const ResourceTrace& trace);
  bool calibrated() const { return calibrated_; }
  const EstimatorModel& model() const { return model_; }

  /// Estimate a workload's power from resource counters alone.
  util::Result<EstimateResult> estimate(const ResourceTrace& trace) const;

  /// Convenience: relative error of an estimate vs a hardware capture.
  static double relative_error(const EstimateResult& estimate,
                               const hw::Capture& truth);

 private:
  EstimatorModel model_;
  bool calibrated_ = false;
};

}  // namespace blab::analysis
