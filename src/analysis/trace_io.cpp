#include "analysis/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::analysis {

void write_capture_csv(const hw::Capture& capture, std::ostream& os,
                       std::size_t stride) {
  if (stride == 0) stride = 1;
  os << "time_s,current_mA,voltage\n";
  if (stride > 1) {
    // Decimated export: record the effective rate explicitly. Rounded row
    // timestamps cannot recover it exactly (0.000732421875 s prints as
    // 0.000732), and without the marker a re-import would silently claim a
    // slightly wrong rate — which skews charge/energy integrals.
    os << "# effective_hz="
       << util::format_double(capture.sample_hz() / static_cast<double>(stride),
                              6)
       << " source_hz=" << util::format_double(capture.sample_hz(), 6)
       << " stride=" << stride << '\n';
  }
  const auto& samples = capture.samples_ma();
  const double dt = 1.0 / capture.sample_hz();
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    os << util::format_double(static_cast<double>(i) * dt, 6) << ','
       << util::format_double(samples[i], 3) << ','
       << util::format_double(capture.voltage(), 3) << '\n';
  }
}

util::Status write_capture_csv(const hw::Capture& capture,
                               const std::string& path, std::size_t stride) {
  std::ofstream out{path};
  if (!out) {
    return util::make_error(util::ErrorCode::kUnavailable,
                            "cannot open " + path + " for writing");
  }
  write_capture_csv(capture, out, stride);
  return util::Status::ok_status();
}

util::Result<hw::Capture> read_capture_csv_stream(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      util::trim(line) != "time_s,current_mA,voltage") {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "missing Monsoon CSV header");
  }
  std::vector<float> samples;
  double voltage = 0.0;
  double first_t = 0.0;
  double second_t = 0.0;
  double prev_t = 0.0;
  double marker_hz = 0.0;
  std::size_t row = 0;
  while (std::getline(is, line)) {
    const std::string trimmed{util::trim(line)};
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      // Metadata comment; pick up the effective-rate marker if present.
      for (const auto& token : util::split(trimmed.substr(1), ' ')) {
        if (util::starts_with(token, "effective_hz=")) {
          const auto hz = util::parse_double(token.substr(13));
          if (!hz.has_value()) {
            return util::make_error(util::ErrorCode::kInvalidArgument,
                                    "bad effective_hz marker: " + trimmed);
          }
          marker_hz = *hz;
        }
      }
      continue;
    }
    const auto fields = util::split(line, ',');
    if (fields.size() != 3) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "bad row " + std::to_string(row) + ": " + line);
    }
    // Strict full-match parses: "1.5abc" or an out-of-range literal is a
    // malformed row, not a best-effort 1.5. parse_double also rejects the
    // "nan"/"inf" spellings, which keeps the non-finite error reserved for
    // values that overflow to infinity after arithmetic elsewhere.
    const auto t_parsed = util::parse_double(util::trim(fields[0]));
    const auto current_parsed = util::parse_double(util::trim(fields[1]));
    const auto v_parsed = util::parse_double(util::trim(fields[2]));
    if (!t_parsed.has_value() || !current_parsed.has_value() ||
        !v_parsed.has_value()) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "unparseable row " + std::to_string(row));
    }
    const double t = *t_parsed;
    if (row > 0 && t <= prev_t) {
      return util::make_error(
          util::ErrorCode::kInvalidArgument,
          "out-of-order timestamp in row " + std::to_string(row));
    }
    samples.push_back(static_cast<float>(*current_parsed));
    voltage = *v_parsed;
    if (row == 0) first_t = t;
    if (row == 1) second_t = t;
    prev_t = t;
    ++row;
  }
  if (samples.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "capture has no samples");
  }
  const double dt = row > 1 ? second_t - first_t : 1.0 / 5000.0;
  if (dt <= 0.0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "non-monotonic timestamps");
  }
  if (marker_hz < 0.0 || !std::isfinite(marker_hz)) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad effective_hz marker");
  }
  const double hz = marker_hz > 0.0 ? marker_hz : 1.0 / dt;
  return hw::Capture{util::TimePoint::epoch(), hz, voltage,
                     std::move(samples)};
}

util::Result<hw::Capture> read_capture_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "cannot open " + path);
  }
  return read_capture_csv_stream(in);
}

void write_capture_chunked(const hw::Capture& capture, std::ostream& os) {
  const std::string bytes = store::ChunkedCapture::encode(capture).serialize();
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

util::Status write_capture_chunked(const hw::Capture& capture,
                                   const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    return util::make_error(util::ErrorCode::kUnavailable,
                            "cannot open " + path + " for writing");
  }
  write_capture_chunked(capture, out);
  return util::Status::ok_status();
}

util::Result<hw::Capture> read_capture_chunked_stream(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string bytes = buffer.str();
  auto chunked = store::ChunkedCapture::deserialize(bytes);
  if (!chunked.ok()) return chunked.error();
  return chunked.value().decode();
}

util::Result<hw::Capture> read_capture_chunked(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "cannot open " + path);
  }
  return read_capture_chunked_stream(in);
}

std::string capture_summary(const hw::Capture& capture) {
  std::ostringstream os;
  os << capture.sample_count() << " samples @ "
     << util::format_double(capture.sample_hz(), 0) << " Hz, "
     << util::format_double(capture.duration().to_seconds(), 1) << " s, mean "
     << util::format_double(capture.mean_current_ma(), 1) << " mA, "
     << util::format_double(capture.charge_mah(), 3) << " mAh @ "
     << util::format_double(capture.voltage(), 2) << " V";
  return os.str();
}

}  // namespace blab::analysis
