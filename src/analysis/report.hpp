// Figure/table emitters for the benchmark harnesses.
//
// Every bench binary prints the same rows or series its paper counterpart
// shows and writes a CSV next to the binary, via these helpers.
#pragma once

#include <string>
#include <vector>

#include "store/capture_store.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace blab::analysis {

/// A named empirical distribution, one line in a CDF figure.
struct CdfSeries {
  std::string label;
  util::Cdf cdf;
};

/// Print a CDF figure as a quantile table (rows: quantiles, cols: series)
/// and optionally dump the full curves to CSV.
class CdfFigure {
 public:
  CdfFigure(std::string title, std::string x_label);

  void add_series(std::string label, util::Cdf cdf);
  /// Series from an archived capture's downsample tiers (never decodes raw
  /// chunks); false if the capture is gone from the store.
  bool add_series_from_store(std::string label, store::CaptureStore& store,
                             const store::CaptureId& id);
  const std::vector<CdfSeries>& series() const { return series_; }

  /// Console rendering with the given quantiles (default deciles + extremes).
  void print(std::ostream& os,
             const std::vector<double>& quantiles = default_quantiles()) const;
  /// CSV: columns label,value,cum_prob with `points` per series.
  bool write_csv(const std::string& path, std::size_t points = 200) const;

  static std::vector<double> default_quantiles();

 private:
  std::string title_;
  std::string x_label_;
  std::vector<CdfSeries> series_;
};

/// A bar figure: label -> mean with stddev error bar (Figs. 3 and 6).
class BarFigure {
 public:
  BarFigure(std::string title, std::string y_label);

  void add_bar(std::string label, double mean, double stddev);

  void print(std::ostream& os) const;
  bool write_csv(const std::string& path) const;

 private:
  struct Bar {
    std::string label;
    double mean;
    double stddev;
  };
  std::string title_;
  std::string y_label_;
  std::vector<Bar> bars_;
};

/// Plain table (Table 2).
class TableReport {
 public:
  TableReport(std::string title, std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;
  bool write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blab::analysis
