#include "controller/monsoon_poller.hpp"

namespace blab::controller {
namespace {
constexpr char kServiceName[] = "monsoon-poller";
}  // namespace

MonsoonPoller::MonsoonPoller(ResourceModel& resources,
                             hw::PowerMonitor& monitor)
    : resources_{resources}, monitor_{monitor} {}

MonsoonPoller::~MonsoonPoller() {
  if (active_) resources_.unregister_service(kServiceName);
}

util::Status MonsoonPoller::start() {
  if (active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "poller already active");
  }
  if (auto st = monitor_.start_capture(); !st.ok()) return st;
  ServiceDemand demand;
  demand.cpu = kPollCpuDemand;
  demand.ram_mb = kPollRamMb;
  demand.cpu_jitter = 0.04;
  resources_.register_service(kServiceName, demand);
  active_ = true;
  return util::Status::ok_status();
}

util::Result<hw::Capture> MonsoonPoller::stop() {
  if (!active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "poller not active");
  }
  active_ = false;
  resources_.unregister_service(kServiceName);
  return monitor_.stop_capture();
}

}  // namespace blab::controller
