// Raspberry Pi 3B+ resource model.
//
// The controller's CPU and memory budgets matter: §4.2 reports ~25% CPU from
// Monsoon polling alone, a ~75% median with mirroring active (10% of samples
// above 95%), and <20% of the 1 GB RAM used. Services register demands here;
// the model tracks utilization timelines for Fig. 5 and the memory numbers.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "hw/timeline.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace blab::controller {

struct PiSpec {
  int cores = 4;
  double ram_mb = 1024.0;  // Raspberry Pi 3B+
  double base_cpu = 0.02;  ///< OS housekeeping
  double base_ram_mb = 95.0;
};

/// A registered service demand. `cpu` is fraction of total CPU [0,1];
/// `dynamic_cpu` (optional) is re-evaluated on every sample tick, which is
/// how the mirroring pipeline's load follows the mirrored screen content.
struct ServiceDemand {
  double cpu = 0.0;
  double ram_mb = 0.0;
  double cpu_jitter = 0.0;  ///< relative sigma applied at sampling time
  std::function<double()> dynamic_cpu;  ///< overrides `cpu` when set
  /// Occasional load spike (e.g. full-frame VNC updates): with this
  /// probability per sample, `spike_cpu` is added on top.
  double spike_probability = 0.0;
  double spike_cpu = 0.0;
};

class ResourceModel {
 public:
  ResourceModel(sim::Simulator& sim, util::Rng rng, PiSpec spec = {});

  const PiSpec& spec() const { return spec_; }

  void register_service(const std::string& name, ServiceDemand demand);
  void unregister_service(const std::string& name);
  bool has_service(const std::string& name) const;
  std::size_t service_count() const { return services_.size(); }

  /// Instantaneous totals (clamped to capacity).
  double cpu_utilization();
  double ram_used_mb() const;
  double ram_fraction() const { return ram_used_mb() / spec_.ram_mb; }

  /// Start/stop periodic sampling of CPU into the utilization timeline
  /// (drives Fig. 5's CDFs).
  void start_sampling(util::Duration period = util::Duration::millis(200));
  void stop_sampling();
  const hw::Timeline& cpu_timeline() const { return cpu_timeline_; }

 private:
  void sample();

  sim::Simulator& sim_;
  util::Rng rng_;
  PiSpec spec_;
  std::unordered_map<std::string, ServiceDemand> services_;
  hw::Timeline cpu_timeline_;
  sim::PeriodicTask sampler_;
};

}  // namespace blab::controller
