// Vantage-point controller (Raspberry Pi 3B+, §3.2).
//
// Owns the Pi's resource model, the ADB client, the Bluetooth adapter (for
// HID-keyboard automation), the SSH server the access server connects to,
// and the registry of test devices attached to this vantage point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/resources.hpp"
#include "device/adb.hpp"
#include "device/device.hpp"
#include "net/bluetooth.hpp"
#include "net/network.hpp"
#include "net/ssh.hpp"
#include "util/result.hpp"

namespace blab::controller {

class Controller {
 public:
  Controller(sim::Simulator& sim, net::Network& net, std::string host,
             std::uint64_t seed);

  const std::string& host() const { return host_; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }

  ResourceModel& resources() { return resources_; }
  device::AdbClient& adb() { return adb_; }
  net::BluetoothAdapter& bluetooth() { return bt_; }
  net::SshServer& ssh_server() { return ssh_; }

  /// Attach a test device to this vantage point (non-owning).
  util::Status register_device(device::AndroidDevice* device);
  util::Status deregister_device(const std::string& serial);
  device::AndroidDevice* find_device(const std::string& serial);
  device::AndroidDevice* find_device_by_host(const std::string& host);
  std::vector<std::string> device_serials() const;
  std::size_t device_count() const { return devices_.size(); }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  std::string host_;
  ResourceModel resources_;
  device::AdbClient adb_;
  net::BluetoothAdapter bt_;
  net::SshServer ssh_;
  std::vector<device::AndroidDevice*> devices_;
};

}  // namespace blab::controller
