#include "controller/resources.hpp"

#include <algorithm>

namespace blab::controller {

ResourceModel::ResourceModel(sim::Simulator& sim, util::Rng rng, PiSpec spec)
    : sim_{sim},
      rng_{std::move(rng)},
      spec_{spec},
      sampler_{sim, util::Duration::millis(200), [this] { sample(); }} {}

void ResourceModel::register_service(const std::string& name,
                                     ServiceDemand demand) {
  services_[name] = std::move(demand);
}

void ResourceModel::unregister_service(const std::string& name) {
  services_.erase(name);
}

bool ResourceModel::has_service(const std::string& name) const {
  return services_.contains(name);
}

double ResourceModel::cpu_utilization() {
  double total = spec_.base_cpu;
  for (auto& [_, svc] : services_) {
    double cpu = svc.dynamic_cpu ? svc.dynamic_cpu() : svc.cpu;
    if (svc.cpu_jitter > 0.0) {
      cpu = rng_.normal(cpu, cpu * svc.cpu_jitter);
    }
    if (svc.spike_probability > 0.0 && rng_.chance(svc.spike_probability)) {
      cpu += svc.spike_cpu;
    }
    total += std::max(0.0, cpu);
  }
  return std::clamp(total, 0.0, 1.0);
}

double ResourceModel::ram_used_mb() const {
  double total = spec_.base_ram_mb;
  for (const auto& [_, svc] : services_) total += svc.ram_mb;
  return std::min(total, spec_.ram_mb);
}

void ResourceModel::start_sampling(util::Duration period) {
  sampler_.set_period(period);
  sampler_.start_after(period);
}

void ResourceModel::stop_sampling() { sampler_.stop(); }

void ResourceModel::sample() {
  cpu_timeline_.set(sim_.now(), cpu_utilization());
}

}  // namespace blab::controller
