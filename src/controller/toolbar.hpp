// GUI toolbar (§3.2, Figure 1(c)).
//
// "The toolbar occupies the top part of the GUI, and implements a convenient
// subset of BatteryLab's API... BatteryLab allows an experimenter to control
// the presence or not of the toolbar on the webpage to be shared with a test
// participant." Buttons map one-to-one onto REST endpoints of the GUI
// backend; clicking issues the AJAX call.
#pragma once

#include <string>
#include <vector>

#include "controller/rest_backend.hpp"
#include "util/result.hpp"

namespace blab::controller {

struct ToolbarButton {
  std::string label;     ///< what the GUI shows, e.g. "Start monitor"
  std::string endpoint;  ///< backend endpoint it calls
};

class Toolbar {
 public:
  explicit Toolbar(RestBackend& backend);

  /// The §3.2 "convenient subset" of Table 1.
  const std::vector<ToolbarButton>& buttons() const { return buttons_; }
  bool has_button(const std::string& label) const;

  /// Click a button; `query` carries its parameter fields. Fails for
  /// unknown buttons or when the backend lacks the endpoint.
  util::Result<std::string> click(const std::string& label,
                                  const std::string& query = {});

  std::uint64_t clicks() const { return clicks_; }

 private:
  RestBackend& backend_;
  std::vector<ToolbarButton> buttons_;
  std::uint64_t clicks_ = 0;
};

}  // namespace blab::controller
