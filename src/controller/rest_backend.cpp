#include "controller/rest_backend.hpp"

#include <cctype>

#include "obs/aggregate.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::controller {

RestBackend::RestBackend(net::Network& net, std::string host, int port)
    : net_{net}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const net::Message& m) { on_message(m); });
  requests_counter_ =
      &net_.simulator().metrics().counter("blab_rest_requests_total");
  // Built-in observability surface: GET /metrics serves the deployment's
  // registry (Prometheus text by default, "?format=json" for the JSON
  // snapshot). Registered here so every backend exposes it without the
  // vantage point having to wire anything.
  register_endpoint("metrics", [this](const std::string& query) {
    auto snap = net_.simulator().metrics().snapshot();
    const auto params = parse_query(query);
    const auto format = params.find("format");
    if (format != params.end() && format->second == "json") {
      return util::Result<std::string>{obs::encode_json(snap)};
    }
    return util::Result<std::string>{obs::encode_prometheus(snap)};
  });
  // Trace surface: GET /traces lists every finished trace; "?job_id=<id>"
  // (alias "?job=") or "?trace_id=<n>" (alias "?trace=") returns that trace
  // as Chrome trace-event JSON, loadable directly in Perfetto. Exemplars in
  // /metrics name the same trace ids, so an outlier histogram bucket
  // resolves to a concrete span tree.
  register_endpoint("traces", [this](const std::string& query) {
    obs::Tracer& tracer = net_.simulator().tracer();
    const auto params = parse_query(query);
    const auto pick = [&params](const char* canonical, const char* alias) {
      auto it = params.find(canonical);
      return it != params.end() ? it : params.find(alias);
    };
    const auto job = pick("job_id", "job");
    const auto tid = pick("trace_id", "trace");
    if (job == params.end() && tid == params.end()) {
      return util::Result<std::string>{obs::encode_trace_list_json(tracer)};
    }
    std::uint64_t trace = 0;
    if (tid != params.end()) {
      const auto parsed = util::parse_u64(tid->second);
      if (!parsed.has_value()) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kInvalidArgument,
            tid->first + " must be a decimal integer")};
      }
      trace = *parsed;
    } else {
      trace = tracer.find_trace_by_root_attr("job", job->second);
    }
    const auto spans = tracer.spans_in(trace);
    if (trace == 0 || spans.empty()) {
      const std::string wanted =
          job != params.end() ? "job " + job->second : "trace " + tid->second;
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kNotFound, "no trace for " + wanted)};
    }
    return util::Result<std::string>{obs::encode_trace_json(spans)};
  });
  // Analytics surface: GET /flame folds the whole span buffer into a merged
  // flame tree plus per-job critical paths (obs/aggregate). "?trace=<n>"
  // (alias "?trace_id=") restricts the fold to one trace.
  register_endpoint("flame", [this](const std::string& query) {
    obs::Tracer& tracer = net_.simulator().tracer();
    const auto params = parse_query(query);
    auto tid = params.find("trace");
    if (tid == params.end()) tid = params.find("trace_id");
    if (tid != params.end()) {
      const auto parsed = util::parse_u64(tid->second);
      if (!parsed.has_value()) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kInvalidArgument,
            tid->first + " must be a decimal integer")};
      }
      const auto spans = tracer.spans_in(*parsed);
      if (spans.empty()) {
        return util::Result<std::string>{util::make_error(
            util::ErrorCode::kNotFound, "no trace for trace " + tid->second)};
      }
      return util::Result<std::string>{obs::encode_flame_json(
          obs::build_flame(spans), obs::critical_paths(spans))};
    }
    const auto& spans = tracer.spans();
    return util::Result<std::string>{obs::encode_flame_json(
        obs::build_flame(spans), obs::critical_paths(spans))};
  });
}

RestBackend::~RestBackend() { net_.unlisten(addr_); }

void RestBackend::register_endpoint(const std::string& name,
                                    RestHandler handler) {
  handlers_[name] = std::move(handler);
}

bool RestBackend::has_endpoint(const std::string& name) const {
  return handlers_.contains(name);
}

std::vector<std::string> RestBackend::endpoints() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [name, _] : handlers_) out.push_back(name);
  return out;
}

util::Result<std::string> RestBackend::call(const std::string& name,
                                            const std::string& query) {
  const auto it = handlers_.find(name);
  if (it == handlers_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no endpoint /" + name);
  }
  ++requests_;
  requests_counter_->inc();
  return it->second(query);
}

void RestBackend::on_message(const net::Message& msg) {
  if (msg.tag != "rest.call") return;
  auto request = parse_request_line(msg.payload);
  auto result = request.ok()
                    ? call(request.value().name, request.value().query)
                    : util::Result<std::string>{request.error()};

  net::Message reply;
  reply.src = addr_;
  reply.dst = msg.src;
  reply.tag = "rest.reply";
  if (result.ok()) {
    reply.payload = "200\x1f" + result.value();
  } else {
    reply.payload = "400\x1f" + result.error().str();
  }
  reply.wire_bytes = 128 + reply.payload.size();
  (void)net_.send(std::move(reply));
}

namespace {

bool endpoint_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decode one query token. Invalid or truncated escapes are kept
/// literally; '+' decodes to a space.
std::string decode_token(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (c == '+') {
      out.push_back(' ');
      continue;
    }
    // Only decode when both hex digits are present and valid; a trailing
    // "%4" or "%zz" must not read past the token or decode to garbage.
    if (c == '%' && i + 2 < token.size()) {
      const int hi = hex_digit(token[i + 1]);
      const int lo = hex_digit(token[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

util::Result<RestRequest> parse_request_line(std::string_view payload) {
  if (payload.size() > kMaxRequestBytes) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "request exceeds " +
                                std::to_string(kMaxRequestBytes) + " bytes");
  }
  const auto qmark = payload.find('?');
  const std::string_view name =
      qmark == std::string_view::npos ? payload : payload.substr(0, qmark);
  if (name.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "empty endpoint name");
  }
  if (name.size() > kMaxEndpointBytes) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "endpoint name exceeds " +
                                std::to_string(kMaxEndpointBytes) + " bytes");
  }
  for (const char c : name) {
    if (!endpoint_char(c)) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "endpoint name has invalid characters");
    }
  }
  RestRequest req;
  req.name.assign(name);
  if (qmark != std::string_view::npos) req.query.assign(payload.substr(qmark + 1));
  return req;
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  if (query.empty()) return out;
  for (const auto& pair : util::split(query, '&')) {
    if (out.size() >= kMaxQueryParams) break;
    const auto eq = pair.find('=');
    const std::string key =
        decode_token(eq == std::string::npos ? pair : pair.substr(0, eq));
    if (key.empty()) continue;
    std::string value =
        eq == std::string::npos ? "" : decode_token(pair.substr(eq + 1));
    out.try_emplace(key, std::move(value));  // first occurrence wins
  }
  return out;
}

}  // namespace blab::controller
