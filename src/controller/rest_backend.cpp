#include "controller/rest_backend.hpp"

#include <cstdlib>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace blab::controller {

RestBackend::RestBackend(net::Network& net, std::string host, int port)
    : net_{net}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const net::Message& m) { on_message(m); });
  requests_counter_ =
      &net_.simulator().metrics().counter("blab_rest_requests_total");
  // Built-in observability surface: GET /metrics serves the deployment's
  // registry (Prometheus text by default, "?format=json" for the JSON
  // snapshot). Registered here so every backend exposes it without the
  // vantage point having to wire anything.
  register_endpoint("metrics", [this](const std::string& query) {
    auto snap = net_.simulator().metrics().snapshot();
    const auto params = parse_query(query);
    const auto format = params.find("format");
    if (format != params.end() && format->second == "json") {
      return util::Result<std::string>{obs::encode_json(snap)};
    }
    return util::Result<std::string>{obs::encode_prometheus(snap)};
  });
  // Trace surface: GET /traces lists every finished trace; "?job_id=<id>"
  // (or "?trace_id=<n>") returns that trace as Chrome trace-event JSON,
  // loadable directly in Perfetto. Exemplars in /metrics name the same trace
  // ids, so an outlier histogram bucket resolves to a concrete span tree.
  register_endpoint("traces", [this](const std::string& query) {
    obs::Tracer& tracer = net_.simulator().tracer();
    const auto params = parse_query(query);
    const auto job = params.find("job_id");
    const auto tid = params.find("trace_id");
    if (job == params.end() && tid == params.end()) {
      return util::Result<std::string>{obs::encode_trace_list_json(tracer)};
    }
    std::uint64_t trace = 0;
    if (tid != params.end()) {
      trace = std::strtoull(tid->second.c_str(), nullptr, 10);
    } else {
      trace = tracer.find_trace_by_root_attr("job", job->second);
    }
    const auto spans = tracer.spans_in(trace);
    if (trace == 0 || spans.empty()) {
      const std::string wanted =
          job != params.end() ? "job " + job->second : "trace " + tid->second;
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kNotFound, "no trace for " + wanted)};
    }
    return util::Result<std::string>{obs::encode_trace_json(spans)};
  });
}

RestBackend::~RestBackend() { net_.unlisten(addr_); }

void RestBackend::register_endpoint(const std::string& name,
                                    RestHandler handler) {
  handlers_[name] = std::move(handler);
}

bool RestBackend::has_endpoint(const std::string& name) const {
  return handlers_.contains(name);
}

std::vector<std::string> RestBackend::endpoints() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [name, _] : handlers_) out.push_back(name);
  return out;
}

util::Result<std::string> RestBackend::call(const std::string& name,
                                            const std::string& query) {
  const auto it = handlers_.find(name);
  if (it == handlers_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no endpoint /" + name);
  }
  ++requests_;
  requests_counter_->inc();
  return it->second(query);
}

void RestBackend::on_message(const net::Message& msg) {
  if (msg.tag != "rest.call") return;
  // Payload: "<endpoint>?<query>".
  const auto qmark = msg.payload.find('?');
  const std::string name = msg.payload.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : msg.payload.substr(qmark + 1);
  auto result = call(name, query);

  net::Message reply;
  reply.src = addr_;
  reply.dst = msg.src;
  reply.tag = "rest.reply";
  if (result.ok()) {
    reply.payload = "200\x1f" + result.value();
  } else {
    reply.payload = "400\x1f" + result.error().str();
  }
  reply.wire_bytes = 128 + reply.payload.size();
  (void)net_.send(std::move(reply));
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  if (query.empty()) return out;
  for (const auto& pair : util::split(query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      out[pair] = "";
    } else {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  return out;
}

}  // namespace blab::controller
