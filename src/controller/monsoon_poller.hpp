// Monsoon readout service.
//
// The controller pulls battery samples from the Monsoon at the highest
// frequency over its USB protocol; §4.2 attributes a constant ~25% Pi CPU to
// this polling alone. The poller registers that demand while a capture is
// active and relays capture control to the instrument.
#pragma once

#include <string>

#include "controller/resources.hpp"
#include "hw/power_monitor.hpp"
#include "util/result.hpp"

namespace blab::controller {

class MonsoonPoller {
 public:
  MonsoonPoller(ResourceModel& resources, hw::PowerMonitor& monitor);
  ~MonsoonPoller();
  MonsoonPoller(const MonsoonPoller&) = delete;
  MonsoonPoller& operator=(const MonsoonPoller&) = delete;

  /// Begin a capture: arms the monitor and registers the polling CPU load.
  util::Status start();
  /// Stop and return the capture.
  util::Result<hw::Capture> stop();
  bool active() const { return active_; }

  static constexpr double kPollCpuDemand = 0.24;
  static constexpr double kPollRamMb = 18.0;

 private:
  ResourceModel& resources_;
  hw::PowerMonitor& monitor_;
  bool active_ = false;
};

}  // namespace blab::controller
