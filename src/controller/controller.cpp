#include "controller/controller.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace blab::controller {

Controller::Controller(sim::Simulator& sim, net::Network& net,
                       std::string host, std::uint64_t seed)
    : sim_{sim},
      net_{net},
      host_{std::move(host)},
      resources_{sim, util::Rng{seed}},
      adb_{net, host_},
      bt_{net, host_},
      ssh_{net, host_, net::kSshPort} {
  // The GUI backend and noVNC proxy idle cheaply until mirroring starts.
  ServiceDemand backend;
  backend.cpu = 0.01;
  backend.ram_mb = 22.0;
  resources_.register_service("gui-backend", backend);
}

util::Status Controller::register_device(device::AndroidDevice* device) {
  if (device == nullptr) {
    return util::make_error(util::ErrorCode::kInvalidArgument, "null device");
  }
  if (find_device(device->serial()) != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "serial " + device->serial() + " already attached");
  }
  devices_.push_back(device);
  BLAB_INFO("controller", host_ << " attached device " << device->serial());
  return util::Status::ok_status();
}

util::Status Controller::deregister_device(const std::string& serial) {
  const auto it =
      std::find_if(devices_.begin(), devices_.end(), [&](const auto* d) {
        return d->serial() == serial;
      });
  if (it == devices_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "no device with serial " + serial);
  }
  devices_.erase(it);
  return util::Status::ok_status();
}

device::AndroidDevice* Controller::find_device(const std::string& serial) {
  for (auto* d : devices_) {
    if (d->serial() == serial) return d;
  }
  return nullptr;
}

device::AndroidDevice* Controller::find_device_by_host(
    const std::string& host) {
  for (auto* d : devices_) {
    if (d->host() == host) return d;
  }
  return nullptr;
}

std::vector<std::string> Controller::device_serials() const {
  std::vector<std::string> out;
  out.reserve(devices_.size());
  for (const auto* d : devices_) out.push_back(d->serial());
  return out;
}

}  // namespace blab::controller
