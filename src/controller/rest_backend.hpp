// GUI backend (§3.2).
//
// The noVNC GUI's toolbar talks to the controller through AJAX calls against
// internal REST endpoints on port 8080. Endpoints are registered by the
// vantage point (they wrap the BatteryLab API of Table 1) and invoked by
// name with a query string.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::obs {
class Counter;
}  // namespace blab::obs

namespace blab::controller {

/// Handler receives the query string (e.g. "device_id=J7DUO1") and returns
/// the response body or an error.
using RestHandler =
    std::function<util::Result<std::string>(const std::string& query)>;

/// Parsed "<endpoint>?<query>" request line.
struct RestRequest {
  std::string name;   ///< endpoint, validated against kEndpointChars
  std::string query;  ///< raw query string (still percent-encoded)
};

/// Wire-facing limits. Requests beyond these are rejected up front so a
/// hostile client cannot make the backend buffer or iterate unboundedly.
inline constexpr std::size_t kMaxRequestBytes = 8192;
inline constexpr std::size_t kMaxEndpointBytes = 128;
inline constexpr std::size_t kMaxQueryParams = 64;

class RestBackend {
 public:
  RestBackend(net::Network& net, std::string host,
              int port = net::kGuiBackendPort);
  ~RestBackend();
  RestBackend(const RestBackend&) = delete;
  RestBackend& operator=(const RestBackend&) = delete;

  const net::Address& address() const { return addr_; }

  void register_endpoint(const std::string& name, RestHandler handler);
  bool has_endpoint(const std::string& name) const;
  std::vector<std::string> endpoints() const;

  /// Invoke an endpoint in-process (used by unit tests and by the toolbar
  /// model when rendered on the controller itself).
  util::Result<std::string> call(const std::string& name,
                                 const std::string& query);

  std::uint64_t requests_served() const { return requests_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& net_;
  net::Address addr_;
  std::map<std::string, RestHandler> handlers_;
  std::uint64_t requests_ = 0;
  obs::Counter* requests_counter_ = nullptr;
};

/// Parse the request line "<endpoint>?<query>" arriving on the wire.
/// Typed errors on: oversize payload, empty endpoint, endpoint characters
/// outside [A-Za-z0-9_.-]. The query is returned verbatim (handlers decode
/// it with parse_query).
util::Result<RestRequest> parse_request_line(std::string_view payload);

/// Parse "k1=v1&k2=v2" into a map. Defined behavior on hostile input:
///  - percent-escapes are decoded ("%41" -> "A", "+" -> space); an invalid
///    or truncated escape ("%zz", trailing "%4") is kept literally rather
///    than read past the end of the token;
///  - duplicate keys: the FIRST occurrence wins (parameter-pollution guard —
///    an attacker appending "&user=admin" cannot override the first value);
///  - empty keys ("=v", "&&") are dropped; a key without '=' maps to "";
///  - at most kMaxQueryParams pairs are kept, the rest are ignored.
std::map<std::string, std::string> parse_query(const std::string& query);

}  // namespace blab::controller
