#include "controller/toolbar.hpp"

namespace blab::controller {

Toolbar::Toolbar(RestBackend& backend) : backend_{backend} {
  buttons_ = {
      {"Devices", "list_devices"},
      {"Mirror", "device_mirroring"},
      {"Monitor power", "power_monitor"},
      {"Set voltage", "set_voltage"},
      {"Start monitor", "start_monitor"},
      {"Stop monitor", "stop_monitor"},
      {"Battery switch", "batt_switch"},
      {"ADB", "execute_adb"},
  };
}

bool Toolbar::has_button(const std::string& label) const {
  for (const auto& b : buttons_) {
    if (b.label == label) return true;
  }
  return false;
}

util::Result<std::string> Toolbar::click(const std::string& label,
                                         const std::string& query) {
  for (const auto& b : buttons_) {
    if (b.label != label) continue;
    ++clicks_;
    return backend_.call(b.endpoint, query);
  }
  return util::make_error(util::ErrorCode::kNotFound,
                          "no toolbar button '" + label + "'");
}

}  // namespace blab::controller
