#include "device/process.hpp"

#include <algorithm>

namespace blab::device {

Pid ProcessTable::spawn(std::string name, double base_demand,
                        double jitter_fraction, bool foreground) {
  Process p;
  p.pid = ids_.next();
  p.name = std::move(name);
  p.base_demand = base_demand;
  p.jitter_fraction = jitter_fraction;
  p.current_demand = base_demand;
  p.foreground = foreground;
  processes_.push_back(std::move(p));
  return processes_.back().pid;
}

bool ProcessTable::kill(Pid pid) {
  const auto it = std::find_if(processes_.begin(), processes_.end(),
                               [&](const Process& p) { return p.pid == pid; });
  if (it == processes_.end()) return false;
  processes_.erase(it);
  return true;
}

int ProcessTable::kill_by_name(const std::string& name) {
  const auto before = processes_.size();
  std::erase_if(processes_, [&](const Process& p) { return p.name == name; });
  return static_cast<int>(before - processes_.size());
}

Process* ProcessTable::find(Pid pid) {
  for (auto& p : processes_) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

const Process* ProcessTable::find(Pid pid) const {
  for (const auto& p : processes_) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

Process* ProcessTable::find_by_name(const std::string& name) {
  for (auto& p : processes_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double ProcessTable::total_demand() const {
  double total = 0.0;
  for (const auto& p : processes_) total += p.current_demand;
  return std::min(total, 1.0);
}

void ProcessTable::redraw(util::Rng& rng) {
  for (auto& p : processes_) {
    if (p.jitter_fraction <= 0.0) {
      p.current_demand = p.base_demand;
      continue;
    }
    const double drawn =
        rng.normal(p.base_demand, p.base_demand * p.jitter_fraction);
    p.current_demand = std::clamp(drawn, 0.0, 1.0);
  }
}

bool ProcessTable::set_base_demand(Pid pid, double demand) {
  Process* p = find(pid);
  if (p == nullptr) return false;
  p->base_demand = std::clamp(demand, 0.0, 1.0);
  p->current_demand = p->base_demand;
  return true;
}

}  // namespace blab::device
