#include "device/cpu.hpp"

#include <algorithm>
#include <cmath>

namespace blab::device {

void CpuModel::set_utilization(util::TimePoint t, double util) {
  timeline_.set(t, std::clamp(util, 0.0, 1.0));
}

double CpuModel::current_ma(const PowerProfile& profile, double util) {
  util = std::clamp(util, 0.0, 1.0);
  return profile.cpu_full_load_ma * std::pow(util, profile.cpu_load_exponent);
}

}  // namespace blab::device
