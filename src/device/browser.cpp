#include "device/browser.hpp"

#include <algorithm>

#include "device/android.hpp"
#include "device/device.hpp"
#include "util/logging.hpp"

namespace blab::device {
namespace {

/// A scroll burst holds elevated CPU and screen change for this long —
/// fling animation plus lazy-content decode dominate the 2 s gap between
/// the workload's scroll gestures.
constexpr auto kScrollBurstDuration = util::Duration::millis(1600);

BrowserProfile make_profile(const char* name, const char* package,
                            double idle, double load, double scroll,
                            bool ads_blocked, bool lite, bool first_run) {
  BrowserProfile p;
  p.name = name;
  p.package = package;
  p.idle_cpu = idle;
  p.load_cpu = load;
  p.scroll_cpu = scroll;
  p.blocks_ads = ads_blocked;
  p.supports_lite_pages = lite;
  p.needs_first_run_setup = first_run;
  return p;
}

}  // namespace

const BrowserProfile& BrowserProfile::chrome() {
  static const BrowserProfile p = make_profile(
      "Chrome", "com.android.chrome", 0.080, 0.330, 0.190, false, true, true);
  return p;
}

const BrowserProfile& BrowserProfile::firefox() {
  static const BrowserProfile p = make_profile(
      "Firefox", "org.mozilla.firefox", 0.100, 0.385, 0.215, false, false,
      true);
  return p;
}

const BrowserProfile& BrowserProfile::edge() {
  static const BrowserProfile p = make_profile(
      "Edge", "com.microsoft.emmx", 0.075, 0.300, 0.165, false, false, true);
  return p;
}

const BrowserProfile& BrowserProfile::brave() {
  static const BrowserProfile p = make_profile(
      "Brave", "com.brave.browser", 0.050, 0.205, 0.105, true, false, true);
  return p;
}

const std::vector<BrowserProfile>& BrowserProfile::all() {
  static const std::vector<BrowserProfile> v = {chrome(), firefox(), edge(),
                                                brave()};
  return v;
}

const BrowserProfile* BrowserProfile::find(const std::string& name) {
  for (const auto& p : all()) {
    if (p.name == name || p.package == name) return &p;
  }
  return nullptr;
}

Browser::Browser(AndroidDevice& device, BrowserProfile profile,
                 const WebCatalog& catalog, std::string web_host)
    : App{device, profile.package},
      profile_{std::move(profile)},
      catalog_{catalog},
      web_host_{std::move(web_host)} {}

Radio& Browser::data_radio() {
  // WiFi when up, else cellular — mirrors Android's default route choice.
  if (device_.wifi().enabled()) return device_.wifi();
  return device_.cellular();
}

void Browser::launch() {
  if (running_) return;
  running_ = true;
  pid_ = device_.processes().spawn(package_, profile_.idle_cpu,
                                   profile_.cpu_jitter, true);
  device_.screen().set_content_change_rate(0.05);
  device_.recompute_power();
  if (!profile_.needs_first_run_setup) first_run_complete_ = true;
  device_.os().log(profile_.name, first_run_complete_
                                      ? "launched"
                                      : "launched (first-run pending)");
}

void Browser::stop() {
  if (!running_) return;
  if (loading_) {
    flow_.reset();  // abandon the in-flight fetch so no late callback fires
    fetch_finished(0, true);
  }
  running_ = false;
  device_.processes().kill(pid_);
  pid_ = Pid{};
  url_bar_.clear();
  device_.recompute_power();
}

void Browser::clear_state() {
  first_run_complete_ = !profile_.needs_first_run_setup;
  first_run_taps_ = 0;
  url_bar_.clear();
  pages_loaded_ = 0;
  bytes_fetched_ = 0;
  page_load_times_.clear();
}

void Browser::on_text(const std::string& text) { url_bar_ += text; }

void Browser::on_key(int keycode) {
  if (keycode == kKeycodeEnter && !url_bar_.empty()) {
    const std::string url = url_bar_;
    url_bar_.clear();
    (void)navigate(url);
  } else if (keycode == kKeycodeDpadDown) {
    on_swipe(-600);
  } else if (keycode == kKeycodeDpadUp) {
    on_swipe(600);
  }
}

void Browser::on_tap(int x, int y) {
  (void)x;
  (void)y;
  if (!first_run_complete_) {
    // Two taps walk the welcome flow: accept terms, then skip sign-in.
    if (++first_run_taps_ >= 2) {
      first_run_complete_ = true;
      device_.os().log(profile_.name, "first-run setup complete");
    }
  }
}

bool Browser::lite_pages_active() const {
  if (!profile_.supports_lite_pages) return false;
  const std::string setting =
      device_.os().get_setting("secure", "chrome_lite_pages");
  if (setting == "0") return false;
  if (setting == "1") return true;
  return WebCatalog::lite_pages_default_on(device_.network_region());
}

void Browser::set_phase_demand(double demand) {
  if (pid_.valid()) device_.processes().set_base_demand(pid_, demand);
  device_.recompute_power();
}

double Browser::estimate_throughput_mbps() const {
  auto bw = device_.network().path_bandwidth_mbps(web_host_, device_.host());
  return bw.ok() ? std::min(bw.value(), 30.0) : 5.0;
}

util::Status Browser::navigate(const std::string& url) {
  if (!running_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            profile_.name + " not running");
  }
  if (!first_run_complete_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "first-run setup not complete");
  }
  if (loading_) {
    return util::make_error(util::ErrorCode::kUnavailable,
                            "navigation already in progress");
  }
  const WebPage* page = catalog_.find(url);
  WebPage fallback{url, 2000 * 1024, 600 * 1024};
  if (page == nullptr) page = &fallback;
  const std::size_t bytes = WebCatalog::page_bytes(
      *page, device_.network_region(), profile_.blocks_ads,
      lite_pages_active());

  loading_ = true;
  load_started_ = device_.simulator().now();
  device_.os().log(profile_.name, "navigate " + url);
  device_.screen().set_content_change_rate(0.50);
  set_phase_demand(profile_.load_cpu);
  begin_fetch(bytes, true);
  return util::Status::ok_status();
}

void Browser::begin_fetch(std::size_t bytes, bool is_page_load) {
  active_radio_mbps_ = estimate_throughput_mbps();
  data_radio().begin_activity(active_radio_mbps_);
  device_.recompute_power();
  flow_ = std::make_unique<net::Flow>(
      device_.network(), web_host_, device_.host(), bytes, net::FlowOptions{},
      [this, bytes, is_page_load](const net::FlowResult&) {
        fetch_finished(bytes, is_page_load);
      });
  flow_->start();
}

void Browser::fetch_finished(std::size_t bytes, bool is_page_load) {
  data_radio().end_activity(active_radio_mbps_);
  active_radio_mbps_ = 0.0;
  bytes_fetched_ += bytes;
  if (is_page_load) {
    loading_ = false;
    ++pages_loaded_;
    page_load_times_.push_back(device_.simulator().now() - load_started_);
    device_.os().log(profile_.name,
                     "page loaded (" + std::to_string(bytes) + " bytes)");
    // Render settle: network is done but layout, image decode and JS keep
    // the engine busy for a while before the page goes quiet.
    device_.screen().set_content_change_rate(0.35);
    set_phase_demand(profile_.load_cpu * 0.55);
    device_.simulator().schedule_after(
        util::Duration::millis(2500),
        [this] {
          if (!running_ || loading_ || scroll_bursts_ > 0) return;
          device_.screen().set_content_change_rate(0.12);
          set_phase_demand(profile_.idle_cpu);
        },
        "browser.render-settle");
  }
  device_.recompute_power();
}

void Browser::on_swipe(int dy) {
  if (!running_ || dy == 0) return;
  ++scroll_bursts_;
  device_.screen().set_content_change_rate(0.45);
  set_phase_demand(profile_.scroll_cpu);
  // Lazy-loaded content trickles in; small enough to skip a full Flow, but it
  // still counts as radio activity and traffic.
  const double burst_mbps = 1.0;
  data_radio().begin_activity(burst_mbps);
  device_.recompute_power();
  device_.simulator().schedule_after(
      kScrollBurstDuration,
      [this, burst_mbps] {
        data_radio().end_activity(burst_mbps);
        if (--scroll_bursts_ > 0) {  // another burst took over
          device_.recompute_power();
          return;
        }
        if (running_ && !loading_) {
          device_.screen().set_content_change_rate(0.12);
          set_phase_demand(profile_.idle_cpu);
        } else if (running_) {
          device_.screen().set_content_change_rate(0.50);
          set_phase_demand(profile_.load_cpu);
        }
        device_.recompute_power();
      },
      "browser.scroll-settle");
}

}  // namespace blab::device
