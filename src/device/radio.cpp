#include "device/radio.hpp"

namespace blab::device {

const char* radio_kind_name(RadioKind kind) {
  switch (kind) {
    case RadioKind::kWifi: return "wifi";
    case RadioKind::kBluetooth: return "bluetooth";
    case RadioKind::kCellular: return "cellular";
  }
  return "?";
}

double Radio::current_ma(const PowerProfile& p) const {
  if (!enabled_) return 0.0;
  switch (kind_) {
    case RadioKind::kWifi:
      return active() ? p.wifi_active_ma + p.wifi_per_mbps_ma * throughput_mbps_
                      : p.wifi_idle_ma;
    case RadioKind::kBluetooth:
      return active() ? p.bt_active_ma : p.bt_idle_ma;
    case RadioKind::kCellular:
      return active() ? p.cell_active_ma : p.cell_idle_ma;
  }
  return 0.0;
}

}  // namespace blab::device
