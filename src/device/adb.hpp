// Android Debug Bridge over USB / WiFi / Bluetooth (§3.3).
//
// The daemon (adbd) runs on the device and executes shell commands; the
// client runs on the controller. Transport rules follow the paper:
//   - USB: most reliable, but the bus charge current corrupts measurements;
//     requires the hub port's data path to be up.
//   - WiFi: needs `adb tcpip` to have been enabled (over USB) beforehand;
//     precludes cellular-network experiments.
//   - Bluetooth: works on cellular too, but requires a rooted device.
// Command exchanges ride the simulated network, so each transport's latency
// and availability is the real path's.
#pragma once

#include <functional>
#include <string>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::device {

class AndroidDevice;

enum class AdbTransport { kUsb, kWifi, kBluetooth };

const char* adb_transport_name(AdbTransport t);

inline constexpr int kAdbPort = 5555;

/// Device-side daemon.
class AdbDaemon {
 public:
  explicit AdbDaemon(AndroidDevice& device, int port = kAdbPort);
  ~AdbDaemon();
  AdbDaemon(const AdbDaemon&) = delete;
  AdbDaemon& operator=(const AdbDaemon&) = delete;

  /// `adb tcpip 5555` must have been issued (over USB) before WiFi works.
  void set_tcpip_enabled(bool on) { tcpip_enabled_ = on; }
  bool tcpip_enabled() const { return tcpip_enabled_; }

  std::uint64_t commands_served() const { return commands_served_; }
  std::uint64_t commands_rejected() const { return commands_rejected_; }

 private:
  void on_message(const net::Message& msg);
  bool transport_allowed(AdbTransport t) const;

  AndroidDevice& device_;
  net::Address addr_;
  bool tcpip_enabled_ = true;
  std::uint64_t commands_served_ = 0;
  std::uint64_t commands_rejected_ = 0;
};

/// Controller-side client.
class AdbClient {
 public:
  AdbClient(net::Network& net, std::string host);

  using ShellCallback = std::function<void(util::Result<std::string>)>;
  void shell(const std::string& device_host, AdbTransport transport,
             const std::string& command, ShellCallback cb,
             util::Duration timeout = util::Duration::seconds(10));

  /// Pumps the simulator until the reply arrives (or times out).
  util::Result<std::string> shell_sync(
      const std::string& device_host, AdbTransport transport,
      const std::string& command,
      util::Duration timeout = util::Duration::seconds(10));

  /// `adb push`: transfer `bytes` to `remote_path` on the device's storage.
  /// The payload rides the selected transport (slow over Bluetooth, fast
  /// over USB), so large pushes take realistic time and show in traffic
  /// accounting. Synchronous.
  util::Status push_sync(const std::string& device_host,
                         AdbTransport transport,
                         const std::string& remote_path, std::size_t bytes,
                         util::Duration timeout = util::Duration::seconds(60));

 private:
  net::Network& net_;
  std::string host_;
};

}  // namespace blab::device
