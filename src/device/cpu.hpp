// SoC / CPU utilization model.
//
// Utilization is the process table's total demand; the model tracks a
// utilization timeline (for Fig. 4's CPU CDFs) and converts utilization to
// supply current with a mildly super-linear curve (DVFS: higher residency in
// high-power states under load).
#pragma once

#include "device/power_profile.hpp"
#include "hw/timeline.hpp"
#include "util/time.hpp"

namespace blab::device {

class CpuModel {
 public:
  explicit CpuModel(int cores = 8) : cores_{cores} {}

  int cores() const { return cores_; }

  /// Record the current utilization (fraction of total SoC, [0,1]).
  void set_utilization(util::TimePoint t, double util);
  double utilization(util::TimePoint t) const { return timeline_.at(t); }
  double current_utilization() const { return timeline_.last_value(); }
  const hw::Timeline& utilization_timeline() const { return timeline_; }

  /// Supply current attributable to the SoC at a given utilization.
  static double current_ma(const PowerProfile& profile, double util);

 private:
  int cores_;
  hw::Timeline timeline_;
};

}  // namespace blab::device
