// The Android test device.
//
// Aggregates battery, screen, SoC, radios, process table and the OS model,
// and exposes the device's external supply draw as an hw::Load — exactly the
// quantity the Monsoon measures when the relay routes the phone to bypass.
//
// Power bookkeeping: every component state change (or stochastic CPU redraw)
// calls recompute_power(), which appends a breakpoint to the supply timeline
// and to the CPU-utilization timeline. USB charging offsets the supply draw,
// which is precisely the interference that makes BatteryLab cut USB power
// during measurements (§3.2).
#pragma once

#include <memory>
#include <string>

#include "device/cpu.hpp"
#include "device/power_profile.hpp"
#include "device/process.hpp"
#include "device/radio.hpp"
#include "device/screen.hpp"
#include "hw/battery.hpp"
#include "hw/load.hpp"
#include "hw/timeline.hpp"
#include "net/network.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace blab::device {

class AndroidOs;

enum class PowerSource { kNone, kBattery, kMonitorBypass };

/// Mobile OS family. BatteryLab focuses on Android "because of ease of
/// integration and availability of testing tools" (§5) but the platform is
/// designed for iOS too: no ADB there, mirroring via AirPlay, automation via
/// XCTest builds or the Bluetooth keyboard (§3.2–3.3).
enum class Platform { kAndroid, kIos };

const char* platform_name(Platform platform);

/// What kind of battery-powered thing is wired to the relay. §5: "while we
/// focus on mobile devices there is no fundamental constraint which would
/// not allow BatteryLab to support laptops or IoT devices."
enum class DeviceClass { kPhone, kTablet, kLaptop, kIot };

const char* device_class_name(DeviceClass device_class);

struct DeviceSpec {
  std::string model = "Samsung J7 Duo";
  std::string serial = "unset";
  Platform platform = Platform::kAndroid;
  DeviceClass device_class = DeviceClass::kPhone;
  int api_level = 26;  ///< Android 8.0 (interpreted as iOS major for kIos)
  bool rooted = false;
  bool headless = false;  ///< no display panel (IoT sensors)
  hw::BatterySpec battery{};
  ScreenSpec screen{};
  int cpu_cores = 8;
  PowerProfile power{};

  /// An iPhone-8-class iOS counterpart of the default Android spec.
  static DeviceSpec iphone(std::string serial);
  /// An 11.4 V ultrabook-class laptop — exercises the Monsoon's upper
  /// voltage range (it tops out at 13.5 V).
  static DeviceSpec laptop(std::string serial);
  /// A 3.3 V headless IoT sensor node drawing single-digit milliamps —
  /// exercises the instrument's noise floor.
  static DeviceSpec iot_sensor(std::string serial);
};

class AndroidDevice : public hw::Load {
 public:
  AndroidDevice(sim::Simulator& sim, net::Network& net, std::string host,
                DeviceSpec spec, std::uint64_t seed);
  ~AndroidDevice() override;
  AndroidDevice(const AndroidDevice&) = delete;
  AndroidDevice& operator=(const AndroidDevice&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  const std::string& host() const { return host_; }
  const std::string& serial() const { return spec_.serial; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  util::Rng& rng() { return rng_; }

  hw::Battery& battery() { return battery_; }
  Screen& screen() { return screen_; }
  CpuModel& cpu() { return cpu_; }
  Radio& wifi() { return wifi_; }
  Radio& bluetooth() { return bt_; }
  Radio& cellular() { return cell_; }
  ProcessTable& processes() { return processes_; }
  AndroidOs& os() { return *os_; }

  void power_on();
  void power_off();
  bool powered_on() const { return powered_; }

  /// Which source feeds the phone's voltage terminal (set by relay wiring).
  void set_power_source(PowerSource source);
  PowerSource power_source() const { return source_; }
  /// USB charge current available from the hub port (0 when port is off).
  void set_usb_charge_ma(double ma);
  double usb_charge_ma() const { return usb_charge_ma_; }

  /// Hardware codec activity (video playback / scrcpy mirroring).
  void set_decoder_active(bool on);
  void set_encoder_active(bool on);
  bool decoder_active() const { return decoder_active_; }
  bool encoder_active() const { return encoder_active_; }

  /// Apparent network region for content decisions ("" = vantage point's
  /// home). Set when the controller tunnels traffic through a VPN exit.
  void set_network_region(std::string region);
  const std::string& network_region() const { return region_; }

  /// Total component demand right now (before USB offset), mA.
  double demand_ma() const;
  /// Recompute demand and append timeline breakpoints. Call after any
  /// component state change.
  void recompute_power();

  // hw::Load — external supply draw (what the Monsoon would measure).
  double current_ma(util::TimePoint t) const override;
  std::vector<std::pair<util::TimePoint, double>> current_segments(
      util::TimePoint t0, util::TimePoint t1) const override;

  const hw::Timeline& supply_timeline() const { return supply_; }
  /// Resource-counter timelines (what a software estimation agent samples):
  /// screen power state and data-radio activity as 0/1 signals.
  const hw::Timeline& screen_on_timeline() const { return screen_on_; }
  const hw::Timeline& radio_active_timeline() const { return radio_active_; }

 private:
  void jitter_tick();
  void integrate_battery();

  sim::Simulator& sim_;
  net::Network& net_;
  std::string host_;
  DeviceSpec spec_;
  util::Rng rng_;

  hw::Battery battery_;
  Screen screen_;
  CpuModel cpu_;
  Radio wifi_{RadioKind::kWifi};
  Radio bt_{RadioKind::kBluetooth};
  Radio cell_{RadioKind::kCellular};
  ProcessTable processes_;
  std::unique_ptr<AndroidOs> os_;

  bool powered_ = false;
  PowerSource source_ = PowerSource::kBattery;
  double usb_charge_ma_ = 0.0;
  bool decoder_active_ = false;
  bool encoder_active_ = false;
  std::string region_;

  hw::Timeline supply_;
  hw::Timeline screen_on_;
  hw::Timeline radio_active_;
  util::TimePoint last_integration_;
  double last_demand_ma_ = 0.0;
  sim::PeriodicTask jitter_;
};

}  // namespace blab::device
