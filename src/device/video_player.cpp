#include "device/video_player.hpp"

#include "device/android.hpp"
#include "device/device.hpp"

namespace blab::device {

VideoPlayerApp::VideoPlayerApp(AndroidDevice& device, std::string package)
    : App{device, std::move(package)} {}

void VideoPlayerApp::launch() {
  if (running_) return;
  running_ = true;
  pid_ = device_.processes().spawn(package_, 0.02, 0.3, true);
  device_.screen().set_content_change_rate(0.05);
  device_.recompute_power();
}

void VideoPlayerApp::stop() {
  if (!running_) return;
  if (playing_) (void)pause();
  running_ = false;
  device_.processes().kill(pid_);
  pid_ = Pid{};
  device_.recompute_power();
}

util::Status VideoPlayerApp::play(const std::string& file) {
  if (!running_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "player not running");
  }
  if (playing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "already playing " + file_);
  }
  if (!device_.os().has_file(file)) {
    return util::make_error(util::ErrorCode::kNotFound,
                            file + " not found on sdcard (adb push it first)");
  }
  playing_ = true;
  file_ = file;
  device_.set_decoder_active(true);
  device_.processes().set_base_demand(pid_, 0.06);
  device_.screen().set_content_change_rate(0.60);
  device_.recompute_power();
  device_.os().log("VideoPlayer", "playing " + file);
  return util::Status::ok_status();
}

util::Status VideoPlayerApp::pause() {
  if (!playing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "not playing");
  }
  playing_ = false;
  device_.set_decoder_active(false);
  device_.processes().set_base_demand(pid_, 0.02);
  device_.screen().set_content_change_rate(0.05);
  device_.recompute_power();
  return util::Status::ok_status();
}

}  // namespace blab::device
