// Application base class.
//
// Apps are installed into the AndroidOs package table and receive routed
// input events (text, key, swipe, tap) while in the foreground — the same
// surface ADB's `input` subcommands and the Bluetooth keyboard drive.
#pragma once

#include <string>

namespace blab::device {

class AndroidDevice;

/// Android keycodes used by the automation paths.
inline constexpr int kKeycodeEnter = 66;
inline constexpr int kKeycodeHome = 3;
inline constexpr int kKeycodeBack = 4;
inline constexpr int kKeycodeDpadDown = 20;
inline constexpr int kKeycodeDpadUp = 19;
inline constexpr int kKeycodeAppSwitch = 187;

class App {
 public:
  App(AndroidDevice& device, std::string package)
      : device_{device}, package_{std::move(package)} {}
  virtual ~App() = default;
  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const std::string& package() const { return package_; }
  bool running() const { return running_; }

  virtual void launch();
  virtual void stop();
  /// `pm clear` semantics: wipe app data (first-run state, caches).
  virtual void clear_state() {}

  virtual void on_text(const std::string& text) { (void)text; }
  virtual void on_key(int keycode) { (void)keycode; }
  /// Vertical swipe; dy < 0 scrolls content down (finger moves up).
  virtual void on_swipe(int dy) { (void)dy; }
  virtual void on_tap(int x, int y) {
    (void)x;
    (void)y;
  }

 protected:
  AndroidDevice& device_;
  std::string package_;
  bool running_ = false;
};

}  // namespace blab::device
