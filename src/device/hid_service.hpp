// Device-side Bluetooth HID input service (§3.3).
//
// When the controller emulates a keyboard, the device receives HID events
// over the paired Bluetooth link and injects them into the OS input
// pipeline. This is the only remote-input path available on iOS (no ADB),
// and the one used on Android for cellular-network experiments. Each
// injected event is acked back to the sender so pipelines (e.g. the
// mirroring latency probe) can time the injection.
#pragma once

#include "net/network.hpp"

namespace blab::device {

class AndroidDevice;

inline constexpr int kBtHidPort = 4666;

/// Accepts "text ..." / "key N" / "swipe DY" / "tap X Y" / "launch PKG"
/// events on {device, kBtHidPort} and injects them. ("launch" stands in for
/// the HOME + app-drawer + dpad + ENTER keystroke walk.)
class BtHidService {
 public:
  explicit BtHidService(AndroidDevice& device);
  ~BtHidService();
  BtHidService(const BtHidService&) = delete;
  BtHidService& operator=(const BtHidService&) = delete;

  std::uint64_t events_injected() const { return events_; }

 private:
  void on_message(const net::Message& msg);

  AndroidDevice& device_;
  net::Address addr_;
  std::uint64_t events_ = 0;
};

}  // namespace blab::device
