// Process table for the Android OS model.
//
// Apps and system daemons are processes with a CPU demand (fraction of total
// SoC capacity). Demands may be stochastic: the device redraws jittered
// demands on a short period, which is what gives measured CPU/current CDFs
// their realistic spread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/id.hpp"
#include "util/rng.hpp"

namespace blab::device {

struct ProcessTag {};
using Pid = util::Id<ProcessTag>;

struct Process {
  Pid pid;
  std::string name;          ///< e.g. "com.android.chrome"
  double base_demand = 0.0;  ///< mean CPU demand, fraction of SoC [0,1]
  double jitter_fraction = 0.0;  ///< relative sigma of the redraw
  double current_demand = 0.0;   ///< latest drawn demand
  bool foreground = false;
};

class ProcessTable {
 public:
  Pid spawn(std::string name, double base_demand, double jitter_fraction,
            bool foreground = false);
  bool kill(Pid pid);
  /// Kill every process whose name matches exactly; returns count.
  int kill_by_name(const std::string& name);

  Process* find(Pid pid);
  const Process* find(Pid pid) const;
  Process* find_by_name(const std::string& name);

  /// Sum of current demands, clamped to 1.0 (the SoC saturates).
  double total_demand() const;
  /// Redraw all jittered demands.
  void redraw(util::Rng& rng);
  /// Update a process's mean demand (e.g. page load burst starts/ends).
  bool set_base_demand(Pid pid, double demand);

  const std::vector<Process>& processes() const { return processes_; }
  std::size_t count() const { return processes_.size(); }

 private:
  util::IdAllocator<ProcessTag> ids_;
  std::vector<Process> processes_;
};

}  // namespace blab::device
