// Web page catalog for the browser workload (§4.2).
//
// The paper drives each browser through "10 popular news websites". Here the
// catalog carries per-page payload sizes split into editorial content and
// ads. Ad payloads vary with the client's apparent network location (§4.3:
// Chrome's traffic dropped ~20% through the Japan VPN because ads served
// there were systematically smaller), and Chrome's "lite pages" transcoding
// defaults on in low-bandwidth regions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace blab::device {

struct WebPage {
  std::string url;
  std::size_t content_bytes = 0;  ///< editorial payload
  std::size_t ads_bytes = 0;      ///< ad payload at the reference location
  /// Extra bytes fetched per scroll step (lazy-loaded content).
  std::size_t scroll_bytes = 100 * 1024;
};

class WebCatalog {
 public:
  /// The ten news sites used throughout the evaluation.
  static const WebCatalog& news_sites();

  explicit WebCatalog(std::vector<WebPage> pages);

  const std::vector<WebPage>& pages() const { return pages_; }
  const WebPage* find(const std::string& url) const;

  /// Multiplier applied to ad payloads for a network region ("" = home).
  /// Japan serves markedly smaller ads — the Fig. 6 Chrome dip.
  static double ad_region_factor(const std::string& region);
  /// Regions where Chrome's lite-pages transcoding defaults to ON.
  static bool lite_pages_default_on(const std::string& region);

  /// Total bytes a fetch of `page` transfers.
  ///  - ad blocking drops ~92% of ad bytes (Brave)
  ///  - lite pages transcode editorial content to ~40% (when supported —
  ///    §4.3 notes none of the tested pages actually supported it)
  static std::size_t page_bytes(const WebPage& page, const std::string& region,
                                bool block_ads, bool lite_pages_active);

 private:
  std::vector<WebPage> pages_;
};

}  // namespace blab::device
