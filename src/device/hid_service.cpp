#include "device/hid_service.hpp"

#include "device/android.hpp"
#include "device/device.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::device {

BtHidService::BtHidService(AndroidDevice& device)
    : device_{device}, addr_{device.host(), kBtHidPort} {
  device_.network().listen(addr_,
                           [this](const net::Message& m) { on_message(m); });
}

BtHidService::~BtHidService() { device_.network().unlisten(addr_); }

void BtHidService::on_message(const net::Message& msg) {
  if (msg.tag != "hid.event" || !device_.powered_on()) return;
  const auto argv = util::split_ws(msg.payload);
  if (argv.empty()) return;
  auto& os = device_.os();
  util::Status st = util::Status::ok_status();
  // HID events ride the viewer-facing input path; malformed numbers are
  // dropped (no ack), mirroring a keyboard that never saw the keystroke.
  const auto arg_int = [&argv](std::size_t i) {
    return util::parse_int(argv[i]);
  };
  if (argv[0] == "text" && argv.size() >= 2) {
    st = os.input_text(msg.payload.substr(5));
  } else if ((argv[0] == "key" || argv[0] == "keyevent") && argv.size() >= 2 &&
             arg_int(1).has_value()) {
    st = os.input_keyevent(*arg_int(1));
  } else if (argv[0] == "swipe" && argv.size() >= 2 &&
             arg_int(1).has_value()) {
    st = os.input_swipe(540, 1200, 540, 1200 + *arg_int(1));
  } else if (argv[0] == "tap" && argv.size() >= 3 && arg_int(1).has_value() &&
             arg_int(2).has_value()) {
    st = os.input_tap(*arg_int(1), *arg_int(2));
  } else if (argv[0] == "launch" && argv.size() >= 2) {
    st = os.start_activity(argv[1]);
  } else {
    return;
  }
  if (st.ok()) ++events_;
  // Ack regardless of injection outcome — a keyboard cannot know whether a
  // keystroke "worked"; controller pipelines only time the delivery.
  net::Message ack;
  ack.src = addr_;
  ack.dst = msg.src;
  ack.tag = "hid.ack";
  ack.payload = msg.payload;
  ack.wire_bytes = 48;
  (void)device_.network().send(std::move(ack));
}

}  // namespace blab::device
