// Display model.
//
// Tracks power-relevant state (on/off, brightness) and the *content change
// rate* — the fraction of the frame that changes per refresh. The change rate
// drives the scrcpy encoder's CPU cost and output bitrate (§4.2: encoder load
// rises when screen content changes quickly vs. the static home screen).
#pragma once

#include <algorithm>

#include "device/power_profile.hpp"

namespace blab::device {

struct ScreenSpec {
  int width = 1080;
  int height = 2220;  // J7 Duo-class panel
  double refresh_hz = 60.0;
};

class Screen {
 public:
  explicit Screen(ScreenSpec spec = {}) : spec_{spec} {}

  const ScreenSpec& spec() const { return spec_; }

  bool is_on() const { return on_; }
  void set_on(bool on) { on_ = on; }
  double brightness() const { return brightness_; }
  void set_brightness(double b) { brightness_ = std::clamp(b, 0.0, 1.0); }

  /// Fraction of pixels changing per frame, [0,1]. Home screen ~0.01,
  /// scrolling ~0.4, video ~0.6.
  double content_change_rate() const { return on_ ? change_rate_ : 0.0; }
  void set_content_change_rate(double rate) {
    change_rate_ = std::clamp(rate, 0.0, 1.0);
  }

  double current_ma(const PowerProfile& profile) const {
    if (!on_) return 0.0;
    return profile.screen_base_ma + profile.screen_brightness_ma * brightness_;
  }

 private:
  ScreenSpec spec_;
  bool on_ = false;
  double brightness_ = kDefaultBrightness;
  double change_rate_ = 0.01;
};

}  // namespace blab::device
