#include "device/adb.hpp"

#include <atomic>
#include <memory>

#include "device/android.hpp"
#include "device/device.hpp"
#include "util/logging.hpp"

namespace blab::device {
namespace {

constexpr char kExecTag[] = "adb.exec";
constexpr char kPushTag[] = "adb.push";
constexpr char kReplyTag[] = "adb.reply";
constexpr char kErrorTag[] = "adb.error";

int next_client_port() {
  static std::atomic<int> port{38000};
  return port++;
}

util::Result<AdbTransport> parse_transport(const std::string& s) {
  if (s == "usb") return AdbTransport::kUsb;
  if (s == "wifi") return AdbTransport::kWifi;
  if (s == "bt") return AdbTransport::kBluetooth;
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "bad transport " + s);
}

}  // namespace

const char* adb_transport_name(AdbTransport t) {
  switch (t) {
    case AdbTransport::kUsb: return "usb";
    case AdbTransport::kWifi: return "wifi";
    case AdbTransport::kBluetooth: return "bt";
  }
  return "?";
}

AdbDaemon::AdbDaemon(AndroidDevice& device, int port)
    : device_{device}, addr_{device.host(), port} {
  device_.network().listen(addr_,
                           [this](const net::Message& m) { on_message(m); });
}

AdbDaemon::~AdbDaemon() { device_.network().unlisten(addr_); }

bool AdbDaemon::transport_allowed(AdbTransport t) const {
  switch (t) {
    case AdbTransport::kUsb:
      return true;  // reachability is enforced by the (powered) USB link
    case AdbTransport::kWifi:
      return tcpip_enabled_ && device_.wifi().enabled();
    case AdbTransport::kBluetooth:
      // ADB-over-Bluetooth needs root (§3.3).
      return device_.spec().rooted && device_.bluetooth().enabled();
  }
  return false;
}

void AdbDaemon::on_message(const net::Message& msg) {
  if (msg.tag != kExecTag && msg.tag != kPushTag) return;
  auto reply = [&](const std::string& tag, const std::string& payload) {
    net::Message r;
    r.src = addr_;
    r.dst = msg.src;
    r.tag = tag;
    r.payload = payload;
    r.wire_bytes = 96 + payload.size();
    (void)device_.network().send(std::move(r));
  };
  const auto sep = msg.payload.find('\x1f');
  if (sep == std::string::npos) {
    ++commands_rejected_;
    reply(kErrorTag, "malformed request");
    return;
  }
  const auto transport = parse_transport(msg.payload.substr(0, sep));
  const std::string command = msg.payload.substr(sep + 1);
  if (!transport.ok()) {
    ++commands_rejected_;
    reply(kErrorTag, transport.error().message);
    return;
  }
  if (!device_.powered_on()) {
    ++commands_rejected_;
    reply(kErrorTag, "device offline");
    return;
  }
  if (!transport_allowed(transport.value())) {
    ++commands_rejected_;
    reply(kErrorTag, std::string{"transport "} +
                         adb_transport_name(transport.value()) +
                         " not available");
    return;
  }
  if (msg.tag == kPushTag) {
    // command is "<remote_path>\x1f<bytes>".
    const auto sep2 = command.find('\x1f');
    if (sep2 == std::string::npos) {
      ++commands_rejected_;
      reply(kErrorTag, "malformed push");
      return;
    }
    const std::string path = command.substr(0, sep2);
    const auto bytes = std::stoull(command.substr(sep2 + 1));
    device_.os().put_file(path, bytes);
    device_.os().log("adbd", "pushed " + path + " (" +
                                 std::to_string(bytes) + " bytes)");
    ++commands_served_;
    reply(kReplyTag, "1 file pushed");
    return;
  }
  auto result = device_.os().execute_shell(command);
  ++commands_served_;
  if (result.ok()) {
    reply(kReplyTag, result.value());
  } else {
    reply(kErrorTag, result.error().str());
  }
}

AdbClient::AdbClient(net::Network& net, std::string host)
    : net_{net}, host_{std::move(host)} {
  net_.add_host(host_);
}

void AdbClient::shell(const std::string& device_host, AdbTransport transport,
                      const std::string& command, ShellCallback cb,
                      util::Duration timeout) {
  auto& sim = net_.simulator();
  if (transport == AdbTransport::kUsb) {
    // `adb devices` only lists a phone whose USB data path is up; a port
    // whose power was cut (uhubctl) is equivalent to an unplugged cable.
    const net::Link* usb = net_.find_link(host_, device_host, "usb");
    if (usb == nullptr || !usb->enabled()) {
      cb(util::make_error(util::ErrorCode::kUnavailable,
                          "device not on USB (port unpowered or detached)"));
      return;
    }
  }
  const net::Address session{host_, next_client_port()};
  auto done = std::make_shared<bool>(false);

  net_.listen(session, [this, session, cb, done](const net::Message& m) {
    if (*done) return;
    *done = true;
    net_.unlisten(session);
    if (m.tag == kErrorTag) {
      cb(util::make_error(util::ErrorCode::kUnavailable, m.payload));
    } else {
      cb(m.payload);
    }
  });

  net::Message msg;
  msg.src = session;
  msg.dst = net::Address{device_host, kAdbPort};
  msg.tag = kExecTag;
  msg.payload = std::string{adb_transport_name(transport)} + "\x1f" + command;
  msg.wire_bytes = 128 + command.size();
  if (auto st = net_.send(std::move(msg)); !st.ok()) {
    *done = true;
    net_.unlisten(session);
    cb(st.error());
    return;
  }
  sim.schedule_after(timeout, [this, session, cb, done] {
    if (*done) return;
    *done = true;
    net_.unlisten(session);
    cb(util::make_error(util::ErrorCode::kTimeout, "adb shell timed out"));
  }, "adb.timeout");
}

util::Status AdbClient::push_sync(const std::string& device_host,
                                  AdbTransport transport,
                                  const std::string& remote_path,
                                  std::size_t bytes, util::Duration timeout) {
  auto& sim = net_.simulator();
  if (transport == AdbTransport::kUsb) {
    const net::Link* usb = net_.find_link(host_, device_host, "usb");
    if (usb == nullptr || !usb->enabled()) {
      return util::make_error(util::ErrorCode::kUnavailable,
                              "device not on USB (port unpowered or "
                              "detached)");
    }
  }
  const net::Address session{host_, next_client_port()};
  auto done = std::make_shared<bool>(false);
  util::Status result = util::make_error(util::ErrorCode::kUnknown, "not run");

  net_.listen(session, [this, session, done, &result](const net::Message& m) {
    if (*done) return;
    *done = true;
    net_.unlisten(session);
    if (m.tag == kErrorTag) {
      result = util::make_error(util::ErrorCode::kUnavailable, m.payload);
    } else {
      result = util::Status::ok_status();
    }
  });

  net::Message msg;
  msg.src = session;
  msg.dst = net::Address{device_host, kAdbPort};
  msg.tag = kPushTag;
  msg.payload = std::string{adb_transport_name(transport)} + "\x1f" +
                remote_path + "\x1f" + std::to_string(bytes);
  msg.wire_bytes = bytes + 256;  // the file itself rides the transport
  if (auto st = net_.send(std::move(msg)); !st.ok()) {
    net_.unlisten(session);
    return st;
  }
  const util::TimePoint deadline = sim.now() + timeout;
  while (!*done && sim.now() < deadline) {
    if (!sim.step()) break;
  }
  if (!*done) {
    net_.unlisten(session);
    return util::make_error(util::ErrorCode::kTimeout, "adb push stalled");
  }
  return result;
}

util::Result<std::string> AdbClient::shell_sync(const std::string& device_host,
                                                AdbTransport transport,
                                                const std::string& command,
                                                util::Duration timeout) {
  auto& sim = net_.simulator();
  bool finished = false;
  util::Result<std::string> out =
      util::make_error(util::ErrorCode::kUnknown, "not run");
  shell(device_host, transport, command,
        [&](util::Result<std::string> r) {
          finished = true;
          out = std::move(r);
        },
        timeout);
  const util::TimePoint deadline =
      sim.now() + timeout + util::Duration::seconds(1);
  while (!finished && sim.now() < deadline) {
    if (!sim.step()) break;
  }
  if (!finished) {
    return util::make_error(util::ErrorCode::kTimeout, "adb shell_sync stalled");
  }
  return out;
}

}  // namespace blab::device
