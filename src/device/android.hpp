// Android OS model: package manager, activity manager, input routing,
// logcat, dumpsys, settings, and the shell command surface ADB drives.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/app.hpp"
#include "util/result.hpp"

namespace blab::device {

class AndroidDevice;

class AndroidOs {
 public:
  explicit AndroidOs(AndroidDevice& device);

  int api_level() const;
  bool rooted() const;

  // -- Package manager ------------------------------------------------------
  util::Status install(std::unique_ptr<App> app);
  util::Status uninstall(const std::string& package);
  App* app(const std::string& package);
  std::vector<std::string> packages() const;

  // -- Activity manager -----------------------------------------------------
  util::Status start_activity(const std::string& package);
  util::Status force_stop(const std::string& package);
  util::Status clear_data(const std::string& package);
  App* foreground_app();
  const std::string& foreground_package() const { return foreground_; }

  // -- Input routing --------------------------------------------------------
  util::Status input_text(const std::string& text);
  util::Status input_keyevent(int keycode);
  util::Status input_swipe(int x1, int y1, int x2, int y2);
  util::Status input_tap(int x, int y);

  // -- Logcat ---------------------------------------------------------------
  void log(const std::string& tag, const std::string& message);
  std::string logcat_dump(bool clear = false);
  std::size_t logcat_lines() const { return logcat_.size(); }

  // -- Settings provider ----------------------------------------------------
  void put_setting(const std::string& ns, const std::string& key,
                   const std::string& value);
  std::string get_setting(const std::string& ns, const std::string& key) const;

  // -- Storage (sdcard) ------------------------------------------------------
  // Experiments pre-load content on the sdcard (the Fig. 2 mp4); `adb push`
  // lands here. Only sizes are tracked — contents never matter to power.
  void put_file(const std::string& path, std::size_t bytes);
  bool has_file(const std::string& path) const;
  util::Result<std::size_t> file_size(const std::string& path) const;
  bool remove_file(const std::string& path);
  std::vector<std::string> list_files(const std::string& prefix = "/") const;

  // -- dumpsys --------------------------------------------------------------
  std::string dumpsys(const std::string& service) const;

  /// Execute a shell command line the way `adb shell` would.
  util::Result<std::string> execute_shell(const std::string& command);

 private:
  AndroidDevice& device_;
  std::map<std::string, std::unique_ptr<App>> apps_;
  std::string foreground_;
  std::deque<std::string> logcat_;
  std::map<std::string, std::string> settings_;
  std::map<std::string, std::size_t> files_;
  static constexpr std::size_t kLogcatCapacity = 4096;
};

}  // namespace blab::device
