#include "device/android.hpp"

#include <sstream>

#include "device/device.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::device {

void App::launch() { running_ = true; }
void App::stop() { running_ = false; }

AndroidOs::AndroidOs(AndroidDevice& device) : device_{device} {
  // Factory content: the test video the Fig. 2 methodology pre-loads.
  files_["/sdcard/video.mp4"] = 48 * 1024 * 1024;
}

void AndroidOs::put_file(const std::string& path, std::size_t bytes) {
  files_[path] = bytes;
}

bool AndroidOs::has_file(const std::string& path) const {
  return files_.contains(path);
}

util::Result<std::size_t> AndroidOs::file_size(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            path + ": No such file or directory");
  }
  return it->second;
}

bool AndroidOs::remove_file(const std::string& path) {
  return files_.erase(path) > 0;
}

std::vector<std::string> AndroidOs::list_files(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (util::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

int AndroidOs::api_level() const { return device_.spec().api_level; }
bool AndroidOs::rooted() const { return device_.spec().rooted; }

util::Status AndroidOs::install(std::unique_ptr<App> app) {
  const std::string pkg = app->package();
  if (apps_.contains(pkg)) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            pkg + " already installed");
  }
  apps_[pkg] = std::move(app);
  log("PackageManager", "installed " + pkg);
  return util::Status::ok_status();
}

util::Status AndroidOs::uninstall(const std::string& package) {
  const auto it = apps_.find(package);
  if (it == apps_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            package + " not installed");
  }
  if (it->second->running()) it->second->stop();
  if (foreground_ == package) foreground_.clear();
  apps_.erase(it);
  log("PackageManager", "uninstalled " + package);
  return util::Status::ok_status();
}

App* AndroidOs::app(const std::string& package) {
  const auto it = apps_.find(package);
  return it == apps_.end() ? nullptr : it->second.get();
}

std::vector<std::string> AndroidOs::packages() const {
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const auto& [pkg, _] : apps_) out.push_back(pkg);
  return out;
}

util::Status AndroidOs::start_activity(const std::string& package) {
  App* a = app(package);
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown package " + package);
  }
  if (!device_.powered_on()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "device is off");
  }
  if (!a->running()) a->launch();
  foreground_ = package;
  log("ActivityManager", "START " + package);
  device_.recompute_power();
  return util::Status::ok_status();
}

util::Status AndroidOs::force_stop(const std::string& package) {
  App* a = app(package);
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown package " + package);
  }
  if (a->running()) a->stop();
  if (foreground_ == package) foreground_.clear();
  log("ActivityManager", "force-stop " + package);
  device_.recompute_power();
  return util::Status::ok_status();
}

util::Status AndroidOs::clear_data(const std::string& package) {
  App* a = app(package);
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown package " + package);
  }
  if (a->running()) a->stop();
  if (foreground_ == package) foreground_.clear();
  a->clear_state();
  log("PackageManager", "cleared data of " + package);
  return util::Status::ok_status();
}

App* AndroidOs::foreground_app() {
  return foreground_.empty() ? nullptr : app(foreground_);
}

util::Status AndroidOs::input_text(const std::string& text) {
  App* a = foreground_app();
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no foreground app for input");
  }
  a->on_text(text);
  return util::Status::ok_status();
}

util::Status AndroidOs::input_keyevent(int keycode) {
  if (keycode == kKeycodeHome) {
    foreground_.clear();
    device_.screen().set_content_change_rate(0.01);
    device_.recompute_power();
    return util::Status::ok_status();
  }
  App* a = foreground_app();
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no foreground app for key event");
  }
  a->on_key(keycode);
  return util::Status::ok_status();
}

util::Status AndroidOs::input_swipe(int x1, int y1, int x2, int y2) {
  (void)x1;
  (void)x2;
  App* a = foreground_app();
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no foreground app for swipe");
  }
  a->on_swipe(y2 - y1);
  return util::Status::ok_status();
}

util::Status AndroidOs::input_tap(int x, int y) {
  App* a = foreground_app();
  if (a == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no foreground app for tap");
  }
  a->on_tap(x, y);
  return util::Status::ok_status();
}

void AndroidOs::log(const std::string& tag, const std::string& message) {
  logcat_.push_back(util::to_string(device_.simulator().now()) + " " + tag +
                    ": " + message);
  if (logcat_.size() > kLogcatCapacity) logcat_.pop_front();
}

std::string AndroidOs::logcat_dump(bool clear) {
  std::string out;
  for (const auto& line : logcat_) {
    out += line;
    out += "\n";
  }
  if (clear) logcat_.clear();
  return out;
}

void AndroidOs::put_setting(const std::string& ns, const std::string& key,
                            const std::string& value) {
  settings_[ns + "/" + key] = value;
}

std::string AndroidOs::get_setting(const std::string& ns,
                                   const std::string& key) const {
  const auto it = settings_.find(ns + "/" + key);
  return it == settings_.end() ? "null" : it->second;
}

std::string AndroidOs::dumpsys(const std::string& service) const {
  std::ostringstream os;
  if (service == "battery") {
    const auto& batt = device_.battery();
    os << "Current Battery Service state:\n"
       << "  level: " << static_cast<int>(batt.soc() * 100.0) << "\n"
       << "  scale: 100\n"
       << "  voltage: "
       << static_cast<int>(batt.terminal_voltage(
              device_.current_ma(device_.simulator().now())) *
                           1000.0)
       << "\n"
       << "  powered: "
       << (device_.power_source() == PowerSource::kMonitorBypass ? "bypass"
                                                                 : "battery")
       << "\n";
  } else if (service == "cpuinfo") {
    os << "Load: " << util::format_double(
              device_.cpu().current_utilization() * 100.0, 1)
       << "% across " << device_.cpu().cores() << " cores\n";
    for (const auto& p : device_.processes().processes()) {
      os << "  " << util::format_double(p.current_demand * 100.0, 1) << "% "
         << p.pid.str() << "/" << p.name << "\n";
    }
  } else if (service == "meminfo") {
    // Coarse: 300 MB base + 120 MB per running app process.
    const double used_mb =
        300.0 + 120.0 * static_cast<double>(device_.processes().count());
    os << "Total RAM: 3072 MB\nUsed RAM: "
       << util::format_double(used_mb, 0) << " MB\n";
  } else {
    os << "Can't find service: " << service << "\n";
  }
  return os.str();
}

util::Result<std::string> AndroidOs::execute_shell(const std::string& command) {
  const auto argv = util::split_ws(command);
  if (argv.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument, "empty command");
  }
  auto err = [](const std::string& m) {
    return util::make_error(util::ErrorCode::kInvalidArgument, m);
  };
  const std::string& cmd = argv[0];

  if (cmd == "input") {
    if (argv.size() < 2) return err("input: missing subcommand");
    // Coordinates and keycodes arrive from the viewer-facing input path
    // (noVNC websocket -> scrcpy control socket), so a non-numeric argument
    // is a malformed command to reject, never an exception to throw.
    const auto arg_int = [&argv](std::size_t i) {
      return util::parse_int(argv[i]);
    };
    util::Status st = util::Status::ok_status();
    if (argv[1] == "text" && argv.size() >= 3) {
      // Everything after "text" is the literal input (shell-quoted upstream).
      std::string text = command.substr(command.find("text") + 5);
      st = input_text(std::string{util::trim(text)});
    } else if (argv[1] == "keyevent" && argv.size() >= 3 &&
               arg_int(2).has_value()) {
      st = input_keyevent(*arg_int(2));
    } else if (argv[1] == "swipe" && argv.size() >= 6 &&
               arg_int(2).has_value() && arg_int(3).has_value() &&
               arg_int(4).has_value() && arg_int(5).has_value()) {
      st = input_swipe(*arg_int(2), *arg_int(3), *arg_int(4), *arg_int(5));
    } else if (argv[1] == "tap" && argv.size() >= 4 &&
               arg_int(2).has_value() && arg_int(3).has_value()) {
      st = input_tap(*arg_int(2), *arg_int(3));
    } else {
      return err("input: bad arguments");
    }
    if (!st.ok()) return st.error();
    return std::string{};
  }
  if (cmd == "am") {
    if (argv.size() >= 3 && argv[1] == "start") {
      // Accept both "am start <pkg>" and "am start -n <pkg>/.Main".
      std::string pkg = argv.back();
      if (const auto slash = pkg.find('/'); slash != std::string::npos) {
        pkg = pkg.substr(0, slash);
      }
      if (auto st = start_activity(pkg); !st.ok()) return st.error();
      return "Starting: Intent { " + pkg + " }";
    }
    if (argv.size() >= 3 && argv[1] == "force-stop") {
      if (auto st = force_stop(argv[2]); !st.ok()) return st.error();
      return std::string{};
    }
    return err("am: bad arguments");
  }
  if (cmd == "pm") {
    if (argv.size() >= 3 && argv[1] == "list" && argv[2] == "packages") {
      std::string out;
      for (const auto& pkg : packages()) out += "package:" + pkg + "\n";
      return out;
    }
    if (argv.size() >= 3 && argv[1] == "clear") {
      if (auto st = clear_data(argv[2]); !st.ok()) return st.error();
      return std::string{"Success"};
    }
    return err("pm: bad arguments");
  }
  if (cmd == "dumpsys") {
    if (argv.size() < 2) return err("dumpsys: missing service");
    return dumpsys(argv[1]);
  }
  if (cmd == "logcat") {
    const bool clear = argv.size() >= 2 && argv[1] == "-c";
    if (clear) {
      logcat_.clear();
      return std::string{};
    }
    return logcat_dump(false);
  }
  if (cmd == "getprop") {
    if (argv.size() >= 2 && argv[1] == "ro.build.version.sdk") {
      return std::to_string(api_level());
    }
    if (argv.size() >= 2 && argv[1] == "ro.product.model") {
      return device_.spec().model;
    }
    return std::string{};
  }
  if (cmd == "settings") {
    if (argv.size() >= 5 && argv[1] == "put") {
      put_setting(argv[2], argv[3], argv[4]);
      return std::string{};
    }
    if (argv.size() >= 4 && argv[1] == "get") {
      return get_setting(argv[2], argv[3]);
    }
    return err("settings: bad arguments");
  }
  if (cmd == "ls") {
    const std::string prefix = argv.size() >= 2 ? argv[1] : "/";
    std::string out;
    for (const auto& path : list_files(prefix)) out += path + "\n";
    if (out.empty() && argv.size() >= 2 && !has_file(argv[1])) {
      return util::make_error(util::ErrorCode::kNotFound,
                              argv[1] + ": No such file or directory");
    }
    return out;
  }
  if (cmd == "rm") {
    if (argv.size() < 2) return err("rm: missing operand");
    if (!remove_file(argv[1])) {
      return util::make_error(util::ErrorCode::kNotFound,
                              argv[1] + ": No such file or directory");
    }
    return std::string{};
  }
  if (cmd == "stat") {
    if (argv.size() < 2) return err("stat: missing operand");
    auto size = file_size(argv[1]);
    if (!size.ok()) return size.error();
    return argv[1] + " " + std::to_string(size.value()) + " bytes";
  }
  if (cmd == "whoami") {
    return std::string{rooted() ? "root" : "shell"};
  }
  if (cmd == "echo") {
    return command.size() > 5 ? command.substr(5) : std::string{};
  }
  return err("unknown command: " + cmd);
}

}  // namespace blab::device
