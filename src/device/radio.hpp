// Radio models: WiFi, Bluetooth, cellular.
//
// Each radio has an idle draw when enabled and an active draw while moving
// traffic (scaled by throughput for WiFi). Activity is reference-counted so
// overlapping transfers (page fetch + scrcpy uplink) compose correctly.
#pragma once

#include <algorithm>
#include <cassert>

#include "device/power_profile.hpp"

namespace blab::device {

enum class RadioKind { kWifi, kBluetooth, kCellular };

const char* radio_kind_name(RadioKind kind);

class Radio {
 public:
  explicit Radio(RadioKind kind) : kind_{kind} {}

  RadioKind kind() const { return kind_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
    enabled_ = on;
    if (!on) {
      active_refs_ = 0;
      throughput_mbps_ = 0.0;
    }
  }

  /// Begin an activity window contributing `mbps` of traffic.
  void begin_activity(double mbps) {
    ++active_refs_;
    throughput_mbps_ += mbps;
  }
  void end_activity(double mbps) {
    // Tolerates a radio reset (disable) between begin and end.
    if (active_refs_ == 0) return;
    --active_refs_;
    throughput_mbps_ = std::max(0.0, throughput_mbps_ - mbps);
    if (active_refs_ == 0) throughput_mbps_ = 0.0;
  }
  bool active() const { return active_refs_ > 0; }
  double throughput_mbps() const { return throughput_mbps_; }

  double current_ma(const PowerProfile& p) const;

 private:
  RadioKind kind_;
  bool enabled_ = false;
  int active_refs_ = 0;
  double throughput_mbps_ = 0.0;
};

}  // namespace blab::device
