// Component power calibration for the test device.
//
// All device-side energy numbers flow from these constants. They are
// calibrated so the paper's anchor measurements reproduce on the simulated
// Samsung J7 Duo class device:
//   - Fig. 2: local video playback draws ~160 mA median; active mirroring
//     lifts it to ~220 mA (scrcpy encoder + WiFi uplink).
//   - Fig. 4: Brave browsing sits near 12% CPU, Chrome near 20%; the scrcpy
//     server adds ~5% CPU.
//   - Fig. 3: per-browser discharge orders Brave < Edge < Chrome < Firefox
//     with a constant mirroring offset.
#pragma once

namespace blab::device {

struct PowerProfile {
  /// Deep idle, screen off, radios idle (mA).
  double idle_ma = 20.0;
  /// Screen at zero brightness adds this much (panel + display pipeline).
  double screen_base_ma = 40.0;
  /// Extra at full brightness (linear in brightness).
  double screen_brightness_ma = 75.0;
  /// SoC cost of full (100%) CPU utilization; power rises super-linearly
  /// with load (DVFS residency in high-power states).
  double cpu_full_load_ma = 900.0;
  double cpu_load_exponent = 1.30;
  /// Hardware video decoder while playing (mA).
  double video_decoder_ma = 22.0;
  /// Hardware H.264 *encoder* while scrcpy mirrors (mA), excluding the CPU
  /// share of the scrcpy server process (modeled as a process).
  double video_encoder_ma = 12.0;
  /// WiFi radio: associated-idle and duty-cycled active draw (mA). The active
  /// figure is an *average* over packet bursts at ~Mbps rates, not the peak
  /// RX/TX power — hence well under datasheet numbers.
  double wifi_idle_ma = 6.0;
  double wifi_active_ma = 20.0;
  /// Scaling of WiFi active draw with throughput (mA per Mbps on top of
  /// wifi_active_ma).
  double wifi_per_mbps_ma = 2.0;
  /// Bluetooth: idle / active (mA).
  double bt_idle_ma = 2.0;
  double bt_active_ma = 18.0;
  /// Cellular radio active (mA) — higher than WiFi, per the literature.
  double cell_active_ma = 210.0;
  double cell_idle_ma = 8.0;
};

/// Default mid-brightness used by experiments (paper keeps it fixed).
inline constexpr double kDefaultBrightness = 0.5;

}  // namespace blab::device
