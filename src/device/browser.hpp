// Browser application models: Chrome, Firefox, Edge, Brave (§4.2).
//
// A Browser is an App whose CPU demand tracks its activity phase (idle /
// loading / scrolling) with per-engine constants, and whose page fetches move
// real bytes through the simulated network (so VPN tunnels, ad sizing and ad
// blocking all show up in both traffic and energy). Profiles are calibrated
// against the paper's Fig. 4: Brave's median device CPU ~12%, Chrome ~20%,
// and Fig. 3's energy ordering (Brave minimal, Firefox maximal).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "device/app.hpp"
#include "device/process.hpp"
#include "device/web_content.hpp"
#include "net/flow.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::device {

struct BrowserProfile {
  std::string name;
  std::string package;
  double idle_cpu = 0.05;    ///< foreground, static page
  double load_cpu = 0.30;    ///< parse/layout/paint during page load
  double scroll_cpu = 0.20;  ///< scroll handling + lazy content
  double cpu_jitter = 0.35;  ///< relative sigma of demand redraws
  bool blocks_ads = false;
  bool supports_lite_pages = false;
  bool needs_first_run_setup = false;

  static const BrowserProfile& chrome();
  static const BrowserProfile& firefox();
  static const BrowserProfile& edge();
  static const BrowserProfile& brave();
  static const std::vector<BrowserProfile>& all();
  /// Lookup by name ("Chrome") or package; nullptr when unknown.
  static const BrowserProfile* find(const std::string& name);
};

class Browser : public App {
 public:
  Browser(AndroidDevice& device, BrowserProfile profile,
          const WebCatalog& catalog = WebCatalog::news_sites(),
          std::string web_host = "web");

  const BrowserProfile& profile() const { return profile_; }

  void launch() override;
  void stop() override;
  void clear_state() override;

  // Input surface: typing fills the URL bar, Enter navigates, swipes scroll.
  void on_text(const std::string& text) override;
  void on_key(int keycode) override;
  void on_swipe(int dy) override;
  /// First-run dialogs are dismissed with taps (accept terms, skip sign-in).
  void on_tap(int x, int y) override;

  /// Programmatic navigation (UI-test automation path).
  util::Status navigate(const std::string& url);

  bool first_run_complete() const { return first_run_complete_; }
  bool page_loading() const { return loading_; }
  /// Whether Chrome-style lite pages transcoding is active right now
  /// (supported && not explicitly disabled && default-on in this region).
  bool lite_pages_active() const;

  std::size_t pages_loaded() const { return pages_loaded_; }
  std::uint64_t bytes_fetched() const { return bytes_fetched_; }
  const std::vector<util::Duration>& page_load_times() const {
    return page_load_times_;
  }

 private:
  void set_phase_demand(double demand);
  void begin_fetch(std::size_t bytes, bool is_page_load);
  void fetch_finished(std::size_t bytes, bool is_page_load);
  double estimate_throughput_mbps() const;
  class Radio& data_radio();

  BrowserProfile profile_;
  const WebCatalog& catalog_;
  std::string web_host_;

  Pid pid_;
  bool first_run_complete_ = false;
  int first_run_taps_ = 0;
  std::string url_bar_;
  bool loading_ = false;
  util::TimePoint load_started_;
  int scroll_bursts_ = 0;
  std::unique_ptr<net::Flow> flow_;
  double active_radio_mbps_ = 0.0;

  std::size_t pages_loaded_ = 0;
  std::uint64_t bytes_fetched_ = 0;
  std::vector<util::Duration> page_load_times_;
};

}  // namespace blab::device
