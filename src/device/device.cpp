#include "device/device.hpp"

#include <algorithm>

#include "device/android.hpp"
#include "util/logging.hpp"

namespace blab::device {
namespace {

/// How often stochastic process demands are redrawn. Short enough to give
/// measured CDFs realistic spread, long enough to keep event counts low.
constexpr auto kJitterPeriod = util::Duration::millis(150);

}  // namespace

const char* platform_name(Platform platform) {
  switch (platform) {
    case Platform::kAndroid: return "android";
    case Platform::kIos: return "ios";
  }
  return "?";
}

const char* device_class_name(DeviceClass device_class) {
  switch (device_class) {
    case DeviceClass::kPhone: return "phone";
    case DeviceClass::kTablet: return "tablet";
    case DeviceClass::kLaptop: return "laptop";
    case DeviceClass::kIot: return "iot";
  }
  return "?";
}

DeviceSpec DeviceSpec::laptop(std::string serial) {
  DeviceSpec spec;
  spec.model = "Ultrabook 13";
  spec.serial = std::move(serial);
  spec.device_class = DeviceClass::kLaptop;
  spec.api_level = 33;  // runs a desktop Linux/Android hybrid in the lab
  spec.cpu_cores = 4;
  spec.battery.capacity_mah = 4600.0;  // 3S pack
  spec.battery.nominal_voltage = 11.4;
  spec.battery.full_voltage = 12.6;
  spec.battery.empty_voltage = 9.0;
  spec.battery.internal_resistance_ohm = 0.15;
  spec.screen.width = 2560;
  spec.screen.height = 1600;
  // Bigger panel and SoC budget; currents stay in the Monsoon's 6 A range.
  spec.power.idle_ma = 90.0;
  spec.power.screen_base_ma = 180.0;
  spec.power.screen_brightness_ma = 260.0;
  spec.power.cpu_full_load_ma = 2600.0;
  return spec;
}

DeviceSpec DeviceSpec::iot_sensor(std::string serial) {
  DeviceSpec spec;
  spec.model = "SensorNode v2";
  spec.serial = std::move(serial);
  spec.device_class = DeviceClass::kIot;
  spec.api_level = 0;
  spec.headless = true;
  spec.cpu_cores = 1;
  spec.battery.capacity_mah = 800.0;
  spec.battery.nominal_voltage = 3.3;
  spec.battery.full_voltage = 3.6;
  spec.battery.empty_voltage = 2.8;
  // Microcontroller-class draw: the measurement is noise-floor bound.
  spec.power.idle_ma = 1.8;
  spec.power.screen_base_ma = 0.0;
  spec.power.screen_brightness_ma = 0.0;
  spec.power.cpu_full_load_ma = 28.0;
  spec.power.wifi_idle_ma = 1.1;
  spec.power.wifi_active_ma = 8.0;
  spec.power.wifi_per_mbps_ma = 3.0;
  return spec;
}

DeviceSpec DeviceSpec::iphone(std::string serial) {
  DeviceSpec spec;
  spec.model = "iPhone 8";
  spec.serial = std::move(serial);
  spec.platform = Platform::kIos;
  spec.api_level = 12;  // iOS 12
  spec.rooted = false;  // no jailbreaks in the lab
  spec.battery.capacity_mah = 1821.0;
  spec.cpu_cores = 6;
  // The A11's efficiency cores idle lower; peak SoC draw is comparable.
  spec.power.idle_ma = 16.0;
  spec.power.cpu_full_load_ma = 850.0;
  return spec;
}

AndroidDevice::AndroidDevice(sim::Simulator& sim, net::Network& net,
                             std::string host, DeviceSpec spec,
                             std::uint64_t seed)
    : sim_{sim},
      net_{net},
      host_{std::move(host)},
      spec_{std::move(spec)},
      rng_{seed},
      battery_{spec_.battery},
      screen_{spec_.screen},
      cpu_{spec_.cpu_cores},
      jitter_{sim, kJitterPeriod, [this] { jitter_tick(); }} {
  net_.add_host(host_);
  os_ = std::make_unique<AndroidOs>(*this);
  last_integration_ = sim_.now();
}

AndroidDevice::~AndroidDevice() = default;

void AndroidDevice::power_on() {
  if (powered_) return;
  powered_ = true;
  screen_.set_on(!spec_.headless);
  wifi_.set_enabled(true);
  bt_.set_enabled(spec_.device_class != DeviceClass::kIot);
  if (spec_.device_class == DeviceClass::kIot) {
    // A firmware main loop, not an OS process zoo.
    processes_.spawn("firmware", 0.05, 0.3);
  } else {
    // Baseline system daemons (surfaceflinger, system_server, ...).
    processes_.spawn("system_server", 0.02, 0.4);
    processes_.spawn("surfaceflinger", 0.01, 0.3);
  }
  last_integration_ = sim_.now();
  recompute_power();
  jitter_.start_after(kJitterPeriod);
  BLAB_INFO("device", spec_.serial << " booted (API " << spec_.api_level
                                   << ")");
}

void AndroidDevice::power_off() {
  if (!powered_) return;
  integrate_battery();
  jitter_.stop();
  powered_ = false;
  screen_.set_on(false);
  wifi_.set_enabled(false);
  bt_.set_enabled(false);
  cell_.set_enabled(false);
  decoder_active_ = false;
  encoder_active_ = false;
  // Processes die with the OS.
  while (!processes_.processes().empty()) {
    processes_.kill(processes_.processes().front().pid);
  }
  recompute_power();
}

void AndroidDevice::set_power_source(PowerSource source) {
  integrate_battery();
  source_ = source;
}

void AndroidDevice::set_usb_charge_ma(double ma) {
  if (usb_charge_ma_ == ma) return;
  usb_charge_ma_ = std::max(0.0, ma);
  recompute_power();
}

void AndroidDevice::set_decoder_active(bool on) {
  if (decoder_active_ == on) return;
  decoder_active_ = on;
  recompute_power();
}

void AndroidDevice::set_encoder_active(bool on) {
  if (encoder_active_ == on) return;
  encoder_active_ = on;
  recompute_power();
}

void AndroidDevice::set_network_region(std::string region) {
  region_ = std::move(region);
}

double AndroidDevice::demand_ma() const {
  if (!powered_) return 0.0;
  const PowerProfile& p = spec_.power;
  double ma = p.idle_ma;
  ma += screen_.current_ma(p);
  ma += CpuModel::current_ma(p, processes_.total_demand());
  ma += wifi_.current_ma(p);
  ma += bt_.current_ma(p);
  ma += cell_.current_ma(p);
  if (decoder_active_) ma += p.video_decoder_ma;
  if (encoder_active_) ma += p.video_encoder_ma;
  return ma;
}

void AndroidDevice::recompute_power() {
  integrate_battery();
  const double demand = demand_ma();
  cpu_.set_utilization(sim_.now(), powered_ ? processes_.total_demand() : 0.0);
  // USB charge current feeds the phone first; only the remainder is drawn
  // from the supply terminal the monitor measures.
  const double supply = std::max(0.0, demand - usb_charge_ma_);
  supply_.set(sim_.now(), supply);
  screen_on_.set(sim_.now(), powered_ && screen_.is_on() ? 1.0 : 0.0);
  radio_active_.set(sim_.now(),
                    powered_ && (wifi_.active() || cell_.active()) ? 1.0 : 0.0);
  last_demand_ma_ = demand;
}

void AndroidDevice::integrate_battery() {
  const util::TimePoint now = sim_.now();
  if (now > last_integration_ && source_ == PowerSource::kBattery) {
    const double from_battery = std::max(0.0, last_demand_ma_ - usb_charge_ma_);
    battery_.discharge(from_battery, now - last_integration_);
    if (battery_.depleted() && powered_ && from_battery > 0.0) {
      // A drained pack shuts the phone down — the idle-period USB charging
      // between experiments exists to prevent exactly this.
      last_integration_ = now;
      BLAB_WARN("device", spec_.serial << " battery depleted; shutting down");
      power_off();
      return;
    }
  }
  last_integration_ = now;
}

double AndroidDevice::current_ma(util::TimePoint t) const {
  return supply_.at(t);
}

std::vector<std::pair<util::TimePoint, double>>
AndroidDevice::current_segments(util::TimePoint t0, util::TimePoint t1) const {
  return supply_.segments(t0, t1);
}

void AndroidDevice::jitter_tick() {
  if (!powered_) return;
  processes_.redraw(rng_);
  recompute_power();
}

}  // namespace blab::device
