#include "device/web_content.hpp"

namespace blab::device {
namespace {

constexpr std::size_t kKiB = 1024;

}  // namespace

WebCatalog::WebCatalog(std::vector<WebPage> pages) : pages_{std::move(pages)} {}

const WebCatalog& WebCatalog::news_sites() {
  // Sizes follow HTTP Archive medians for news front pages circa 2019:
  // ~2-4 MB total with roughly a quarter attributable to ads/trackers.
  static const WebCatalog catalog{{
      {"news-a.example", 2200 * kKiB, 700 * kKiB},
      {"news-b.example", 1800 * kKiB, 640 * kKiB},
      {"news-c.example", 2600 * kKiB, 820 * kKiB},
      {"news-d.example", 1500 * kKiB, 520 * kKiB},
      {"news-e.example", 3100 * kKiB, 940 * kKiB},
      {"news-f.example", 2000 * kKiB, 610 * kKiB},
      {"news-g.example", 2400 * kKiB, 760 * kKiB},
      {"news-h.example", 1700 * kKiB, 560 * kKiB},
      {"news-i.example", 2900 * kKiB, 880 * kKiB},
      {"news-j.example", 2100 * kKiB, 680 * kKiB},
  }};
  return catalog;
}

const WebPage* WebCatalog::find(const std::string& url) const {
  for (const auto& p : pages_) {
    if (p.url == url) return &p;
  }
  return nullptr;
}

double WebCatalog::ad_region_factor(const std::string& region) {
  // Calibrated so a non-blocking browser's total bytes drop ~20% in Japan
  // (ads are ~25% of the page; 0.25 * 0.8 reduction = 20% of total).
  if (region == "Japan") return 0.20;
  if (region == "South Africa") return 0.85;
  if (region == "China") return 0.90;
  if (region == "Brazil") return 0.95;
  return 1.0;  // home location and CA, USA serve full-size ads
}

bool WebCatalog::lite_pages_default_on(const std::string& region) {
  // §4.3 anecdote: lite pages activated by default in South Africa and Japan.
  return region == "South Africa" || region == "Japan";
}

std::size_t WebCatalog::page_bytes(const WebPage& page,
                                   const std::string& region, bool block_ads,
                                   bool lite_pages_active) {
  double content = static_cast<double>(page.content_bytes);
  double ads = static_cast<double>(page.ads_bytes) * ad_region_factor(region);
  if (block_ads) ads *= 0.08;  // blockers still fetch some first-party promo
  if (lite_pages_active) content *= 0.40;
  return static_cast<std::size_t>(content + ads);
}

}  // namespace blab::device
