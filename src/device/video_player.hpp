// Local video player app.
//
// Fig. 2's accuracy experiment plays an mp4 pre-loaded on the sdcard for five
// minutes — chosen because continuous frame changes force the mirroring
// encoder to work constantly. Playback engages the hardware decoder, a small
// jittered CPU demand, and a high screen content-change rate.
#pragma once

#include <string>

#include "device/app.hpp"
#include "device/process.hpp"
#include "util/result.hpp"

namespace blab::device {

class VideoPlayerApp : public App {
 public:
  explicit VideoPlayerApp(AndroidDevice& device,
                          std::string package = "com.example.videoplayer");

  void launch() override;
  void stop() override;

  /// Start looped playback of a local file (no network involved).
  util::Status play(const std::string& file);
  util::Status pause();
  bool playing() const { return playing_; }
  const std::string& current_file() const { return file_; }

 private:
  Pid pid_;
  bool playing_ = false;
  std::string file_;
};

}  // namespace blab::device
