#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace blab::obs {
namespace {

// Fallback instruments returned on kind mismatch so callers never hold a
// dangling or null reference. Shared process-wide; their values are garbage
// by definition and never exported.
Counter& dummy_counter() {
  static Counter c;
  return c;
}
Gauge& dummy_gauge() {
  static Gauge g;
  return g;
}
Histogram& dummy_histogram() {
  static Histogram h{{1.0}};
  return h;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return labels;
}

}  // namespace

std::string series_key(std::string_view name, const Labels& labels) {
  std::string key{name};
  if (!labels.empty()) {
    key += '{';
    bool sep = false;
    for (const Label& l : labels) {
      if (sep) key += ',';
      sep = true;
      key += l.key;
      key += "=\"";
      key += l.value;
      key += '"';
    }
    key += '}';
  }
  return key;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_{std::move(bounds)} {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::bucket_index(double v) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v, const Exemplar& ex) {
  if (std::isnan(v)) return;
  const std::size_t idx = bucket_index(v);
  // Attach when the observation sits in the upper (1 - q) tail of what the
  // histogram has seen so far: the fraction of prior observations in buckets
  // strictly below this one reaches the quantile. The first observation
  // always qualifies (an empty histogram has no bulk to compare against).
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < idx; ++i) {
    below += counts_[i].load(std::memory_order_relaxed);
  }
  const bool attach =
      total == 0 || static_cast<double>(below) >=
                        exemplar_quantile_ * static_cast<double>(total);
  observe(v);
  if (!attach || !ex.valid()) return;
  std::lock_guard<std::mutex> lock{ex_mu_};
  if (exemplars_ == nullptr) {
    exemplars_ = std::make_unique<Exemplar[]>(bucket_count());
  }
  Exemplar stamped = ex;
  stamped.value = v;
  exemplars_[idx] = stamped;
}

void Histogram::set_exemplar_quantile(double q) {
  exemplar_quantile_ = std::clamp(q, 0.0, 1.0);
}

Exemplar Histogram::exemplar(std::size_t i) const {
  std::lock_guard<std::mutex> lock{ex_mu_};
  if (exemplars_ == nullptr || i >= bucket_count()) return {};
  return exemplars_[i];
}

const SeriesSnapshot* MetricsSnapshot::find(std::string_view name,
                                            const Labels& labels) const {
  const Labels want = [&] {
    Labels copy = labels;
    std::sort(copy.begin(), copy.end(),
              [](const Label& a, const Label& b) { return a.key < b.key; });
    return copy;
  }();
  for (const SeriesSnapshot& s : series) {
    if (s.name == name && s.labels == want) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(std::string_view name, const Labels& labels,
                                 double fallback) const {
  const SeriesSnapshot* s = find(name, labels);
  return s != nullptr ? s->value : fallback;
}

MetricsRegistry::Series* MetricsRegistry::find_or_create(
    std::string_view name, Labels labels, MetricKind kind,
    std::vector<double> bounds) {
  labels = sorted_labels(std::move(labels));
  std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock{mu_};
  auto it = series_.find(key);
  if (it != series_.end()) {
    if (it->second.kind != kind) {
      BLAB_ERROR("obs", "metric kind mismatch for " << key
                                                    << "; returning dummy");
      return nullptr;
    }
    return &it->second;
  }
  Series s;
  s.name = std::string{name};
  s.labels = std::move(labels);
  s.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: s.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      s.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  auto [pos, inserted] = series_.emplace(std::move(key), std::move(s));
  const std::size_t n = ++cardinality_[pos->second.name];
  if (n > kSeriesWarnCardinality &&
      cardinality_warned_.first(pos->second.name)) {
    BLAB_WARN("obs", "metric " << pos->second.name << " exceeded "
                               << kSeriesWarnCardinality
                               << " label combinations; check label values");
  }
  return &pos->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  Series* s =
      find_or_create(name, std::move(labels), MetricKind::kCounter, {});
  return s != nullptr ? *s->counter : dummy_counter();
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  Series* s = find_or_create(name, std::move(labels), MetricKind::kGauge, {});
  return s != nullptr ? *s->gauge : dummy_gauge();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  Series* s = find_or_create(name, std::move(labels), MetricKind::kHistogram,
                             std::move(bounds));
  return s != nullptr ? *s->histogram : dummy_histogram();
}

void MetricsRegistry::add_collector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock{mu_};
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::snapshot() {
  // Collectors may register/update series, so run them before taking the
  // lock (they call back into the registry).
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock{mu_};
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn();

  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock{mu_};
  snap.series.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    SeriesSnapshot out;
    out.name = s.name;
    out.labels = s.labels;
    out.kind = s.kind;
    switch (s.kind) {
      case MetricKind::kCounter:
        out.value = static_cast<double>(s.counter->value());
        break;
      case MetricKind::kGauge: out.value = s.gauge->value(); break;
      case MetricKind::kHistogram: {
        out.bounds = s.histogram->bounds();
        out.buckets.resize(s.histogram->bucket_count());
        bool any_exemplar = false;
        std::vector<Exemplar> exemplars(out.buckets.size());
        for (std::size_t i = 0; i < out.buckets.size(); ++i) {
          out.buckets[i] = s.histogram->bucket(i);
          exemplars[i] = s.histogram->exemplar(i);
          any_exemplar = any_exemplar || exemplars[i].valid();
        }
        if (any_exemplar) out.exemplars = std::move(exemplars);
        out.count = s.histogram->count();
        out.sum = s.histogram->sum();
        break;
      }
    }
    snap.series.push_back(std::move(out));
  }
  return snap;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock{mu_};
  return series_.size();
}

}  // namespace blab::obs
