#include "obs/span.hpp"

#include <utility>

namespace blab::obs {

Tracer::Tracer(std::function<std::int64_t()> clock, std::size_t max_spans)
    : clock_{std::move(clock)}, max_spans_{max_spans} {}

std::uint64_t Tracer::begin(std::string_view component, std::string_view name) {
  Open o;
  o.record.id = next_id_++;
  o.record.parent = open_.empty() ? 0 : open_.back().record.id;
  o.record.depth = static_cast<std::uint32_t>(open_.size());
  o.record.component = std::string{component};
  o.record.name = std::string{name};
  o.record.start_us = clock_();
  open_.push_back(std::move(o));
  return open_.back().record.id;
}

void Tracer::end(std::uint64_t id) {
  const std::int64_t now = clock_();
  while (!open_.empty()) {
    Open o = std::move(open_.back());
    open_.pop_back();
    const bool match = o.record.id == id;
    o.record.end_us = now;
    if (finished_.size() < max_spans_) {
      finished_.push_back(std::move(o.record));
    } else {
      ++dropped_;
    }
    if (match) return;
  }
}

void Tracer::clear() {
  open_.clear();
  finished_.clear();
  dropped_ = 0;
  next_id_ = 1;
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const SpanRecord& s : finished_) {
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent
        << ",\"depth\":" << s.depth << ",\"component\":\"" << s.component
        << "\",\"name\":\"" << s.name << "\",\"start_us\":" << s.start_us
        << ",\"end_us\":" << s.end_us << "}\n";
  }
}

}  // namespace blab::obs
