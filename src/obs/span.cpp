#include "obs/span.hpp"

#include <cstddef>
#include <utility>

namespace blab::obs {
namespace {

void append_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string_view SpanRecord::attr_str(std::string_view key) const {
  for (const SpanAttr& a : attrs) {
    if (a.key == key && a.kind == SpanAttr::Kind::kString) return a.s;
  }
  return {};
}

Tracer::Tracer(std::function<std::int64_t()> clock, std::size_t max_spans)
    : clock_{std::move(clock)}, max_spans_{max_spans} {}

std::size_t Tracer::policy_index(std::string_view component,
                                 std::string_view name) const {
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    if (policies_[i].component == component && policies_[i].name == name) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

void Tracer::set_sampling(std::string_view component, std::string_view name,
                          std::uint64_t keep_one_in) {
  const std::size_t idx = policy_index(component, name);
  if (keep_one_in <= 1) {
    if (idx != static_cast<std::size_t>(-1)) {
      // Policy indices shift on erase, so undecided tail buffers (keyed by
      // index) must drain first. Flushing at full fidelity loses no weight;
      // this is a config-time operation, not a hot path.
      while (!tail_pending_.empty()) {
        const auto key = tail_pending_.begin()->first;
        flush_tail_pending(key.first, key.second, /*keep_all=*/true);
      }
      tail_decisions_.clear();
      policies_.erase(policies_.begin() + static_cast<std::ptrdiff_t>(idx));
      // Family state keys are policy indices; rebuilding them after an
      // erase is not worth it for a config-time operation — drop them all.
      family_state_.clear();
    }
    return;
  }
  if (idx != static_cast<std::size_t>(-1)) {
    // Switching a tail family back to head mode strands its undecided
    // buffer; flush it at full fidelity before changing the policy.
    std::vector<std::uint64_t> traces;
    for (const auto& [key, pending] : tail_pending_) {
      if (key.first == idx && !pending.empty()) traces.push_back(key.second);
    }
    for (const std::uint64_t trace : traces) {
      flush_tail_pending(idx, trace, /*keep_all=*/true);
    }
    policies_[idx].keep_one_in = keep_one_in;
    policies_[idx].tail_threshold_us = 0;
    return;
  }
  policies_.push_back(
      SamplingPolicy{std::string{component}, std::string{name}, keep_one_in});
}

void Tracer::set_tail_sampling(std::string_view component,
                               std::string_view name,
                               std::uint64_t keep_one_in,
                               std::int64_t tail_threshold_us) {
  set_sampling(component, name, keep_one_in);
  const std::size_t idx = policy_index(component, name);
  if (idx != static_cast<std::size_t>(-1) && tail_threshold_us > 0) {
    policies_[idx].tail_threshold_us = tail_threshold_us;
  }
}

SpanRecord Tracer::make_record(std::string_view component,
                               std::string_view name, TraceContext ctx,
                               bool inherit_stack) {
  SpanRecord rec;
  rec.id = next_id_++;
  if (ctx.valid()) {
    rec.trace = ctx.trace;
    rec.parent = ctx.span;
  } else if (inherit_stack && !open_.empty()) {
    rec.trace = open_.back().record.trace;
    rec.parent = open_.back().record.id;
  } else {
    rec.trace = next_trace_++;
    rec.parent = 0;
  }
  rec.component = std::string{component};
  rec.name = std::string{name};
  rec.start_us = clock_();
  // Head-based sampling decision, made at begin time so the policy is
  // independent of how long the span stays open: the first span of each
  // (family, trace) is always kept, then 1 in keep_one_in. Tail-mode
  // families defer the decision to finish_record (the head counter then
  // only advances for spans that actually fall back to head sampling).
  const std::size_t fam = policy_index(component, name);
  if (fam != static_cast<std::size_t>(-1) &&
      policies_[fam].tail_threshold_us <= 0) {
    FamilyState& st = family_state_[{fam, rec.trace}];
    if (st.count % policies_[fam].keep_one_in != 0) rec.weight = 0;
    ++st.count;
  }
  return rec;
}

std::uint64_t Tracer::begin(std::string_view component, std::string_view name,
                            TraceContext ctx) {
  Open o;
  o.record = make_record(component, name, ctx, /*inherit_stack=*/true);
  o.record.depth = static_cast<std::uint32_t>(open_.size());
  open_.push_back(std::move(o));
  return open_.back().record.id;
}

std::uint64_t Tracer::begin_detached(std::string_view component,
                                     std::string_view name, TraceContext ctx) {
  SpanRecord rec = make_record(component, name, ctx, /*inherit_stack=*/false);
  const std::uint64_t id = rec.id;
  detached_.emplace(id, std::move(rec));
  return id;
}

void Tracer::finish_record(SpanRecord&& record, std::int64_t now) {
  record.end_us = now;
  // A trace root ending is the tail-sampling decision point: resolve the
  // trace's pending buffers BEFORE committing the root, so kept children
  // precede their root in finish order.
  if (record.parent == 0) {
    resolve_tail(record.trace, record.end_us - record.start_us);
  }
  const std::size_t fam = policy_index(record.component, record.name);
  if (record.weight == 0) {
    // Sampled out at begin time: never buffered. Its unit of weight moves
    // to the last kept span of the same family and trace, keeping
    // sum-of-weights exactly equal to the true span count.
    ++sampled_out_;
    const auto st = fam == static_cast<std::size_t>(-1)
                        ? family_state_.end()
                        : family_state_.find({fam, record.trace});
    if (st != family_state_.end() && st->second.has_kept) {
      finished_[st->second.last_kept].weight += 1;
    } else {
      ++weight_uncredited_;
    }
    return;
  }
  if (fam != static_cast<std::size_t>(-1) &&
      policies_[fam].tail_threshold_us > 0) {
    const auto dec = tail_decisions_.find(record.trace);
    if (dec == tail_decisions_.end()) {
      // Root still open: buffer, undecided. A runaway trace flushes its
      // prefix through head sampling rather than growing without bound.
      const std::pair<std::size_t, std::uint64_t> key{fam, record.trace};
      const auto pending = tail_pending_.find(key);
      if (pending != tail_pending_.end() &&
          pending->second.size() >= kMaxTailPendingPerTrace) {
        ++tail_overflows_;
        flush_tail_pending(fam, record.trace, /*keep_all=*/false);
      }
      tail_pending_[key].push_back(std::move(record));
      ++tail_pending_total_;
      return;
    }
    // Straggler: finished after the root's decision — apply it directly.
    if (dec->second.root_duration_us >= policies_[fam].tail_threshold_us) {
      commit_record(std::move(record), fam);
    } else {
      head_decide(std::move(record), fam);
    }
    return;
  }
  commit_record(std::move(record), fam);
}

void Tracer::commit_record(SpanRecord&& record, std::size_t fam) {
  if (finished_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  auto it = trace_index_.find(record.trace);
  if (it == trace_index_.end() && trace_index_.size() < kMaxIndexedTraces) {
    it = trace_index_.emplace(record.trace, std::vector<std::uint32_t>{}).first;
  }
  if (it != trace_index_.end() &&
      it->second.size() < kMaxIndexedSpansPerTrace) {
    it->second.push_back(static_cast<std::uint32_t>(finished_.size()));
  } else {
    ++index_dropped_;
  }
  if (fam != static_cast<std::size_t>(-1)) {
    FamilyState& st = family_state_[{fam, record.trace}];
    st.last_kept = static_cast<std::uint32_t>(finished_.size());
    st.has_kept = true;
  }
  finished_.push_back(std::move(record));
}

void Tracer::drop_record(const SpanRecord& record, std::size_t fam) {
  ++sampled_out_;
  const auto st = fam == static_cast<std::size_t>(-1)
                      ? family_state_.end()
                      : family_state_.find({fam, record.trace});
  if (st != family_state_.end() && st->second.has_kept) {
    finished_[st->second.last_kept].weight += record.weight;
  } else {
    weight_uncredited_ += record.weight;
  }
}

void Tracer::head_decide(SpanRecord&& record, std::size_t fam) {
  FamilyState& st = family_state_[{fam, record.trace}];
  const bool keep = st.count % policies_[fam].keep_one_in == 0;
  ++st.count;
  if (keep) {
    commit_record(std::move(record), fam);
  } else {
    drop_record(record, fam);
  }
}

void Tracer::resolve_tail(std::uint64_t trace, std::int64_t root_duration_us) {
  bool any_tail = false;
  for (const SamplingPolicy& p : policies_) {
    if (p.tail_threshold_us > 0) {
      any_tail = true;
      break;
    }
  }
  if (!any_tail) return;
  tail_decisions_[trace] = TailDecision{root_duration_us};
  bool slow = false;
  for (std::size_t fam = 0; fam < policies_.size(); ++fam) {
    if (policies_[fam].tail_threshold_us <= 0) continue;
    const auto it = tail_pending_.find({fam, trace});
    if (it == tail_pending_.end() || it->second.empty()) continue;
    const bool keep_all =
        root_duration_us >= policies_[fam].tail_threshold_us;
    slow = slow || keep_all;
    flush_tail_pending(fam, trace, keep_all);
  }
  if (slow) ++tail_slow_traces_;
}

void Tracer::flush_tail_pending(std::size_t fam, std::uint64_t trace,
                                bool keep_all) {
  const auto it = tail_pending_.find({fam, trace});
  if (it == tail_pending_.end()) return;
  std::vector<SpanRecord> pending = std::move(it->second);
  tail_pending_.erase(it);
  tail_pending_total_ -= pending.size();
  for (SpanRecord& rec : pending) {
    if (keep_all) {
      commit_record(std::move(rec), fam);
    } else {
      head_decide(std::move(rec), fam);
    }
  }
}

std::uint64_t Tracer::tail_pending(std::string_view component,
                                   std::string_view name) const {
  const std::size_t fam = policy_index(component, name);
  if (fam == static_cast<std::size_t>(-1)) return 0;
  std::uint64_t n = 0;
  for (const auto& [key, pending] : tail_pending_) {
    if (key.first == fam) n += pending.size();
  }
  return n;
}

void Tracer::end(std::uint64_t id) {
  if (id == 0) return;  // null handle (e.g. ScopedSpan over a null tracer)
  const std::int64_t now = clock_();
  auto det = detached_.find(id);
  if (det != detached_.end()) {
    SpanRecord rec = std::move(det->second);
    detached_.erase(det);
    finish_record(std::move(rec), now);
    return;
  }
  std::size_t pos = open_.size();
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].record.id == id) {
      pos = i;
      break;
    }
  }
  if (pos == open_.size()) {
    ++end_mismatches_;
    if (misuse_once_.first("unmatched-end")) {
      BLAB_WARN_KV("obs", "span end without a matching open span; ignored",
                   {{"span_id", std::to_string(id)}});
    }
    return;
  }
  if (pos + 1 != open_.size()) {
    ++end_mismatches_;
    if (misuse_once_.first("out-of-order-end")) {
      BLAB_WARN_KV("obs",
                   "span ended out of order; closing spans left open above it",
                   {{"span_id", std::to_string(id)},
                    {"leaked", std::to_string(open_.size() - pos - 1)}});
    }
  }
  while (open_.size() > pos) {
    Open o = std::move(open_.back());
    open_.pop_back();
    finish_record(std::move(o.record), now);
  }
}

TraceContext Tracer::current() const {
  if (open_.empty()) return {};
  return TraceContext{open_.back().record.trace, open_.back().record.id};
}

TraceContext Tracer::context_of(std::uint64_t id) const {
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].record.id == id) {
      return TraceContext{open_[i].record.trace, id};
    }
  }
  auto det = detached_.find(id);
  if (det != detached_.end()) return TraceContext{det->second.trace, id};
  return {};
}

SpanRecord* Tracer::find_open(std::uint64_t id) {
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].record.id == id) return &open_[i].record;
  }
  auto det = detached_.find(id);
  if (det != detached_.end()) return &det->second;
  return nullptr;
}

void Tracer::set_attr(std::uint64_t id, std::string_view key,
                      std::int64_t value) {
  SpanRecord* rec = find_open(id);
  if (rec == nullptr || rec->attrs.size() >= kMaxAttrsPerSpan) return;
  SpanAttr a;
  a.key = std::string{key};
  a.kind = SpanAttr::Kind::kInt;
  a.i = value;
  rec->attrs.push_back(std::move(a));
}

void Tracer::set_attr(std::uint64_t id, std::string_view key, double value) {
  SpanRecord* rec = find_open(id);
  if (rec == nullptr || rec->attrs.size() >= kMaxAttrsPerSpan) return;
  SpanAttr a;
  a.key = std::string{key};
  a.kind = SpanAttr::Kind::kDouble;
  a.d = value;
  rec->attrs.push_back(std::move(a));
}

void Tracer::set_attr(std::uint64_t id, std::string_view key,
                      std::string_view value) {
  SpanRecord* rec = find_open(id);
  if (rec == nullptr || rec->attrs.size() >= kMaxAttrsPerSpan) return;
  SpanAttr a;
  a.key = std::string{key};
  a.kind = SpanAttr::Kind::kString;
  a.s = std::string{value};
  rec->attrs.push_back(std::move(a));
}

void Tracer::add_link(std::uint64_t id, SpanLink link) {
  SpanRecord* rec = find_open(id);
  if (rec == nullptr || rec->links.size() >= kMaxLinksPerSpan) return;
  rec->links.push_back(std::move(link));
  ++links_added_;
}

std::vector<std::uint64_t> Tracer::trace_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(trace_index_.size());
  for (const auto& [trace, indices] : trace_index_) {
    if (!indices.empty()) ids.push_back(trace);
  }
  return ids;
}

std::vector<const SpanRecord*> Tracer::spans_in(std::uint64_t trace) const {
  std::vector<const SpanRecord*> out;
  auto it = trace_index_.find(trace);
  if (it == trace_index_.end()) return out;
  out.reserve(it->second.size());
  for (std::uint32_t idx : it->second) out.push_back(&finished_[idx]);
  return out;
}

std::size_t Tracer::open_in_trace(std::uint64_t trace) const {
  std::size_t n = 0;
  for (const Open& o : open_) {
    if (o.record.trace == trace) ++n;
  }
  for (const auto& [id, rec] : detached_) {
    if (rec.trace == trace) ++n;
  }
  return n;
}

std::uint64_t Tracer::find_trace_by_root_attr(std::string_view key,
                                              std::string_view value) const {
  for (const auto& [trace, indices] : trace_index_) {
    for (std::uint32_t idx : indices) {
      const SpanRecord& rec = finished_[idx];
      if (rec.parent == 0 && rec.attr_str(key) == value) return trace;
    }
  }
  return 0;
}

void Tracer::clear() {
  open_.clear();
  detached_.clear();
  finished_.clear();
  trace_index_.clear();
  family_state_.clear();  // policies survive: they are configuration
  tail_pending_.clear();
  tail_decisions_.clear();
  tail_pending_total_ = 0;
  tail_slow_traces_ = 0;
  tail_overflows_ = 0;
  dropped_ = 0;
  end_mismatches_ = 0;
  index_dropped_ = 0;
  sampled_out_ = 0;
  weight_uncredited_ = 0;
  links_added_ = 0;
  next_id_ = 1;
  next_trace_ = 1;
  misuse_once_.reset();
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const SpanRecord& s : finished_) {
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent
        << ",\"trace\":" << s.trace << ",\"depth\":" << s.depth
        << ",\"component\":\"" << s.component << "\",\"name\":\"" << s.name
        << "\",\"start_us\":" << s.start_us << ",\"end_us\":" << s.end_us;
    if (s.weight != 1) out << ",\"weight\":" << s.weight;
    if (!s.links.empty()) {
      out << ",\"links\":[";
      bool first = true;
      for (const SpanLink& l : s.links) {
        if (!first) out << ',';
        first = false;
        out << "{\"trace\":" << l.trace << ",\"span\":" << l.span
            << ",\"kind\":";
        append_json_string(out, l.kind);
        out << '}';
      }
      out << ']';
    }
    if (!s.attrs.empty()) {
      out << ",\"attrs\":{";
      bool first = true;
      for (const SpanAttr& a : s.attrs) {
        if (!first) out << ',';
        first = false;
        append_json_string(out, a.key);
        out << ':';
        switch (a.kind) {
          case SpanAttr::Kind::kInt:
            out << a.i;
            break;
          case SpanAttr::Kind::kDouble:
            out << a.d;
            break;
          case SpanAttr::Kind::kString:
            append_json_string(out, a.s);
            break;
        }
      }
      out << '}';
    }
    out << "}\n";
  }
}

}  // namespace blab::obs
