#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "util/strings.hpp"

namespace blab::obs {
namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool sep = false;
  for (const Label& l : labels) {
    if (sep) out += ',';
    sep = true;
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string render_labels_with(const Labels& labels, std::string_view key,
                               std::string_view value) {
  std::string out = "{";
  bool sep = false;
  for (const Label& l : labels) {
    if (sep) out += ',';
    sep = true;
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  }
  if (sep) out += ',';
  out += std::string{key} + "=\"" + std::string{value} + "\"";
  out += '}';
  return out;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

/// JSON-safe double: NaN/Inf have no JSON literal, so render as strings.
std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return json_string(format_metric_value(v));
  return format_metric_value(v);
}

std::string exemplar_suffix(const Exemplar& ex) {
  return " # {trace_id=\"" + std::to_string(ex.trace) + "\",ts_us=\"" +
         std::to_string(ex.ts_us) + "\"} " + format_metric_value(ex.value);
}

void append_trace_event(std::string& out, const SpanRecord& s, int pid,
                        bool& sep) {
  if (sep) out += ',';
  sep = true;
  out += "{\"name\":" + json_string(s.name) +
         ",\"cat\":" + json_string(s.component) +
         ",\"ph\":\"X\",\"ts\":" + std::to_string(s.start_us) +
         ",\"dur\":" + std::to_string(s.duration_us()) +
         ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(s.trace) +
         ",\"args\":{\"span\":" + std::to_string(s.id) +
         ",\"parent\":" + std::to_string(s.parent) +
         ",\"trace\":" + std::to_string(s.trace);
  if (s.weight != 1) out += ",\"weight\":" + std::to_string(s.weight);
  // Cross-trace links render as "link.<kind>" args naming the target, so a
  // Perfetto query can hop from a retry's root to its predecessor trace.
  for (const SpanLink& l : s.links) {
    out += ',' + json_string("link." + l.kind) + ':' +
           json_string(std::to_string(l.trace) + ":" + std::to_string(l.span));
  }
  for (const SpanAttr& a : s.attrs) {
    out += ',' + json_string(a.key) + ':';
    switch (a.kind) {
      case SpanAttr::Kind::kInt: out += std::to_string(a.i); break;
      case SpanAttr::Kind::kDouble: out += json_number(a.d); break;
      case SpanAttr::Kind::kString: out += json_string(a.s); break;
    }
  }
  out += "}}";
}

}  // namespace

std::string format_metric_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return util::format_double(v, 6);
}

std::string encode_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
      last_name = s.name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += s.name + render_labels(s.labels) + " " +
               format_metric_value(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const auto bucket_exemplar = [&](std::size_t i) -> std::string {
          if (i >= s.exemplars.size() || !s.exemplars[i].valid()) return "";
          return exemplar_suffix(s.exemplars[i]);
        };
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += s.name + "_bucket" +
                 render_labels_with(s.labels, "le",
                                    format_metric_value(s.bounds[i])) +
                 " " + std::to_string(cumulative) + bucket_exemplar(i) + "\n";
        }
        cumulative += s.buckets.empty() ? 0 : s.buckets.back();
        out += s.name + "_bucket" +
               render_labels_with(s.labels, "le", "+Inf") + " " +
               std::to_string(cumulative) +
               bucket_exemplar(s.bounds.size()) + "\n";
        out += s.name + "_sum" + render_labels(s.labels) + " " +
               format_metric_value(s.sum) + "\n";
        out += s.name + "_count" + render_labels(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string encode_json(const MetricsSnapshot& snap) {
  std::string out = "{\"series\":[";
  bool sep = false;
  for (const SeriesSnapshot& s : snap.series) {
    if (sep) out += ',';
    sep = true;
    out += "{\"name\":" + json_string(s.name) + ",\"kind\":\"" +
           kind_name(s.kind) + "\",\"labels\":{";
    bool lsep = false;
    for (const Label& l : s.labels) {
      if (lsep) out += ',';
      lsep = true;
      out += json_string(l.key) + ":" + json_string(l.value);
    }
    out += "}";
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += ",\"value\":" + format_metric_value(s.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i > 0) out += ',';
          out += format_metric_value(s.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(s.buckets[i]);
        }
        out += "],\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + format_metric_value(s.sum);
        if (!s.exemplars.empty()) {
          out += ",\"exemplars\":[";
          bool esep = false;
          for (std::size_t i = 0; i < s.exemplars.size(); ++i) {
            if (!s.exemplars[i].valid()) continue;
            if (esep) out += ',';
            esep = true;
            out += "{\"bucket\":" + std::to_string(i) +
                   ",\"trace_id\":" + std::to_string(s.exemplars[i].trace) +
                   ",\"ts_us\":" + std::to_string(s.exemplars[i].ts_us) +
                   ",\"value\":" + json_number(s.exemplars[i].value) + "}";
          }
          out += "]";
        }
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps) {
  // Keyed map keeps the merged output in the same sorted order as a
  // registry snapshot.
  std::map<std::string, SeriesSnapshot> merged;
  for (const MetricsSnapshot& snap : snaps) {
    for (const SeriesSnapshot& s : snap.series) {
      const std::string key = series_key(s.name, s.labels);
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, s);
        continue;
      }
      SeriesSnapshot& dst = it->second;
      if (dst.kind != s.kind) continue;  // mismatched; keep first
      switch (s.kind) {
        case MetricKind::kCounter: dst.value += s.value; break;
        case MetricKind::kGauge:
          if (s.value != 0.0) dst.value = s.value;
          break;
        case MetricKind::kHistogram:
          if (dst.bounds == s.bounds) {
            for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
              dst.buckets[i] += s.buckets[i];
            }
            if (!s.exemplars.empty()) {
              if (dst.exemplars.empty()) {
                dst.exemplars = s.exemplars;
              } else {
                // Per bucket, the latest sim timestamp wins; ties keep the
                // earlier snapshot's exemplar so merge order stays stable.
                for (std::size_t i = 0; i < dst.exemplars.size(); ++i) {
                  if (s.exemplars[i].valid() &&
                      (!dst.exemplars[i].valid() ||
                       s.exemplars[i].ts_us > dst.exemplars[i].ts_us)) {
                    dst.exemplars[i] = s.exemplars[i];
                  }
                }
              }
            }
            dst.count += s.count;
            dst.sum += s.sum;
          }
          break;
      }
    }
  }
  MetricsSnapshot out;
  out.series.reserve(merged.size());
  for (auto& [key, s] : merged) out.series.push_back(std::move(s));
  return out;
}

std::string encode_trace_json(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool sep = false;
  for (const SpanRecord& s : spans) append_trace_event(out, s, 1, sep);
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string encode_trace_json(const std::vector<const SpanRecord*>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool sep = false;
  for (const SpanRecord* s : spans) {
    if (s != nullptr) append_trace_event(out, *s, 1, sep);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string encode_trace_list_json(const Tracer& tracer) {
  std::string out = "{\"traces\":[";
  bool sep = false;
  for (std::uint64_t trace : tracer.trace_ids()) {
    const auto spans = tracer.spans_in(trace);
    const SpanRecord* root = nullptr;
    std::int64_t start = 0;
    std::int64_t end = 0;
    bool first = true;
    for (const SpanRecord* s : spans) {
      if (s->parent == 0 && root == nullptr) root = s;
      start = first ? s->start_us : std::min(start, s->start_us);
      end = first ? s->end_us : std::max(end, s->end_us);
      first = false;
    }
    if (sep) out += ',';
    sep = true;
    out += "{\"trace_id\":" + std::to_string(trace) + ",\"root\":" +
           json_string(root != nullptr ? root->name : "") + ",\"component\":" +
           json_string(root != nullptr ? root->component : "") + ",\"job\":" +
           json_string(root != nullptr ? root->attr_str("job") : "") +
           ",\"spans\":" + std::to_string(spans.size()) +
           ",\"open\":" + std::to_string(tracer.open_in_trace(trace)) +
           ",\"start_us\":" + std::to_string(start) +
           ",\"end_us\":" + std::to_string(end) + "}";
  }
  out += "]}";
  return out;
}

std::string encode_trace_json_corpus(
    const std::vector<std::pair<std::uint64_t, const std::vector<SpanRecord>*>>&
        per_seed) {
  std::string out = "{\"traceEvents\":[";
  bool sep = false;
  int pid = 0;
  for (const auto& [seed, spans] : per_seed) {
    ++pid;
    if (sep) out += ',';
    sep = true;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"args\":{\"name\":\"seed " +
           std::to_string(seed) + "\"}}";
    if (spans == nullptr) continue;
    for (const SpanRecord& s : *spans) append_trace_event(out, s, pid, sep);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace blab::obs
