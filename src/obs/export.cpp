#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "util/strings.hpp"

namespace blab::obs {
namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool sep = false;
  for (const Label& l : labels) {
    if (sep) out += ',';
    sep = true;
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string render_labels_with(const Labels& labels, std::string_view key,
                               std::string_view value) {
  std::string out = "{";
  bool sep = false;
  for (const Label& l : labels) {
    if (sep) out += ',';
    sep = true;
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  }
  if (sep) out += ',';
  out += std::string{key} + "=\"" + std::string{value} + "\"";
  out += '}';
  return out;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_metric_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return util::format_double(v, 6);
}

std::string encode_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
      last_name = s.name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += s.name + render_labels(s.labels) + " " +
               format_metric_value(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += s.name + "_bucket" +
                 render_labels_with(s.labels, "le",
                                    format_metric_value(s.bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += s.buckets.empty() ? 0 : s.buckets.back();
        out += s.name + "_bucket" +
               render_labels_with(s.labels, "le", "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += s.name + "_sum" + render_labels(s.labels) + " " +
               format_metric_value(s.sum) + "\n";
        out += s.name + "_count" + render_labels(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string encode_json(const MetricsSnapshot& snap) {
  std::string out = "{\"series\":[";
  bool sep = false;
  for (const SeriesSnapshot& s : snap.series) {
    if (sep) out += ',';
    sep = true;
    out += "{\"name\":" + json_string(s.name) + ",\"kind\":\"" +
           kind_name(s.kind) + "\",\"labels\":{";
    bool lsep = false;
    for (const Label& l : s.labels) {
      if (lsep) out += ',';
      lsep = true;
      out += json_string(l.key) + ":" + json_string(l.value);
    }
    out += "}";
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += ",\"value\":" + format_metric_value(s.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i > 0) out += ',';
          out += format_metric_value(s.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(s.buckets[i]);
        }
        out += "],\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + format_metric_value(s.sum);
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps) {
  // Keyed map keeps the merged output in the same sorted order as a
  // registry snapshot.
  std::map<std::string, SeriesSnapshot> merged;
  for (const MetricsSnapshot& snap : snaps) {
    for (const SeriesSnapshot& s : snap.series) {
      const std::string key = series_key(s.name, s.labels);
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, s);
        continue;
      }
      SeriesSnapshot& dst = it->second;
      if (dst.kind != s.kind) continue;  // mismatched; keep first
      switch (s.kind) {
        case MetricKind::kCounter: dst.value += s.value; break;
        case MetricKind::kGauge:
          if (s.value != 0.0) dst.value = s.value;
          break;
        case MetricKind::kHistogram:
          if (dst.bounds == s.bounds) {
            for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
              dst.buckets[i] += s.buckets[i];
            }
            dst.count += s.count;
            dst.sum += s.sum;
          }
          break;
      }
    }
  }
  MetricsSnapshot out;
  out.series.reserve(merged.size());
  for (auto& [key, s] : merged) out.series.push_back(std::move(s));
  return out;
}

}  // namespace blab::obs
