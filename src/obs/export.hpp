// Snapshot encoders: Prometheus text exposition and a JSON document.
//
// Both encoders are deterministic given a snapshot: series arrive sorted
// from MetricsRegistry::snapshot() and numbers are formatted with a fixed
// rule (integral values print as integers, everything else with six decimal
// places), so byte-identical snapshots encode to byte-identical text — the
// property the DST determinism check asserts on.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace blab::obs {

/// Prometheus text exposition format v0.0.4: `# TYPE` lines, cumulative
/// `le`-bucketed histograms with `_bucket`/`_sum`/`_count`. Buckets that
/// hold an exemplar render an OpenMetrics-style ` # {trace_id=..,ts_us=..}
/// value` suffix linking the outlier to its trace.
std::string encode_prometheus(const MetricsSnapshot& snap);

/// One JSON object: {"series":[{"name":..,"labels":{..},"kind":..,..}]}.
std::string encode_json(const MetricsSnapshot& snap);

/// Sum counters and histogram buckets across snapshots; gauges keep the
/// last non-default value seen. Used to fold a corpus of per-seed snapshots
/// into one bench artifact.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps);

/// Deterministic number rendering shared by both encoders.
std::string format_metric_value(double v);

/// Chrome trace-event JSON (Perfetto-loadable): one complete ("ph":"X")
/// event per finished span, ts/dur in microseconds, tid = trace id so each
/// job's causal tree renders as its own track. Deterministic: events are
/// emitted in the order given (a tracer's finish order).
std::string encode_trace_json(const std::vector<SpanRecord>& spans);
std::string encode_trace_json(const std::vector<const SpanRecord*>& spans);

/// Summary of every indexed trace in a tracer: {"traces":[{"trace_id":..,
/// "root":..,"component":..,"job":..,"spans":..,"start_us":..,"end_us":..}]}.
/// `job` is the root span's "job" attribute ("" for non-job traces).
std::string encode_trace_list_json(const Tracer& tracer);

/// Fold per-seed span sets into one Perfetto document: each seed becomes a
/// process (pid = position + 1, named "seed <seed>" via metadata events), so
/// a corpus run loads as one inspectable timeline.
std::string encode_trace_json_corpus(
    const std::vector<std::pair<std::uint64_t, const std::vector<SpanRecord>*>>&
        per_seed);

}  // namespace blab::obs
