// Snapshot encoders: Prometheus text exposition and a JSON document.
//
// Both encoders are deterministic given a snapshot: series arrive sorted
// from MetricsRegistry::snapshot() and numbers are formatted with a fixed
// rule (integral values print as integers, everything else with six decimal
// places), so byte-identical snapshots encode to byte-identical text — the
// property the DST determinism check asserts on.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace blab::obs {

/// Prometheus text exposition format v0.0.4: `# TYPE` lines, cumulative
/// `le`-bucketed histograms with `_bucket`/`_sum`/`_count`.
std::string encode_prometheus(const MetricsSnapshot& snap);

/// One JSON object: {"series":[{"name":..,"labels":{..},"kind":..,..}]}.
std::string encode_json(const MetricsSnapshot& snap);

/// Sum counters and histogram buckets across snapshots; gauges keep the
/// last non-default value seen. Used to fold a corpus of per-seed snapshots
/// into one bench artifact.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps);

/// Deterministic number rendering shared by both encoders.
std::string format_metric_value(double v);

}  // namespace blab::obs
