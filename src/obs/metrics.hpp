// Deterministic, sim-time-aware metrics registry (DESIGN.md §9).
//
// Counters, gauges and fixed-boundary histograms, named and optionally
// labelled. Design constraints, in order:
//
//   * Cheap on hot paths. Components resolve their instruments ONCE (at
//     construction) and keep raw pointers; an increment is a single relaxed
//     atomic op — no locks, no map lookups, no allocation. Only the
//     registration path takes the registry mutex.
//   * Deterministic. Nothing here reads a wall clock or consumes randomness,
//     so registering and hitting metrics cannot perturb a DST run; two runs
//     of the same seed produce byte-identical snapshots (series are keyed and
//     emitted in sorted order, and every value is accumulated in a fixed
//     arithmetic order on the single simulator thread).
//   * Safe under the pooled corpus runner. Each scenario owns its Simulator
//     and therefore its registry, so workers never share instruments; the
//     atomics make even a shared registry (tests, dashboards) race-free.
//
// Naming convention: `blab_<component>_<what>[_total]` — counters end in
// `_total`, gauges and histograms do not. Label values are free-form but low
// cardinality; the registry warns once per metric name when a name exceeds
// kSeriesWarnCardinality series (a typo'd per-sample label would otherwise
// grow the registry without bound).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace blab::obs {

/// One metric label; series identity is (name, sorted labels).
struct Label {
  std::string key;
  std::string value;

  bool operator==(const Label&) const = default;
};
using Labels = std::vector<Label>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Trace reference attached to a histogram observation: the trace that
/// produced the value and the sim timestamp it was observed at. trace 0
/// means "no exemplar".
struct Exemplar {
  std::uint64_t trace = 0;
  std::int64_t ts_us = 0;
  double value = 0.0;

  bool valid() const { return trace != 0; }
  bool operator==(const Exemplar&) const = default;
};

/// Fixed-boundary histogram. `bounds` are ascending inclusive upper bounds
/// (Prometheus `le` semantics); an implicit +Inf bucket catches the rest.
/// Buckets are stored non-cumulative; the text encoder accumulates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  /// Observe and, when the value is an outlier, keep `ex` as that bucket's
  /// exemplar. An observation qualifies when the histogram is empty or the
  /// fraction of prior observations in buckets strictly below its own is at
  /// least the exemplar quantile — so exemplars point at the slow tail, not
  /// the bulk. The latest qualifying exemplar per bucket wins.
  void observe(double v, const Exemplar& ex);

  /// Quantile threshold for exemplar attachment (default 0.90). Values
  /// outside [0, 1] are clamped.
  void set_exemplar_quantile(double q);
  double exemplar_quantile() const { return exemplar_quantile_; }
  /// Exemplar of bucket i; !valid() when the bucket has none yet.
  Exemplar exemplar(std::size_t i) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::size_t bucket_index(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  double exemplar_quantile_ = 0.90;
  // Exemplars are cold (outliers only) and carry two fields, so a small
  // mutex beats widening the hot-path atomics.
  mutable std::mutex ex_mu_;
  std::unique_ptr<Exemplar[]> exemplars_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one series, detached from the live instruments.
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                  ///< counter / gauge
  std::vector<double> bounds;          ///< histogram upper bounds
  std::vector<std::uint64_t> buckets;  ///< non-cumulative, +Inf last
  std::vector<Exemplar> exemplars;     ///< per bucket; empty when none set
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<SeriesSnapshot> series;  ///< sorted by (name, labels)

  const SeriesSnapshot* find(std::string_view name,
                             const Labels& labels = {}) const;
  /// Counter/gauge value, or `fallback` when the series does not exist.
  double value_or(std::string_view name, const Labels& labels = {},
                  double fallback = 0.0) const;
  bool empty() const { return series.empty(); }
};

class MetricsRegistry {
 public:
  /// Series-per-name ceiling before the one-shot cardinality warning fires.
  static constexpr std::size_t kSeriesWarnCardinality = 256;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned references stay valid for the registry's
  /// lifetime (instruments are heap-allocated and never destroyed early), so
  /// callers cache them at construction and hit them lock-free. A kind
  /// mismatch against an existing series logs an error and returns a
  /// process-wide dummy instrument so the caller never dereferences null.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {});

  /// Collectors run (in registration order) at the start of every snapshot,
  /// to publish values that live outside the registry — e.g. the simulator
  /// kernel's counters or a container's current size — into gauges.
  void add_collector(std::function<void()> fn);

  /// Deterministic point-in-time copy: runs collectors, then copies every
  /// series in sorted key order.
  MetricsSnapshot snapshot();

  std::size_t series_count() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series* find_or_create(std::string_view name, Labels labels,
                         MetricKind kind, std::vector<double> bounds);

  mutable std::mutex mu_;
  // std::map keeps snapshot iteration in sorted key order — the determinism
  // contract rides on it.
  std::map<std::string, Series> series_;
  std::map<std::string, std::size_t, std::less<>> cardinality_;
  util::OncePerKey cardinality_warned_;
  std::vector<std::function<void()>> collectors_;
};

/// Canonical series key: name plus sorted rendered labels. Exposed for the
/// encoders and tests.
std::string series_key(std::string_view name, const Labels& labels);

}  // namespace blab::obs
