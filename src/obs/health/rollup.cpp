#include "obs/health/rollup.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace blab::health {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Mutable accumulator behind one RollupGroup; quantiles pool per-capture
/// tier samples and are reduced at the end.
struct GroupAcc {
  RollupGroup group;
  util::Cdf pooled;
  bool has_range = false;
};

}  // namespace

const char* rollup_scope_name(RollupScope scope) {
  switch (scope) {
    case RollupScope::kFleet: return "fleet";
    case RollupScope::kJob: return "job";
    case RollupScope::kVantage: return "vantage";
  }
  return "unknown";
}

std::optional<RollupScope> parse_rollup_scope(std::string_view text) {
  if (text == "fleet") return RollupScope::kFleet;
  if (text == "job") return RollupScope::kJob;
  if (text == "vantage") return RollupScope::kVantage;
  return std::nullopt;
}

void RollupEngine::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    scans_ = nullptr;
    captures_scanned_ = nullptr;
    return;
  }
  scans_ = &registry->counter("blab_rollup_scans_total");
  captures_scanned_ = &registry->counter("blab_rollup_captures_scanned_total");
}

Rollup RollupEngine::compute(RollupScope scope, util::TimePoint t0,
                             util::TimePoint t1) {
  Rollup out;
  out.scope = scope;
  out.t0 = t0;
  out.t1 = t1;

  // std::map keeps group iteration (and therefore JSON output) sorted.
  std::map<std::string, GroupAcc> groups;

  for (const store::CaptureId& id : store_.catalog(t0, t1)) {
    auto summary = store_.summary(id);
    if (!summary.ok()) {
      ++out.captures_skipped;
      continue;
    }
    const store::CaptureSummary& s = summary.value();

    CaptureContext ctx;
    if (resolver_) ctx = resolver_(id.workspace);
    if (ctx.vantage.empty()) ctx.vantage = "unassigned";
    if (ctx.device_class.empty()) ctx.device_class = "unknown";

    std::string key;
    switch (scope) {
      case RollupScope::kFleet: key = "fleet"; break;
      case RollupScope::kJob: key = id.workspace; break;
      case RollupScope::kVantage: key = ctx.vantage; break;
    }

    GroupAcc& acc = groups[key];
    RollupGroup& g = acc.group;
    ++g.captures;
    g.samples += s.samples;
    g.duration_s += s.duration.to_seconds();
    g.charge_mah += s.charge_mah;
    g.energy_mwh += s.energy_mwh;
    g.mean_ma += s.mean_ma * static_cast<double>(s.samples);
    if (!acc.has_range) {
      g.min_ma = s.min_ma;
      g.max_ma = s.max_ma;
      acc.has_range = true;
    } else {
      g.min_ma = std::min(g.min_ma, s.min_ma);
      g.max_ma = std::max(g.max_ma, s.max_ma);
    }

    ClassBreakdown& slice = g.by_class[ctx.device_class];
    ++slice.captures;
    slice.samples += s.samples;
    slice.energy_mwh += s.energy_mwh;

    // Tail quantiles pool each capture's finest surviving tier; a capture
    // reduced past its tiers simply contributes nothing to the pool.
    if (auto cdf = store_.percentiles(id); cdf.ok()) {
      acc.pooled.add_all(cdf.value().samples());
    }
    ++out.captures_scanned;
  }

  out.groups.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    RollupGroup& g = acc.group;
    g.key = key;
    if (g.samples > 0) g.mean_ma /= static_cast<double>(g.samples);
    if (!acc.pooled.empty()) {
      g.p95_ma = acc.pooled.quantile(0.95);
      g.p99_ma = acc.pooled.quantile(0.99);
    }
    out.groups.push_back(std::move(g));
  }

  if (scans_ != nullptr) scans_->inc();
  if (captures_scanned_ != nullptr)
    captures_scanned_->inc(out.captures_scanned);
  return out;
}

std::string encode_rollup_json(const Rollup& rollup) {
  using obs::format_metric_value;
  std::string out = "{\"scope\":";
  append_json_string(out, rollup_scope_name(rollup.scope));
  out += ",\"t0_us\":" + std::to_string(rollup.t0.us());
  out += ",\"t1_us\":" + std::to_string(rollup.t1.us());
  out += ",\"captures\":" + std::to_string(rollup.captures_scanned);
  out += ",\"skipped\":" + std::to_string(rollup.captures_skipped);
  out += ",\"groups\":[";
  bool first_group = true;
  for (const RollupGroup& g : rollup.groups) {
    if (!first_group) out += ',';
    first_group = false;
    out += "{\"key\":";
    append_json_string(out, g.key);
    out += ",\"captures\":" + std::to_string(g.captures);
    out += ",\"samples\":" + std::to_string(g.samples);
    out += ",\"duration_s\":" + format_metric_value(g.duration_s);
    out += ",\"charge_mah\":" + format_metric_value(g.charge_mah);
    out += ",\"energy_mwh\":" + format_metric_value(g.energy_mwh);
    out += ",\"mean_ma\":" + format_metric_value(g.mean_ma);
    out += ",\"min_ma\":" + format_metric_value(g.min_ma);
    out += ",\"max_ma\":" + format_metric_value(g.max_ma);
    out += ",\"p95_ma\":" + format_metric_value(g.p95_ma);
    out += ",\"p99_ma\":" + format_metric_value(g.p99_ma);
    out += ",\"by_class\":{";
    bool first_class = true;
    for (const auto& [cls, slice] : g.by_class) {
      if (!first_class) out += ',';
      first_class = false;
      append_json_string(out, cls);
      out += ":{\"captures\":" + std::to_string(slice.captures);
      out += ",\"samples\":" + std::to_string(slice.samples);
      out += ",\"energy_mwh\":" + format_metric_value(slice.energy_mwh);
      out += '}';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace blab::health
