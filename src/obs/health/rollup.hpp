// RollupEngine: whole-fleet / whole-job aggregates over the persisted
// capture catalog (DESIGN.md §15).
//
// A rollup is a single deterministic scan of CaptureStore::catalog() — the
// merged warm + cold id set, filtered by stored_at — reduced group-by-group
// from chunk-footer summaries. Nothing here decodes raw samples: energy,
// charge and mean come from CaptureStore::summary() (footer sums), and the
// tail quantiles pool each capture's surviving-tier bucket means through
// CaptureStore::percentiles(). Cold records are warmed transparently by the
// store's existing cold path, so a rollup right after recovery sees exactly
// what a rollup before the crash saw.
//
// Determinism contract (the DST rollup oracle leans on this): captures are
// folded in ascending CaptureId order with plain double accumulation, so a
// rollup of the same catalog is bit-identical across runs — and equals the
// oracle's own sum over per-capture energies computed the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/capture_store.hpp"
#include "util/time.hpp"

namespace blab::obs {
class Counter;
class MetricsRegistry;
}  // namespace blab::obs

namespace blab::health {

/// Deployment context for one capture's workspace, resolved by the owner of
/// the job table (AccessServer maps workspace -> job -> assignment). Empty
/// fields group under "unassigned" / "unknown".
struct CaptureContext {
  std::string vantage;       ///< node label the job ran on
  std::string device_class;  ///< e.g. "android-phone", "ios-phone"
  std::string owner;         ///< submitting experimenter
};
using ContextResolver =
    std::function<CaptureContext(const std::string& workspace)>;

enum class RollupScope : std::uint8_t { kFleet = 0, kJob = 1, kVantage = 2 };
const char* rollup_scope_name(RollupScope scope);
std::optional<RollupScope> parse_rollup_scope(std::string_view text);

/// Per-device-class slice of a group.
struct ClassBreakdown {
  std::size_t captures = 0;
  std::uint64_t samples = 0;
  double energy_mwh = 0.0;
};

/// One group of the rollup: the whole fleet, one job workspace, or one
/// vantage point, depending on scope.
struct RollupGroup {
  std::string key;
  std::size_t captures = 0;
  std::uint64_t samples = 0;
  double duration_s = 0.0;
  double charge_mah = 0.0;
  double energy_mwh = 0.0;
  double mean_ma = 0.0;  ///< sample-weighted mean of per-capture means
  double min_ma = 0.0;
  double max_ma = 0.0;
  double p95_ma = 0.0;  ///< pooled tier-bucket means across the group
  double p99_ma = 0.0;
  std::map<std::string, ClassBreakdown> by_class;
};

struct Rollup {
  RollupScope scope = RollupScope::kFleet;
  util::TimePoint t0;
  util::TimePoint t1 = util::TimePoint::max();
  std::size_t captures_scanned = 0;
  /// Catalog entries whose summary failed (purged between catalog and read).
  std::size_t captures_skipped = 0;
  std::vector<RollupGroup> groups;  ///< ascending by key
};

class RollupEngine {
 public:
  explicit RollupEngine(store::CaptureStore& store) : store_{store} {}

  /// Workspace -> context mapping for vantage grouping and the device-class
  /// breakdown. Without one, every capture lands in "unassigned"/"unknown".
  void set_context_resolver(ContextResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Mirror scan counters into a registry (blab_rollup_*). Null-safe.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// One catalog scan over stored_at in [t0, t1), grouped per `scope`.
  Rollup compute(RollupScope scope,
                 util::TimePoint t0 = util::TimePoint::epoch(),
                 util::TimePoint t1 = util::TimePoint::max());

 private:
  store::CaptureStore& store_;
  ContextResolver resolver_;
  obs::Counter* scans_ = nullptr;
  obs::Counter* captures_scanned_ = nullptr;
};

/// Deterministic JSON document for GET /rollup: sorted groups, fixed number
/// formatting (obs::format_metric_value), byte-identical for equal rollups.
std::string encode_rollup_json(const Rollup& rollup);

}  // namespace blab::health
