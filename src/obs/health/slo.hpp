// SloEngine: declarative service-level objectives evaluated over sliding
// sim-time windows with multi-window burn-rate alerting (DESIGN.md §15).
//
// Each SloSpec names a bad/total signal pair drawn from the unsampled
// MetricsRegistry (counter ratios, or the fraction of histogram
// observations above a bound), an objective (target good fraction), and two
// windows. Every evaluation snapshots the registry, appends a cumulative
// (bad, total) sample to the spec's history, and computes the burn rate —
// bad_fraction / error_budget — over both windows. An alert fires only when
// BOTH windows burn (the classic multi-window rule: the long window proves
// the problem is real, the short window proves it is still happening), at
// two severities: slow burn (ticket) and fast burn (page).
//
// Alert states drive a per-vantage health state machine
// (healthy/degraded/unhealthy): escalation is immediate, recovery steps
// down one level only after kRecoveryEvals consecutive clean evaluations.
// Transitions emit health/slo_transition spans and blab_slo_* metrics; the
// maintenance tier consults health_of() before scheduling risky work.
//
// Deterministic by construction: evaluation consumes no randomness and
// reads only simulated time plus registry counters, so the health timeline
// is a pure function of the DST seed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace blab::obs {
class Tracer;
}  // namespace blab::obs

namespace blab::health {

/// One metric series reference: name + exact label set.
struct SeriesRef {
  std::string name;
  obs::Labels labels;
};

struct SloSignal {
  enum class Kind : std::uint8_t {
    /// bad = sum(bad refs), total = sum(total refs); both counters.
    kCounterRatio = 0,
    /// total refs name histograms; bad = observations above `above_bound`
    /// (bucket-resolution: the bound should match a configured boundary).
    kHistogramAbove = 1,
  };
  Kind kind = Kind::kCounterRatio;
  std::vector<SeriesRef> bad;
  std::vector<SeriesRef> total;
  double above_bound = 0.0;
};

enum class AlertState : std::uint8_t { kOk = 0, kSlowBurn = 1, kFastBurn = 2 };
const char* alert_state_name(AlertState state);

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kUnhealthy = 2,
};
const char* health_state_name(HealthState state);

struct SloSpec {
  std::string name;     ///< metric/label-safe identifier, e.g. "job-completion"
  std::string vantage;  ///< "" = fleet-wide; else feeds that vantage's health
  SloSignal signal;
  double objective = 0.99;  ///< target good fraction; budget = 1 - objective
  util::Duration long_window = util::Duration::minutes(30);
  util::Duration short_window = util::Duration::minutes(5);
  double fast_burn = 14.0;
  double slow_burn = 2.0;
};

struct SloStatus {
  std::string name;
  std::string vantage;
  AlertState state = AlertState::kOk;
  double burn_long = 0.0;
  double burn_short = 0.0;
  double bad_fraction_long = 0.0;
  std::uint64_t transitions = 0;
};

struct VantageHealth {
  std::string vantage;  ///< "fleet" aggregates the fleet-wide specs
  HealthState state = HealthState::kHealthy;
  std::uint64_t transitions = 0;
};

class SloEngine {
 public:
  /// Consecutive clean evaluations required to step health down one level.
  static constexpr std::uint64_t kRecoveryEvals = 3;

  /// The registry is both the signal source (snapshot per evaluation) and
  /// the sink for blab_slo_* / blab_health_* instruments. The tracer (may
  /// be null) receives transition spans.
  explicit SloEngine(obs::MetricsRegistry& registry,
                     obs::Tracer* tracer = nullptr);

  void add_spec(SloSpec spec);
  std::size_t spec_count() const { return specs_.size(); }

  /// Evaluate every spec against a fresh registry snapshot at `now`.
  void evaluate(util::TimePoint now);

  std::uint64_t evaluations() const { return evaluations_; }
  std::vector<SloStatus> statuses() const;
  /// Health of one vantage ("fleet" for the fleet-wide bucket); unknown
  /// vantages are healthy.
  HealthState health_of(const std::string& vantage) const;
  /// Worst state across every tracked vantage — what maintenance consults.
  HealthState overall() const;
  std::vector<VantageHealth> vantages() const;  ///< ascending by name

 private:
  struct WindowSample {
    util::TimePoint t;
    double bad = 0.0;
    double total = 0.0;
  };
  struct SpecState {
    SloSpec spec;
    SloStatus status;
    std::deque<WindowSample> history;  ///< pruned to long_window
    obs::Gauge* state_gauge = nullptr;
    obs::Gauge* burn_long_gauge = nullptr;
    obs::Gauge* burn_short_gauge = nullptr;
  };
  struct VantageState {
    VantageHealth health;
    std::uint64_t clean_evals = 0;
    obs::Gauge* gauge = nullptr;
  };

  static WindowSample sample_signal(const SloSignal& signal,
                                    const obs::MetricsSnapshot& snap,
                                    util::TimePoint now);
  /// (bad, total) delta over [now - window, now]; burn rate per the spec.
  double burn_over(const SpecState& st, util::TimePoint now,
                   util::Duration window, double* bad_fraction) const;
  void transition_spec(SpecState& st, AlertState next);
  void evaluate_vantage(const std::string& vantage, AlertState worst);
  VantageState& vantage_state(const std::string& vantage);

  obs::MetricsRegistry& registry_;
  obs::Tracer* tracer_;
  std::vector<SpecState> specs_;
  // std::map keeps /health vantage ordering deterministic.
  std::map<std::string, VantageState> vantages_;
  std::uint64_t evaluations_ = 0;
};

/// Deterministic JSON for GET /health: overall state, per-vantage states,
/// per-SLO burn rates. Byte-identical for identical engine state.
std::string encode_health_json(const SloEngine& engine);

/// The stock BatteryLab SLO set: job completion rate, queue-wait p99,
/// capture clamp rate, plus a per-vantage job error rate for each label in
/// `vantages` (fed by blab_scheduler_node_jobs_*_total).
std::vector<SloSpec> default_slo_specs(
    const std::vector<std::string>& vantages);

}  // namespace blab::health
