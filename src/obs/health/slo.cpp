#include "obs/health/slo.hpp"

#include <algorithm>
#include <utility>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace blab::health {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  out += '"';
}

double sum_counters(const std::vector<SeriesRef>& refs,
                    const obs::MetricsSnapshot& snap) {
  double sum = 0.0;
  for (const SeriesRef& ref : refs) sum += snap.value_or(ref.name, ref.labels);
  return sum;
}

}  // namespace

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kOk: return "ok";
    case AlertState::kSlowBurn: return "slow_burn";
    case AlertState::kFastBurn: return "fast_burn";
  }
  return "unknown";
}

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

SloEngine::SloEngine(obs::MetricsRegistry& registry, obs::Tracer* tracer)
    : registry_{registry}, tracer_{tracer} {}

void SloEngine::add_spec(SloSpec spec) {
  SpecState st;
  st.status.name = spec.name;
  st.status.vantage = spec.vantage.empty() ? "fleet" : spec.vantage;
  // Per-vantage specs share a name ("vantage-errors"), so series identity
  // needs the vantage label as well.
  const std::string& vp = st.status.vantage;
  st.state_gauge =
      &registry_.gauge("blab_slo_state", {{"slo", spec.name}, {"vp", vp}});
  st.burn_long_gauge =
      &registry_.gauge("blab_slo_burn_rate",
                       {{"slo", spec.name}, {"vp", vp}, {"window", "long"}});
  st.burn_short_gauge =
      &registry_.gauge("blab_slo_burn_rate",
                       {{"slo", spec.name}, {"vp", vp}, {"window", "short"}});
  st.spec = std::move(spec);
  // Materialize the vantage bucket (and its gauge) eagerly so /health lists
  // every tracked vantage from the first evaluation on.
  vantage_state(st.status.vantage);
  specs_.push_back(std::move(st));
}

SloEngine::WindowSample SloEngine::sample_signal(
    const SloSignal& signal, const obs::MetricsSnapshot& snap,
    util::TimePoint now) {
  WindowSample sample;
  sample.t = now;
  switch (signal.kind) {
    case SloSignal::Kind::kCounterRatio:
      sample.bad = sum_counters(signal.bad, snap);
      sample.total = sum_counters(signal.total, snap);
      break;
    case SloSignal::Kind::kHistogramAbove:
      for (const SeriesRef& ref : signal.total) {
        const obs::SeriesSnapshot* s = snap.find(ref.name, ref.labels);
        if (s == nullptr || s->kind != obs::MetricKind::kHistogram) continue;
        sample.total += static_cast<double>(s->count);
        // Buckets are non-cumulative with the +Inf bucket last; an
        // observation is bad when its bucket's upper bound exceeds the
        // threshold (the +Inf bucket always is).
        for (std::size_t i = 0; i < s->buckets.size(); ++i) {
          const bool above = i >= s->bounds.size() ||
                             s->bounds[i] > signal.above_bound;
          if (above) sample.bad += static_cast<double>(s->buckets[i]);
        }
      }
      break;
  }
  return sample;
}

double SloEngine::burn_over(const SpecState& st, util::TimePoint now,
                            util::Duration window,
                            double* bad_fraction) const {
  *bad_fraction = 0.0;
  if (st.history.empty()) return 0.0;
  const WindowSample& cur = st.history.back();
  // Baseline: the latest sample at or before the window start; during cold
  // start (history shorter than the window) the earliest sample stands in,
  // shrinking the window rather than inventing traffic.
  const util::TimePoint start = now - window;
  const WindowSample* base = &st.history.front();
  for (const WindowSample& s : st.history) {
    if (s.t <= start) base = &s;
    else break;
  }
  const double total = cur.total - base->total;
  if (total <= 0.0) return 0.0;
  const double bad = std::clamp(cur.bad - base->bad, 0.0, total);
  *bad_fraction = bad / total;
  const double budget = std::max(1e-9, 1.0 - st.spec.objective);
  return *bad_fraction / budget;
}

void SloEngine::evaluate(util::TimePoint now) {
  ++evaluations_;
  registry_.counter("blab_slo_evaluations_total").inc();
  const obs::MetricsSnapshot snap = registry_.snapshot();
  // Worst alert state per vantage bucket this round.
  std::map<std::string, AlertState> worst;
  for (auto& [vantage, state] : vantages_) worst[vantage] = AlertState::kOk;

  for (SpecState& st : specs_) {
    st.history.push_back(sample_signal(st.spec.signal, snap, now));
    // Prune to the long window, keeping one older sample as the baseline.
    const util::TimePoint horizon = now - st.spec.long_window;
    while (st.history.size() >= 2 && st.history[1].t <= horizon)
      st.history.pop_front();

    double bf_short = 0.0;
    st.status.burn_long =
        burn_over(st, now, st.spec.long_window, &st.status.bad_fraction_long);
    st.status.burn_short =
        burn_over(st, now, st.spec.short_window, &bf_short);

    AlertState next = AlertState::kOk;
    if (st.status.burn_long >= st.spec.fast_burn &&
        st.status.burn_short >= st.spec.fast_burn) {
      next = AlertState::kFastBurn;
    } else if (st.status.burn_long >= st.spec.slow_burn &&
               st.status.burn_short >= st.spec.slow_burn) {
      next = AlertState::kSlowBurn;
    }
    if (next != st.status.state) transition_spec(st, next);
    st.state_gauge->set(static_cast<double>(next));
    st.burn_long_gauge->set(st.status.burn_long);
    st.burn_short_gauge->set(st.status.burn_short);

    AlertState& bucket = worst[st.status.vantage];
    bucket = std::max(bucket, next);
  }

  for (const auto& [vantage, state] : worst) evaluate_vantage(vantage, state);
}

void SloEngine::transition_spec(SpecState& st, AlertState next) {
  const AlertState prev = st.status.state;
  st.status.state = next;
  ++st.status.transitions;
  registry_
      .counter("blab_slo_transitions_total",
               {{"slo", st.spec.name},
                {"to", alert_state_name(next)},
                {"vp", st.status.vantage}})
      .inc();
  if (tracer_ != nullptr) {
    const std::uint64_t span = tracer_->begin("health", "slo_transition");
    tracer_->set_attr(span, "slo", st.spec.name);
    tracer_->set_attr(span, "from", alert_state_name(prev));
    tracer_->set_attr(span, "to", alert_state_name(next));
    tracer_->set_attr(span, "burn_long", st.status.burn_long);
    tracer_->set_attr(span, "burn_short", st.status.burn_short);
    tracer_->end(span);
  }
}

void SloEngine::evaluate_vantage(const std::string& vantage,
                                 AlertState worst) {
  VantageState& vs = vantage_state(vantage);
  HealthState target = HealthState::kHealthy;
  if (worst == AlertState::kFastBurn) target = HealthState::kUnhealthy;
  else if (worst == AlertState::kSlowBurn) target = HealthState::kDegraded;

  const HealthState prev = vs.health.state;
  HealthState next = prev;
  if (target >= prev) {
    // Escalation (or steady state) is immediate.
    next = target;
    vs.clean_evals = 0;
  } else {
    // Recovery is hysteretic: one level down per kRecoveryEvals consecutive
    // better-than-current rounds, so a flapping signal cannot oscillate the
    // state machine at evaluation frequency.
    if (++vs.clean_evals >= kRecoveryEvals) {
      next = static_cast<HealthState>(static_cast<std::uint8_t>(prev) - 1);
      vs.clean_evals = 0;
    }
  }

  if (next != prev) {
    vs.health.state = next;
    ++vs.health.transitions;
    registry_
        .counter("blab_health_transitions_total",
                 {{"vp", vantage}, {"to", health_state_name(next)}})
        .inc();
    if (tracer_ != nullptr) {
      const std::uint64_t span =
          tracer_->begin("health", "vantage_transition");
      tracer_->set_attr(span, "vp", vantage);
      tracer_->set_attr(span, "from", health_state_name(prev));
      tracer_->set_attr(span, "to", health_state_name(next));
      tracer_->end(span);
    }
  }
  vs.gauge->set(static_cast<double>(vs.health.state));
}

SloEngine::VantageState& SloEngine::vantage_state(const std::string& vantage) {
  auto [it, inserted] = vantages_.try_emplace(vantage);
  if (inserted) {
    it->second.health.vantage = vantage;
    it->second.gauge = &registry_.gauge("blab_health_state", {{"vp", vantage}});
  }
  return it->second;
}

std::vector<SloStatus> SloEngine::statuses() const {
  std::vector<SloStatus> out;
  out.reserve(specs_.size());
  for (const SpecState& st : specs_) out.push_back(st.status);
  return out;
}

HealthState SloEngine::health_of(const std::string& vantage) const {
  const auto it = vantages_.find(vantage);
  return it == vantages_.end() ? HealthState::kHealthy : it->second.health.state;
}

HealthState SloEngine::overall() const {
  HealthState worst = HealthState::kHealthy;
  for (const auto& [vantage, vs] : vantages_)
    worst = std::max(worst, vs.health.state);
  return worst;
}

std::vector<VantageHealth> SloEngine::vantages() const {
  std::vector<VantageHealth> out;
  out.reserve(vantages_.size());
  for (const auto& [vantage, vs] : vantages_) out.push_back(vs.health);
  return out;
}

std::string encode_health_json(const SloEngine& engine) {
  using obs::format_metric_value;
  std::string out = "{\"overall\":";
  append_json_string(out, health_state_name(engine.overall()));
  out += ",\"evaluations\":" + std::to_string(engine.evaluations());
  out += ",\"vantages\":[";
  bool first = true;
  for (const VantageHealth& v : engine.vantages()) {
    if (!first) out += ',';
    first = false;
    out += "{\"vp\":";
    append_json_string(out, v.vantage);
    out += ",\"state\":";
    append_json_string(out, health_state_name(v.state));
    out += ",\"transitions\":" + std::to_string(v.transitions) + '}';
  }
  out += "],\"slos\":[";
  first = true;
  for (const SloStatus& s : engine.statuses()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"vp\":";
    append_json_string(out, s.vantage);
    out += ",\"state\":";
    append_json_string(out, alert_state_name(s.state));
    out += ",\"burn_long\":" + format_metric_value(s.burn_long);
    out += ",\"burn_short\":" + format_metric_value(s.burn_short);
    out += ",\"bad_fraction_long\":" +
           format_metric_value(s.bad_fraction_long);
    out += ",\"transitions\":" + std::to_string(s.transitions) + '}';
  }
  out += "]}";
  return out;
}

std::vector<SloSpec> default_slo_specs(
    const std::vector<std::string>& vantages) {
  std::vector<SloSpec> specs;

  SloSpec completion;
  completion.name = "job-completion";
  completion.signal.kind = SloSignal::Kind::kCounterRatio;
  completion.signal.bad = {
      {"blab_scheduler_jobs_finished_total", {{"result", "failed"}}}};
  completion.signal.total = {
      {"blab_scheduler_jobs_finished_total", {{"result", "succeeded"}}},
      {"blab_scheduler_jobs_finished_total", {{"result", "failed"}}}};
  completion.objective = 0.90;
  completion.fast_burn = 5.0;
  completion.slow_burn = 1.5;
  specs.push_back(std::move(completion));

  SloSpec queue_wait;
  queue_wait.name = "queue-wait-p99";
  queue_wait.signal.kind = SloSignal::Kind::kHistogramAbove;
  queue_wait.signal.total = {{"blab_scheduler_queue_wait_seconds", {}}};
  queue_wait.signal.above_bound = 60.0;  // a configured bucket boundary
  queue_wait.objective = 0.99;
  queue_wait.fast_burn = 10.0;
  queue_wait.slow_burn = 2.0;
  specs.push_back(std::move(queue_wait));

  SloSpec clamp;
  clamp.name = "capture-clamp-rate";
  clamp.signal.kind = SloSignal::Kind::kCounterRatio;
  clamp.signal.bad = {
      {"blab_monsoon_clamp_events_total", {{"kind", "overcurrent"}}},
      {"blab_monsoon_clamp_events_total", {{"kind", "negative"}}}};
  clamp.signal.total = {{"blab_monsoon_samples_synthesized_total", {}}};
  clamp.objective = 0.999;
  clamp.fast_burn = 10.0;
  clamp.slow_burn = 2.0;
  specs.push_back(std::move(clamp));

  for (const std::string& vp : vantages) {
    SloSpec errors;
    errors.name = "vantage-errors";
    errors.vantage = vp;
    errors.signal.kind = SloSignal::Kind::kCounterRatio;
    errors.signal.bad = {
        {"blab_scheduler_node_jobs_failed_total", {{"vp", vp}}}};
    errors.signal.total = {{"blab_scheduler_node_jobs_total", {{"vp", vp}}}};
    errors.objective = 0.90;
    errors.fast_burn = 5.0;
    errors.slow_burn = 1.5;
    specs.push_back(std::move(errors));
  }
  return specs;
}

}  // namespace blab::health
