// Trace analytics: flame aggregation and critical-path decomposition.
//
// The tracer records a forest of causal trees (one per trace). These folds
// turn that forest into two operator-facing summaries:
//
//  * build_flame merges every trace by (component, name) path into one flame
//    tree: each node holds the weighted span count, total duration, and self
//    time (duration not covered by child spans) of all spans that reached it
//    via the same ancestry. Sampled families fold in exactly — a kept span's
//    weight is the number of spans it stands for, so flame counts equal the
//    unsampled counters (see Tracer::set_sampling).
//
//  * critical_paths decomposes each job trace's root interval into named
//    segments (queue-wait, dispatch, network, capture, store, mirror, other)
//    by a cursor sweep: every microsecond of the root interval is attributed
//    to the deepest span covering it, clipped so overlapping children never
//    double-count. Segment sums always equal the root duration exactly.
//
// Both folds are pure functions of the span records: deterministic input
// (DST spans are byte-stable across thread counts) gives deterministic
// output, byte for byte.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace blab::obs {

/// One merged node of the flame tree. Children are sorted by
/// (component, name), so encoding the tree is deterministic.
struct FlameNode {
  std::string component;
  std::string name;
  /// Weighted number of spans merged into this node (sum of span weights,
  /// which equals the exact pre-sampling span count).
  std::uint64_t count = 0;
  /// Sum of merged span durations, weighted: a span standing for `weight`
  /// sampled siblings contributes weight * duration.
  std::int64_t total_us = 0;
  /// Portion of total_us not covered by this node's children (overlapping
  /// children count once).
  std::int64_t self_us = 0;
  std::vector<FlameNode> children;

  /// Child with this identity, or nullptr.
  const FlameNode* find(std::string_view component_,
                        std::string_view name_) const;
};

/// Fold finished spans (any mix of traces) into one merged flame tree. The
/// returned node is a synthetic forest root (empty component/name, zero
/// times) whose children are the merged trace roots; spans whose parent is
/// missing from the input are treated as roots rather than dropped.
FlameNode build_flame(const std::vector<SpanRecord>& spans);
FlameNode build_flame(const std::vector<const SpanRecord*>& spans);

/// Critical-path segments, in encoding order.
enum class PathSegment : std::uint8_t {
  kQueueWait,  ///< root self time: queued, or idling between child work
  kDispatch,   ///< scheduler dispatch machinery (run_job)
  kNetwork,    ///< net component: flows, VPN connect/disconnect
  kCapture,    ///< measurement path: api calls + Monsoon synthesis
  kStore,      ///< capture archival
  kMirror,     ///< mirroring session + probe pipeline
  kOther,      ///< anything else
};
inline constexpr std::size_t kPathSegmentCount = 7;

const char* path_segment_name(PathSegment segment);

/// Segment a span contributes its (un-covered) time to.
PathSegment segment_of(const SpanRecord& span);

/// One job trace's root interval decomposed into segments. The segment sums
/// equal total_us exactly — attribution is a partition of the interval.
struct CriticalPath {
  std::uint64_t trace = 0;
  std::string job;  ///< root span's "job" attribute ("" when absent)
  std::int64_t total_us = 0;
  std::array<std::int64_t, kPathSegmentCount> segment_us{};

  std::int64_t segment(PathSegment s) const {
    return segment_us[static_cast<std::size_t>(s)];
  }
};

/// Decompose every trace rooted by a scheduler/job span, ordered by trace
/// id. Traces without such a root (mirror-only, fuzz harness spans) are
/// skipped — they have no job to attribute.
std::vector<CriticalPath> critical_paths(
    const std::vector<SpanRecord>& spans);
std::vector<CriticalPath> critical_paths(
    const std::vector<const SpanRecord*>& spans);

/// {"flame":{...nested nodes...},"critical_paths":[...]} — deterministic
/// for deterministic input.
std::string encode_flame_json(const FlameNode& root,
                              const std::vector<CriticalPath>& paths);

}  // namespace blab::obs
