#include "obs/aggregate.hpp"

#include <algorithm>
#include <map>

namespace blab::obs {
namespace {

/// Per-trace view of the span forest: spans by id, children by parent id
/// (sorted by start then id, so sweeps are deterministic), and the roots —
/// spans with no parent *in the input*, so a trace whose ancestors fell out
/// of the buffer still aggregates instead of vanishing.
struct TraceView {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
};

void sort_spans(std::vector<const SpanRecord*>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_us != b->start_us ? a->start_us < b->start_us
                                                : a->id < b->id;
            });
}

TraceView make_view(const std::vector<const SpanRecord*>& spans) {
  TraceView view;
  for (const SpanRecord* s : spans) view.by_id.emplace(s->id, s);
  for (const SpanRecord* s : spans) {
    // A tracer never reuses span ids, but callers can hand us spans pooled
    // from several tracers. A duplicated id would alias distinct records in
    // the children lookup, so every duplicate re-walks the shared subtree —
    // exponential in depth. Keep the first record per id, drop the rest.
    if (view.by_id.at(s->id) != s) continue;
    if (s->parent != 0 && view.by_id.contains(s->parent)) {
      view.children[s->parent].push_back(s);
    } else {
      view.roots.push_back(s);
    }
  }
  sort_spans(view.roots);
  for (auto& [parent, kids] : view.children) sort_spans(kids);
  return view;
}

/// Group by trace id (ascending), preserving input order within a trace.
std::map<std::uint64_t, std::vector<const SpanRecord*>> by_trace(
    const std::vector<const SpanRecord*>& spans) {
  std::map<std::uint64_t, std::vector<const SpanRecord*>> traces;
  for (const SpanRecord* s : spans) traces[s->trace].push_back(s);
  return traces;
}

/// Find-or-insert the child slot for (component, name), kept sorted.
FlameNode& slot(FlameNode& parent, const std::string& component,
                const std::string& name) {
  auto it = std::lower_bound(
      parent.children.begin(), parent.children.end(), std::tie(component, name),
      [](const FlameNode& node, const auto& key) {
        return std::tie(node.component, node.name) < key;
      });
  if (it == parent.children.end() || it->component != component ||
      it->name != name) {
    it = parent.children.insert(it, FlameNode{});
    it->component = component;
    it->name = name;
  }
  return *it;
}

/// Sum of this span's child intervals, clipped to the span and with
/// overlaps counted once (children are sorted by start).
std::int64_t child_coverage(const SpanRecord* s,
                            const std::vector<const SpanRecord*>& kids) {
  std::int64_t covered = 0;
  std::int64_t cursor = s->start_us;
  for (const SpanRecord* kid : kids) {
    const std::int64_t lo = std::max(kid->start_us, cursor);
    const std::int64_t hi = std::min(kid->end_us, s->end_us);
    if (hi <= lo) continue;
    covered += hi - lo;
    cursor = hi;
  }
  return covered;
}

void fold_span(FlameNode& parent, const SpanRecord* s, const TraceView& view) {
  FlameNode& node = slot(parent, s->component, s->name);
  // Weight scales a kept span up to the family count it stands for; sampled
  // families are leaves (set_sampling contract), so scaling total without
  // scaling child coverage never goes negative.
  const std::uint64_t w = s->weight;
  node.count += w;
  const std::int64_t weighted =
      s->duration_us() * static_cast<std::int64_t>(w);
  node.total_us += weighted;
  static const std::vector<const SpanRecord*> kNone;
  const auto kids = view.children.find(s->id);
  const auto& children = kids == view.children.end() ? kNone : kids->second;
  node.self_us += weighted - child_coverage(s, children);
  for (const SpanRecord* kid : children) fold_span(node, kid, view);
}

/// Attribute the [lo, hi) slice of `s`'s interval: gaps between (clipped,
/// non-overlapping) children go to s's own segment, child slices recurse.
/// The slices partition [lo, hi), so segment sums are exact.
void attribute(const SpanRecord* s, std::int64_t lo, std::int64_t hi,
               const TraceView& view,
               std::array<std::int64_t, kPathSegmentCount>& out) {
  auto& own = out[static_cast<std::size_t>(segment_of(*s))];
  std::int64_t cursor = lo;
  const auto kids = view.children.find(s->id);
  if (kids != view.children.end()) {
    for (const SpanRecord* kid : kids->second) {
      const std::int64_t klo = std::max(kid->start_us, cursor);
      const std::int64_t khi = std::min(kid->end_us, hi);
      if (khi <= klo) continue;
      if (klo > cursor) own += klo - cursor;
      attribute(kid, klo, khi, view, out);
      cursor = khi;
    }
  }
  if (hi > cursor) own += hi - cursor;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

void encode_node(std::string& out, const FlameNode& node) {
  out += "{\"component\":" + json_string(node.component) +
         ",\"name\":" + json_string(node.name) +
         ",\"count\":" + std::to_string(node.count) +
         ",\"total_us\":" + std::to_string(node.total_us) +
         ",\"self_us\":" + std::to_string(node.self_us) + ",\"children\":[";
  bool sep = false;
  for (const FlameNode& child : node.children) {
    if (sep) out += ',';
    sep = true;
    encode_node(out, child);
  }
  out += "]}";
}

std::vector<const SpanRecord*> as_pointers(
    const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> out;
  out.reserve(spans.size());
  for (const SpanRecord& s : spans) out.push_back(&s);
  return out;
}

}  // namespace

const FlameNode* FlameNode::find(std::string_view component_,
                                 std::string_view name_) const {
  for (const FlameNode& child : children) {
    if (child.component == component_ && child.name == name_) return &child;
  }
  return nullptr;
}

const char* path_segment_name(PathSegment segment) {
  switch (segment) {
    case PathSegment::kQueueWait: return "queue_wait";
    case PathSegment::kDispatch: return "dispatch";
    case PathSegment::kNetwork: return "network";
    case PathSegment::kCapture: return "capture";
    case PathSegment::kStore: return "store";
    case PathSegment::kMirror: return "mirror";
    case PathSegment::kOther: return "other";
  }
  return "?";
}

PathSegment segment_of(const SpanRecord& span) {
  if (span.component == "scheduler") {
    // The job root's own time is spent queued (or idling between child
    // work); everything else under the scheduler is dispatch machinery.
    return span.name == "job" ? PathSegment::kQueueWait
                              : PathSegment::kDispatch;
  }
  if (span.component == "net") return PathSegment::kNetwork;
  if (span.component == "api" || span.component == "monsoon") {
    return PathSegment::kCapture;
  }
  if (span.component == "store" || span.component == "persist") {
    return PathSegment::kStore;
  }
  if (span.component == "mirror") return PathSegment::kMirror;
  return PathSegment::kOther;
}

FlameNode build_flame(const std::vector<const SpanRecord*>& spans) {
  FlameNode root;
  for (const auto& [trace, trace_spans] : by_trace(spans)) {
    const TraceView view = make_view(trace_spans);
    for (const SpanRecord* s : view.roots) fold_span(root, s, view);
  }
  for (const FlameNode& child : root.children) root.count += child.count;
  return root;
}

FlameNode build_flame(const std::vector<SpanRecord>& spans) {
  return build_flame(as_pointers(spans));
}

std::vector<CriticalPath> critical_paths(
    const std::vector<const SpanRecord*>& spans) {
  std::vector<CriticalPath> out;
  for (const auto& [trace, trace_spans] : by_trace(spans)) {
    const TraceView view = make_view(trace_spans);
    const SpanRecord* root = nullptr;
    for (const SpanRecord* s : view.roots) {
      if (s->component == "scheduler" && s->name == "job") {
        root = s;
        break;
      }
    }
    if (root == nullptr) continue;  // not a job trace
    CriticalPath path;
    path.trace = trace;
    path.job = root->attr_str("job");
    path.total_us = root->duration_us();
    attribute(root, root->start_us, root->end_us, view, path.segment_us);
    out.push_back(std::move(path));
  }
  return out;
}

std::vector<CriticalPath> critical_paths(const std::vector<SpanRecord>& spans) {
  return critical_paths(as_pointers(spans));
}

std::string encode_flame_json(const FlameNode& root,
                              const std::vector<CriticalPath>& paths) {
  std::string out = "{\"flame\":";
  encode_node(out, root);
  out += ",\"critical_paths\":[";
  bool sep = false;
  for (const CriticalPath& path : paths) {
    if (sep) out += ',';
    sep = true;
    out += "{\"trace\":" + std::to_string(path.trace) +
           ",\"job\":" + json_string(path.job) +
           ",\"total_us\":" + std::to_string(path.total_us) + ",\"segments\":{";
    for (std::size_t i = 0; i < kPathSegmentCount; ++i) {
      if (i > 0) out += ',';
      out += json_string(path_segment_name(static_cast<PathSegment>(i)));
      out += ':' + std::to_string(path.segment_us[i]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace blab::obs
