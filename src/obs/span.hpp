// Sim-time component spans with causal trace propagation.
//
// A span is a named, nested interval of simulated time attributed to a
// component ("scheduler", "store", ...). Spans are stamped from the owning
// Simulator's clock (injected as a plain microseconds callback so obs does
// not depend on sim), never from the wall clock — a traced DST run produces
// the same spans every time.
//
// Every span belongs to a trace: a causal tree rooted at one top-level
// operation (typically a scheduler job). Synchronous nesting is implicit —
// a ScopedSpan opened while another is open becomes its child and joins its
// trace. Asynchronous work (sim event callbacks, flows, mirroring probes)
// carries an explicit TraceContext captured where the work was scheduled:
//
//   obs::ScopedSpan span{&sim.tracer(), "scheduler", "run_job",
//                        obs::TraceContext{job.trace_id, job.root_span}};
//   span.attr("device", serial);
//
// Spans that outlive the caller's scope (job roots, in-flight flows) are
// opened detached via begin_detached() and closed by id; they never sit on
// the LIFO stack, so unrelated synchronous spans can open and close freely
// while they are in flight.
//
// The tracer keeps a bounded in-memory buffer of finished spans (newest
// dropped past the cap, with a counter), a bounded per-trace index for
// O(trace) lookup, and can export as JSONL or (via obs/export) Chrome
// trace-event JSON for Perfetto.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace blab::obs {

/// Causal position handed to asynchronous work: the trace it belongs to and
/// the span that caused it. A default-constructed context is "no context":
/// the receiving span starts a fresh trace.
struct TraceContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;

  bool valid() const { return trace != 0; }
};

/// A typed causal edge to a span in *another* trace. Parent/child edges
/// stay within one trace tree; links connect trees — e.g. a resubmitted
/// job's fresh trace carries a "retry_of" link to its predecessor's root,
/// so a job's full retry history is one walkable chain.
struct SpanLink {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::string kind;  ///< e.g. "retry_of"
};

/// One typed key/value attached to a span (sample counts, byte totals,
/// device serials). Kept as a tagged struct rather than a variant so the
/// record stays trivially copyable-ish and cheap to render.
struct SpanAttr {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };

  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
};

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root of its trace
  std::uint64_t trace = 0;   ///< trace (causal tree) this span belongs to
  std::uint32_t depth = 0;
  std::string component;
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  /// Sampling weight: how many spans of this (component, name, trace)
  /// family this record stands for. 1 unless a sampling policy applies; a
  /// policy-dropped span is never buffered and instead credits +1 here on
  /// the last kept span of its family, so weighted aggregates over the
  /// buffer equal the exact unsampled counts. 0 marks a sampled-out span
  /// while it is still open (it is discarded, not buffered, at end()).
  std::uint64_t weight = 1;
  std::vector<SpanAttr> attrs;
  std::vector<SpanLink> links;

  std::int64_t duration_us() const { return end_us - start_us; }
  /// String attribute lookup ("" when absent or not a string).
  std::string_view attr_str(std::string_view key) const;
};

class Tracer {
 public:
  /// Hard ceiling on attributes per span; extras are silently ignored.
  static constexpr std::size_t kMaxAttrsPerSpan = 16;
  /// Hard ceiling on cross-trace links per span; extras are ignored.
  static constexpr std::size_t kMaxLinksPerSpan = 4;
  /// Bounds on the per-trace index (the span buffer itself is bounded by
  /// max_spans). Traces past the cap still record spans, just unindexed.
  static constexpr std::size_t kMaxIndexedTraces = 1024;
  static constexpr std::size_t kMaxIndexedSpansPerTrace = 4096;
  /// Bound on one family's undecided tail-sampling buffer per trace; on
  /// overflow the buffered prefix is flushed through head sampling (so a
  /// runaway trace cannot hold unbounded spans hostage) and buffering
  /// resumes for the remainder.
  static constexpr std::size_t kMaxTailPendingPerTrace = 4096;

  /// `clock` returns the current simulated time in microseconds.
  explicit Tracer(std::function<std::int64_t()> clock,
                  std::size_t max_spans = 65536);

  /// Open a span; returns its id. With a valid context the span joins that
  /// trace as a child of ctx.span; otherwise it nests under the currently
  /// open span, or roots a fresh trace when the stack is empty.
  std::uint64_t begin(std::string_view component, std::string_view name,
                      TraceContext ctx = {});
  /// Open a span that is NOT on the LIFO stack: it can stay open across
  /// arbitrary synchronous spans and sim events until end(id). With a valid
  /// context it joins that trace; otherwise it roots a fresh trace (detached
  /// spans never inherit from the stack — they outlive it).
  std::uint64_t begin_detached(std::string_view component,
                               std::string_view name, TraceContext ctx = {});
  /// Close a span by id. Tolerates misuse: id 0, an already-closed or
  /// unknown id, and out-of-order ends are each logged once per kind and
  /// counted in end_mismatches() instead of corrupting the buffer. An
  /// out-of-order end still closes the (leaked) spans opened above it.
  void end(std::uint64_t id);

  /// Context of the innermost open stack span ({0,0} when idle). Capture
  /// this BEFORE scheduling async work so the callback's span parents here.
  TraceContext current() const;
  /// Context of a specific open span (stack or detached); {0,0} if unknown.
  TraceContext context_of(std::uint64_t id) const;

  /// Attach a typed attribute to an open span. No-op on unknown ids or past
  /// the per-span cap.
  void set_attr(std::uint64_t id, std::string_view key, std::int64_t value);
  void set_attr(std::uint64_t id, std::string_view key, double value);
  void set_attr(std::uint64_t id, std::string_view key,
                std::string_view value);

  /// Attach a typed cross-trace link to an open span (stack or detached).
  /// No-op on unknown ids or past kMaxLinksPerSpan.
  void add_link(std::uint64_t id, SpanLink link);

  /// Deterministic head-based sampling for a high-frequency (component,
  /// name) family: per trace, keep 1 in every `keep_one_in` spans (the
  /// first is always kept). Dropped spans never enter the buffer; each adds
  /// +1 weight to the last kept span of the same family and trace, so
  /// sum-of-weights over kept spans equals the exact span count at every
  /// instant. `keep_one_in <= 1` removes the policy. Only apply to leaf
  /// spans: a sampled-out span is discarded, so children parented under it
  /// would become unreachable in their trace.
  void set_sampling(std::string_view component, std::string_view name,
                    std::uint64_t keep_one_in);

  /// Tail-based sampling: like set_sampling, but the keep/drop decision for
  /// each trace is deferred until its root span ends. Finished spans of the
  /// family buffer as *pending* until then; if the root's duration is at
  /// least `tail_threshold_us` the whole trace is a slow outlier and every
  /// pending span commits at weight 1 (full fidelity), otherwise the
  /// pending buffer falls back to head sampling (keep 1 in `keep_one_in`,
  /// drops credit the last kept sibling). Spans of the family that finish
  /// after the root carry the same decision. Everything is driven by sim
  /// time, so the decision is deterministic and replay-stable. Conservation
  /// contract: sum-of-weights over kept spans plus tail_pending() of the
  /// family equals the exact span count at every instant.
  /// `keep_one_in <= 1` removes the policy; `tail_threshold_us <= 0`
  /// degenerates to plain head sampling.
  void set_tail_sampling(std::string_view component, std::string_view name,
                         std::uint64_t keep_one_in,
                         std::int64_t tail_threshold_us);

  const std::vector<SpanRecord>& spans() const { return finished_; }
  std::size_t open_depth() const { return open_.size(); }
  /// Open spans including detached ones.
  std::size_t open_total() const { return open_.size() + detached_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t end_mismatches() const { return end_mismatches_; }
  std::uint64_t index_dropped() const { return index_dropped_; }
  /// Spans dropped by a sampling policy (their weight was credited to a
  /// kept sibling unless counted in weight_uncredited()).
  std::uint64_t sampled_out() const { return sampled_out_; }
  /// Sampled-out spans whose family had no kept span left in the buffer to
  /// credit (only possible once the buffer cap has dropped spans); nonzero
  /// means weighted aggregates undercount by exactly this much.
  std::uint64_t weight_uncredited() const { return weight_uncredited_; }
  std::uint64_t links_added() const { return links_added_; }

  /// Spans of tail-sampled families whose trace root has not ended yet:
  /// buffered, undecided, each still carrying its own unit of weight.
  /// Totalled over all families, or for one family.
  std::uint64_t tail_pending() const { return tail_pending_total_; }
  std::uint64_t tail_pending(std::string_view component,
                             std::string_view name) const;
  /// Traces decided as slow outliers (kept at full fidelity) so far.
  std::uint64_t tail_slow_traces() const { return tail_slow_traces_; }
  /// Times a (family, trace) pending buffer hit kMaxTailPendingPerTrace and
  /// its prefix was flushed through head sampling before the root ended.
  std::uint64_t tail_overflows() const { return tail_overflows_; }

  /// All trace ids with at least one finished, indexed span (ascending).
  std::vector<std::uint64_t> trace_ids() const;
  /// Finished spans of one trace, in finish order. Empty for unknown ids.
  std::vector<const SpanRecord*> spans_in(std::uint64_t trace) const;
  /// Count of still-open spans (stack + detached) in a trace.
  std::size_t open_in_trace(std::uint64_t trace) const;
  /// First trace (ascending id) whose root span carries the given string
  /// attribute value; 0 when none matches.
  std::uint64_t find_trace_by_root_attr(std::string_view key,
                                        std::string_view value) const;

  void clear();

  /// One JSON object per line: {"id":..,"parent":..,"trace":..,"depth":..,
  /// "component":"..","name":"..","start_us":..,"end_us":..,"attrs":{..}}
  void write_jsonl(std::ostream& out) const;

 private:
  struct Open {
    SpanRecord record;
  };

  /// One registered sampling policy. Families are few (hand-registered per
  /// component), so lookups are linear scans over this vector.
  struct SamplingPolicy {
    std::string component;
    std::string name;
    std::uint64_t keep_one_in = 1;
    /// > 0 switches the family to tail mode: per-trace keep/drop decisions
    /// wait for the trace root and compare its duration to this threshold.
    std::int64_t tail_threshold_us = 0;
  };
  /// Per-(policy, trace) sampling state.
  struct FamilyState {
    std::uint64_t count = 0;       ///< spans begun in this family+trace
    std::uint32_t last_kept = 0;   ///< index into finished_ of the last kept
    bool has_kept = false;
  };
  /// Per-trace tail decision input, recorded when the trace root ends, so
  /// spans of tail families that finish later follow the same policy. The
  /// root duration (not a bool) is stored because each family compares it
  /// against its own threshold.
  struct TailDecision {
    std::int64_t root_duration_us = 0;
  };

  SpanRecord make_record(std::string_view component, std::string_view name,
                         TraceContext ctx, bool inherit_stack);
  void finish_record(SpanRecord&& record, std::int64_t now);
  /// Buffer-commit half of finish_record: index + family bookkeeping.
  void commit_record(SpanRecord&& record, std::size_t fam);
  /// Discard a span under head sampling, crediting its weight.
  void drop_record(const SpanRecord& record, std::size_t fam);
  /// Run `record` through the head-sampling counter of its family+trace.
  void head_decide(SpanRecord&& record, std::size_t fam);
  /// Root of `trace` just ended with this duration: decide every tail
  /// family's pending buffer for the trace and flush it into finished_.
  void resolve_tail(std::uint64_t trace, std::int64_t root_duration_us);
  /// Flush one (family, trace) pending buffer under a known decision.
  void flush_tail_pending(std::size_t fam, std::uint64_t trace, bool keep_all);
  SpanRecord* find_open(std::uint64_t id);
  /// Index into policies_ for this family, or npos.
  std::size_t policy_index(std::string_view component,
                           std::string_view name) const;

  std::function<std::int64_t()> clock_;
  std::size_t max_spans_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_trace_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t end_mismatches_ = 0;
  std::uint64_t index_dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t weight_uncredited_ = 0;
  std::uint64_t links_added_ = 0;
  std::uint64_t tail_pending_total_ = 0;
  std::uint64_t tail_slow_traces_ = 0;
  std::uint64_t tail_overflows_ = 0;
  std::vector<SamplingPolicy> policies_;
  std::map<std::pair<std::size_t, std::uint64_t>, FamilyState> family_state_;
  /// (policy, trace) -> finished-but-undecided tail spans, in finish order.
  std::map<std::pair<std::size_t, std::uint64_t>, std::vector<SpanRecord>>
      tail_pending_;
  /// trace -> tail decision once its root has ended (or overflow forced
  /// head mode); absent means undecided.
  std::map<std::uint64_t, TailDecision> tail_decisions_;
  std::vector<Open> open_;
  std::map<std::uint64_t, SpanRecord> detached_;
  std::vector<SpanRecord> finished_;
  /// trace id -> indices into finished_, in finish order.
  std::map<std::uint64_t, std::vector<std::uint32_t>> trace_index_;
  util::OncePerKey misuse_once_;
};

/// RAII span. Tolerates a null tracer (spans become no-ops), so call sites
/// do not need to guard on telemetry being wired up.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view component, std::string_view name,
             TraceContext ctx = {})
      : tracer_{tracer} {
    if (tracer_ != nullptr) id_ = tracer_->begin(component, name, ctx);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }
  /// Context for child work scheduled from inside this span.
  TraceContext context() const {
    return tracer_ == nullptr ? TraceContext{} : tracer_->context_of(id_);
  }

  void attr(std::string_view key, std::int64_t value) {
    if (tracer_ != nullptr) tracer_->set_attr(id_, key, value);
  }
  void attr(std::string_view key, double value) {
    if (tracer_ != nullptr) tracer_->set_attr(id_, key, value);
  }
  void attr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->set_attr(id_, key, value);
  }

 private:
  Tracer* tracer_;
  std::uint64_t id_ = 0;
};

}  // namespace blab::obs
