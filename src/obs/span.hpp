// Sim-time component spans.
//
// A span is a named, nested interval of simulated time attributed to a
// component ("scheduler", "store", ...). Spans are stamped from the owning
// Simulator's clock (injected as a plain microseconds callback so obs does
// not depend on sim), never from the wall clock — a traced DST run produces
// the same spans every time.
//
// Usage:
//   obs::ScopedSpan span{&sim.tracer(), "scheduler", "run_job"};
//   ... do work; nested ScopedSpans become children ...
//
// The tracer keeps a bounded in-memory buffer of finished spans (newest
// dropped past the cap, with a counter) and can export them as JSONL for
// offline inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace blab::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t depth = 0;
  std::string component;
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;

  std::int64_t duration_us() const { return end_us - start_us; }
};

class Tracer {
 public:
  /// `clock` returns the current simulated time in microseconds.
  explicit Tracer(std::function<std::int64_t()> clock,
                  std::size_t max_spans = 65536);

  /// Open a span; returns its id. Nests under the currently open span.
  std::uint64_t begin(std::string_view component, std::string_view name);
  /// Close the most recently opened span with this id (spans close LIFO;
  /// closing out of order closes everything above it too).
  void end(std::uint64_t id);

  const std::vector<SpanRecord>& spans() const { return finished_; }
  std::size_t open_depth() const { return open_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// One JSON object per line: {"id":..,"parent":..,"depth":..,
  /// "component":"..","name":"..","start_us":..,"end_us":..}
  void write_jsonl(std::ostream& out) const;

 private:
  struct Open {
    SpanRecord record;
  };

  std::function<std::int64_t()> clock_;
  std::size_t max_spans_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Open> open_;
  std::vector<SpanRecord> finished_;
};

/// RAII span. Tolerates a null tracer (spans become no-ops), so call sites
/// do not need to guard on telemetry being wired up.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view component, std::string_view name)
      : tracer_{tracer} {
    if (tracer_ != nullptr) id_ = tracer_->begin(component, name);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::uint64_t id_ = 0;
};

}  // namespace blab::obs
