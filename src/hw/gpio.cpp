#include "hw/gpio.hpp"

namespace blab::hw {

GpioController::GpioController(int pin_count) : pin_count_{pin_count} {}

util::Status GpioController::check_pin(int pin) const {
  if (pin < 0 || pin >= pin_count_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "GPIO pin " + std::to_string(pin) +
                                " out of range");
  }
  return util::Status::ok_status();
}

util::Status GpioController::set_mode(int pin, PinMode mode) {
  if (auto st = check_pin(pin); !st.ok()) return st;
  modes_[pin] = mode;
  levels_.try_emplace(pin, PinLevel::kLow);
  return util::Status::ok_status();
}

util::Result<PinMode> GpioController::mode(int pin) const {
  if (auto st = check_pin(pin); !st.ok()) return st.error();
  const auto it = modes_.find(pin);
  return it == modes_.end() ? PinMode::kUnconfigured : it->second;
}

util::Status GpioController::write(int pin, PinLevel level) {
  if (auto st = check_pin(pin); !st.ok()) return st;
  const auto it = modes_.find(pin);
  if (it == modes_.end() || it->second != PinMode::kOutput) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "GPIO pin " + std::to_string(pin) +
                                " not configured as output");
  }
  levels_[pin] = level;
  if (const auto lit = listeners_.find(pin); lit != listeners_.end()) {
    lit->second(pin, level);
  }
  return util::Status::ok_status();
}

util::Result<PinLevel> GpioController::read(int pin) const {
  if (auto st = check_pin(pin); !st.ok()) return st.error();
  const auto it = levels_.find(pin);
  if (it == levels_.end()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "GPIO pin " + std::to_string(pin) +
                                " not configured");
  }
  return it->second;
}

void GpioController::on_write(int pin, Listener listener) {
  listeners_[pin] = std::move(listener);
}

}  // namespace blab::hw
