#include "hw/timeline.hpp"

#include <algorithm>
#include <cassert>

namespace blab::hw {

void Timeline::set(TimePoint t, double value) {
  if (!points_.empty()) {
    assert(t >= points_.back().first && "timeline breakpoints must be ordered");
    if (points_.back().first == t) {
      points_.back().second = value;
      return;
    }
    if (points_.back().second == value) return;  // no-op change
  }
  points_.emplace_back(t, value);
}

double Timeline::at(TimePoint t) const {
  if (points_.empty() || t < points_.front().first) return 0.0;
  // Last breakpoint with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimePoint x, const auto& p) { return x < p.first; });
  return std::prev(it)->second;
}

double Timeline::last_value() const {
  return points_.empty() ? 0.0 : points_.back().second;
}

std::vector<std::pair<TimePoint, double>> Timeline::segments(
    TimePoint t0, TimePoint t1) const {
  std::vector<std::pair<TimePoint, double>> out;
  if (t1 <= t0) return out;
  // One bound search serves both the t0 boundary value and the walk start;
  // reserve the worst case (every remaining breakpoint is a value change).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](TimePoint x, const auto& p) { return x < p.first; });
  out.reserve(1 + static_cast<std::size_t>(points_.end() - it));
  const double boundary = (points_.empty() || t0 < points_.front().first)
                              ? 0.0
                              : std::prev(it)->second;
  out.emplace_back(t0, boundary);
  for (; it != points_.end() && it->first < t1; ++it) {
    if (it->second != out.back().second) out.emplace_back(it->first, it->second);
  }
  return out;
}

double Timeline::mean(TimePoint t0, TimePoint t1) const {
  if (t1 <= t0) return at(t0);
  return integral(t0, t1) / (t1 - t0).to_seconds();
}

double Timeline::integral(TimePoint t0, TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  const auto segs = segments(t0, t1);
  double acc = 0.0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const TimePoint end = (i + 1 < segs.size()) ? segs[i + 1].first : t1;
    acc += segs[i].second * (end - segs[i].first).to_seconds();
  }
  return acc;
}

void Timeline::prune_before(TimePoint t) {
  if (points_.empty()) return;
  const double boundary = at(t);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const auto& p, TimePoint x) { return p.first < x; });
  points_.erase(points_.begin(), it);
  if (points_.empty() || points_.front().first > t) {
    points_.insert(points_.begin(), {t, boundary});
  }
}

}  // namespace blab::hw
