// Monsoon HV power monitor model (§3.2).
//
// Voltage range 0.8–13.5 V, up to 6 A continuous, 5 kHz sampling — the
// paper's instrument. The monitor samples whatever Load is wired to its main
// channel (the device directly, or the relay board output). Samples are
// synthesized lazily from the load's piecewise segments at capture-stop time,
// block by block: the segment walk runs per block rather than per sample,
// noise comes from Rng::fill_normal in batches (same draw order as the scalar
// path), and mean/min/max accumulate in the same fused pass. A 5-minute
// capture costs one pass over 1.5 M floats rather than 1.5 M simulator
// events.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/load.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace blab::obs {
class Counter;
}  // namespace blab::obs

namespace blab::hw {

struct MonsoonSpec {
  double min_voltage = 0.8;
  double max_voltage = 13.5;
  double max_current_ma = 6000.0;
  double sample_hz = 5000.0;
  /// Per-sample additive noise (quantization + analog front end), mA.
  double noise_sigma_ma = 0.9;
  /// Multiplicative calibration error (1 = perfect).
  double gain = 1.001;
};

/// Summary statistics over a capture's samples. The synthesis loop fuses
/// their accumulation into the pass that produces the samples; captures built
/// from raw vectors compute them lazily (compensated summation either way,
/// so both paths agree bit for bit).
struct CaptureStats {
  double mean_ma = 0.0;
  double min_ma = 0.0;
  double max_ma = 0.0;
};

/// A finished capture: fixed-rate samples starting at `t0`.
class Capture {
 public:
  Capture() = default;
  Capture(TimePoint t0, double sample_hz, double voltage,
          std::vector<float> current_ma);
  /// Synthesis path: stats accumulated in the same pass that produced the
  /// samples, so summary queries never re-walk the sample vector.
  Capture(TimePoint t0, double sample_hz, double voltage,
          std::vector<float> current_ma, CaptureStats stats);

  TimePoint start() const { return t0_; }
  double sample_hz() const { return sample_hz_; }
  double voltage() const { return voltage_; }
  std::size_t sample_count() const { return current_ma_.size(); }
  Duration duration() const {
    return Duration::seconds(static_cast<double>(current_ma_.size()) /
                             sample_hz_);
  }
  const std::vector<float>& samples_ma() const { return current_ma_; }
  TimePoint time_of(std::size_t index) const {
    return t0_ + Duration::seconds(static_cast<double>(index) / sample_hz_);
  }

  double mean_current_ma() const;
  double min_current_ma() const;
  double max_current_ma() const;
  const CaptureStats& stats() const;
  /// Integrated charge over the capture, in mAh.
  double charge_mah() const;
  /// Integrated energy at the capture voltage, in mWh.
  double energy_mwh() const { return charge_mah() * voltage_; }
  /// Empirical CDF of the current samples (optionally decimated).
  util::Cdf current_cdf(std::size_t stride = 1) const;

 private:
  void ensure_stats() const;

  TimePoint t0_;
  double sample_hz_ = 5000.0;
  double voltage_ = 0.0;
  std::vector<float> current_ma_;
  mutable CaptureStats stats_;
  mutable bool stats_valid_ = false;
};

class PowerMonitor {
 public:
  /// Sampling rate for per-block synthesis spans: keep 1 in this many
  /// blocks per trace; weights keep the aggregates exact.
  static constexpr std::uint64_t kBlockSampling = 8;
  /// Tail-sampling threshold: a trace whose root span runs at least this
  /// long (sim time) is a slow outlier and keeps every synth_block span at
  /// full fidelity instead of falling back to 1-in-kBlockSampling. Job
  /// roots in the DST corpus cluster at 1-3 s; 4 s is past p90.
  static constexpr std::int64_t kTailThresholdUs = 4'000'000;

  PowerMonitor(sim::Simulator& sim, util::Rng rng, MonsoonSpec spec = {});

  const MonsoonSpec& spec() const { return spec_; }

  /// Mains power, driven by the WiFi power socket. Dropping mains mid-capture
  /// aborts it.
  void set_mains(bool on);
  bool has_mains() const { return mains_; }

  /// Wire a load to the main channel (nullptr disconnects).
  void connect_load(const Load* load);
  bool load_connected() const { return load_ != nullptr; }

  util::Status set_voltage(double volts);
  double voltage() const { return voltage_; }
  /// True once mains is up and an output voltage is programmed.
  bool ready() const { return mains_ && voltage_ > 0.0; }

  util::Status start_capture();
  util::Result<Capture> stop_capture();
  bool capturing() const { return capturing_; }

  /// Factory-style calibration against a known reference load: samples the
  /// currently wired load for `window`, compares against `reference_ma`
  /// and derives a gain correction applied to subsequent captures. Mirrors
  /// the vendor's calibration procedure (the paper "strictly followed
  /// Monsoon indications" for the accuracy experiment).
  util::Status calibrate_against(double reference_ma,
                                 Duration window = Duration::seconds(2));
  double gain_correction() const { return gain_correction_; }
  void reset_calibration();

  std::uint64_t overcurrent_events() const { return overcurrent_events_; }
  std::uint64_t negative_clamp_events() const {
    return negative_clamp_events_;
  }
  std::uint64_t captures_taken() const { return captures_taken_; }

 private:
  sim::Simulator& sim_;
  util::Rng rng_;
  MonsoonSpec spec_;
  const Load* load_ = nullptr;
  bool mains_ = false;
  double voltage_ = 0.0;
  bool capturing_ = false;
  TimePoint capture_start_;
  double gain_correction_ = 1.0;
  std::uint64_t overcurrent_events_ = 0;
  std::uint64_t negative_clamp_events_ = 0;
  std::uint64_t captures_taken_ = 0;
  /// Registry instruments, resolved once against sim_.metrics(). The
  /// synthesis hot loop accumulates into locals and publishes once per
  /// capture, so instrumenting costs nothing per sample.
  struct Metrics {
    obs::Counter* samples = nullptr;
    obs::Counter* blocks = nullptr;  ///< synthesis blocks (one span each)
    obs::Counter* captures = nullptr;
    obs::Counter* captures_aborted = nullptr;
    obs::Counter* overcurrent_clamps = nullptr;
    obs::Counter* negative_clamps = nullptr;
    obs::Counter* calibrations = nullptr;
    obs::Counter* calibration_resets = nullptr;
  };
  Metrics metrics_;
};

}  // namespace blab::hw
