// Controller GPIO interface (§3.2).
//
// The relay board hangs off the Raspberry Pi's GPIO header; software drives
// relay coils by writing pin levels. Pins must be configured as outputs
// before writing — misconfiguration is an error, like on real hardware.
#pragma once

#include <functional>
#include <unordered_map>

#include "util/result.hpp"

namespace blab::hw {

enum class PinMode { kUnconfigured, kInput, kOutput };
enum class PinLevel { kLow = 0, kHigh = 1 };

class GpioController {
 public:
  explicit GpioController(int pin_count = 40);

  int pin_count() const { return pin_count_; }

  util::Status set_mode(int pin, PinMode mode);
  util::Result<PinMode> mode(int pin) const;

  util::Status write(int pin, PinLevel level);
  util::Result<PinLevel> read(int pin) const;

  /// Observe writes to a pin (relay coils subscribe here).
  using Listener = std::function<void(int pin, PinLevel level)>;
  void on_write(int pin, Listener listener);

 private:
  util::Status check_pin(int pin) const;

  int pin_count_;
  std::unordered_map<int, PinMode> modes_;
  std::unordered_map<int, PinLevel> levels_;
  std::unordered_map<int, Listener> listeners_;
};

}  // namespace blab::hw
