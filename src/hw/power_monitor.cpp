#include "hw/power_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace blab::hw {

Capture::Capture(TimePoint t0, double sample_hz, double voltage,
                 std::vector<float> current_ma)
    : t0_{t0},
      sample_hz_{sample_hz},
      voltage_{voltage},
      current_ma_{std::move(current_ma)} {}

Capture::Capture(TimePoint t0, double sample_hz, double voltage,
                 std::vector<float> current_ma, CaptureStats stats)
    : t0_{t0},
      sample_hz_{sample_hz},
      voltage_{voltage},
      current_ma_{std::move(current_ma)},
      stats_{stats},
      stats_valid_{true} {}

void Capture::ensure_stats() const {
  if (stats_valid_) return;
  stats_ = CaptureStats{};
  if (!current_ma_.empty()) {
    util::KahanSum sum;
    float lo = current_ma_.front();
    float hi = current_ma_.front();
    for (float s : current_ma_) {
      sum.add(static_cast<double>(s));
      if (s < lo) lo = s;
      if (s > hi) hi = s;
    }
    stats_.mean_ma = sum.value() / static_cast<double>(current_ma_.size());
    stats_.min_ma = static_cast<double>(lo);
    stats_.max_ma = static_cast<double>(hi);
  }
  stats_valid_ = true;
}

double Capture::mean_current_ma() const {
  ensure_stats();
  return stats_.mean_ma;
}

double Capture::min_current_ma() const {
  ensure_stats();
  return stats_.min_ma;
}

double Capture::max_current_ma() const {
  ensure_stats();
  return stats_.max_ma;
}

const CaptureStats& Capture::stats() const {
  ensure_stats();
  return stats_;
}

double Capture::charge_mah() const {
  // Fixed-rate samples: mean * hours.
  const double hours = duration().to_seconds() / 3600.0;
  return mean_current_ma() * hours;
}

util::Cdf Capture::current_cdf(std::size_t stride) const {
  util::Cdf cdf;
  if (stride == 0) stride = 1;
  cdf.reserve((current_ma_.size() + stride - 1) / stride);
  for (std::size_t i = 0; i < current_ma_.size(); i += stride) {
    cdf.add(current_ma_[i]);
  }
  return cdf;
}

PowerMonitor::PowerMonitor(sim::Simulator& sim, util::Rng rng, MonsoonSpec spec)
    : sim_{sim}, rng_{std::move(rng)}, spec_{spec} {
  obs::MetricsRegistry& m = sim_.metrics();
  metrics_.samples = &m.counter("blab_monsoon_samples_synthesized_total");
  metrics_.blocks = &m.counter("blab_monsoon_synth_blocks_total");
  metrics_.captures = &m.counter("blab_monsoon_captures_total");
  metrics_.captures_aborted = &m.counter("blab_monsoon_captures_aborted_total");
  metrics_.overcurrent_clamps =
      &m.counter("blab_monsoon_clamp_events_total", {{"kind", "overcurrent"}});
  metrics_.negative_clamps =
      &m.counter("blab_monsoon_clamp_events_total", {{"kind", "negative"}});
  metrics_.calibrations = &m.counter("blab_monsoon_calibrations_total");
  metrics_.calibration_resets =
      &m.counter("blab_monsoon_calibration_resets_total");
  // Per-block synthesis spans fire once per 4096 samples — tail-sample them
  // 1-in-kBlockSampling per trace, with weights keeping the aggregate count
  // exact against blab_monsoon_synth_blocks_total. Traces whose root runs at
  // least kTailThresholdUs keep every block span at full fidelity.
  sim_.tracer().set_tail_sampling("monsoon", "synth_block", kBlockSampling,
                                  kTailThresholdUs);
}

void PowerMonitor::reset_calibration() {
  gain_correction_ = 1.0;
  if (metrics_.calibration_resets != nullptr) metrics_.calibration_resets->inc();
}

void PowerMonitor::set_mains(bool on) {
  if (mains_ == on) return;
  mains_ = on;
  if (!on && capturing_) {
    BLAB_WARN("monsoon", "mains lost mid-capture; capture aborted");
    capturing_ = false;
    metrics_.captures_aborted->inc();
  }
  if (!on) voltage_ = 0.0;  // output stage resets on power loss
}

void PowerMonitor::connect_load(const Load* load) { load_ = load; }

util::Status PowerMonitor::set_voltage(double volts) {
  if (!mains_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "monitor has no mains power");
  }
  if (volts != 0.0 &&
      (volts < spec_.min_voltage || volts > spec_.max_voltage)) {
    return util::make_error(
        util::ErrorCode::kInvalidArgument,
        "voltage " + std::to_string(volts) + "V outside [" +
            std::to_string(spec_.min_voltage) + ", " +
            std::to_string(spec_.max_voltage) + "]");
  }
  voltage_ = volts;
  return util::Status::ok_status();
}

util::Status PowerMonitor::start_capture() {
  if (!ready()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "monitor not ready (mains + voltage required)");
  }
  if (load_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no load wired to main channel");
  }
  if (capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "capture already running");
  }
  capturing_ = true;
  capture_start_ = sim_.now();
  return util::Status::ok_status();
}

util::Result<Capture> PowerMonitor::stop_capture() {
  if (!capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no capture running");
  }
  capturing_ = false;
  obs::ScopedSpan span{&sim_.tracer(), "monsoon", "synthesize_capture"};
  ++captures_taken_;
  const std::uint64_t oc_before = overcurrent_events_;
  const std::uint64_t neg_before = negative_clamp_events_;
  const TimePoint t0 = capture_start_;
  const TimePoint t1 = sim_.now();
  const auto n = static_cast<std::size_t>(
      (t1 - t0).to_seconds() * spec_.sample_hz);
  std::vector<float> samples(n);

  // Block-wise synthesis. Two fused stages per block: (1) fill_normal
  // batches the noise draws into one buffer (bit-identical to the scalar
  // per-sample sequence, and split-invariant, so the block size is a pure
  // tuning knob), (2) the timeline segment walk emits the true current run
  // by run, combining base + noise, clamps, and the fused mean/min/max
  // stats in a single pass — no staging array for the base current.
  const auto segs = load_->current_segments(t0, t1);
  const double dt = 1.0 / spec_.sample_hz;
  // Exactly the per-sample timestamp the scalar loop used; segment
  // attribution at breakpoint boundaries must not move by even one sample.
  const auto sample_time_us = [&](std::size_t i) {
    return (t0 + Duration::seconds(static_cast<double>(i) * dt)).us();
  };

  // Block size tuned against the ziggurat sampler: noise generation now runs
  // at ~1 u64 + multiply per sample, so the fill is no longer the block cost
  // and a larger block amortises the segment-walk setup while the 32 KiB
  // noise buffer stays cache-resident.
  constexpr std::size_t kBlock = 4096;
  double noise[kBlock];
  util::KahanSum mean_sum;
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  std::size_t seg = 0;
  for (std::size_t start = 0; start < n; start += kBlock) {
    const std::size_t len = std::min(kBlock, n - start);
    const std::size_t block_end = start + len;
    // One (sampled) span per block, nested under synthesize_capture and
    // paired 1:1 with the blocks counter so weighted span aggregates equal
    // it exactly. Blocks take zero simulated time: the spans are instants.
    obs::ScopedSpan block_span{&sim_.tracer(), "monsoon", "synth_block"};
    block_span.attr("samples", static_cast<std::int64_t>(len));
    metrics_.blocks->inc();
    rng_.fill_normal(std::span<double>{noise, len}, 0.0, spec_.noise_sigma_ma);
    std::size_t i = start;
    while (i < block_end) {
      const std::int64_t t_us = sample_time_us(i);
      while (seg + 1 < segs.size() && segs[seg + 1].first.us() <= t_us) ++seg;
      std::size_t run_end = block_end;
      if (seg + 1 < segs.size()) {
        // First sample index at/after the next breakpoint, by binary search
        // over the exact sample timestamps.
        const std::int64_t boundary = segs[seg + 1].first.us();
        std::size_t lo_i = i + 1;
        std::size_t hi_i = block_end;
        while (lo_i < hi_i) {
          const std::size_t mid = lo_i + (hi_i - lo_i) / 2;
          if (sample_time_us(mid) < boundary) {
            lo_i = mid + 1;
          } else {
            hi_i = mid;
          }
        }
        run_end = lo_i;
      }
      const double v = segs.empty()
                           ? 0.0
                           : segs[seg].second * spec_.gain * gain_correction_;
      for (std::size_t k = i; k < run_end; ++k) {
        double measured = v + noise[k - start];
        if (measured < 0.0) {
          measured = 0.0;
          ++negative_clamp_events_;
        }
        if (measured > spec_.max_current_ma) {
          measured = spec_.max_current_ma;
          ++overcurrent_events_;
        }
        const float s = static_cast<float>(measured);
        samples[k] = s;
        mean_sum.add(static_cast<double>(s));
        if (s < lo) lo = s;
        if (s > hi) hi = s;
      }
      i = run_end;
    }
  }

  CaptureStats stats;
  if (n > 0) {
    stats.mean_ma = mean_sum.value() / static_cast<double>(n);
    stats.min_ma = static_cast<double>(lo);
    stats.max_ma = static_cast<double>(hi);
  }
  metrics_.captures->inc();
  metrics_.samples->inc(n);
  if (overcurrent_events_ > oc_before) {
    metrics_.overcurrent_clamps->inc(overcurrent_events_ - oc_before);
  }
  if (negative_clamp_events_ > neg_before) {
    metrics_.negative_clamps->inc(negative_clamp_events_ - neg_before);
  }
  span.attr("samples", static_cast<std::int64_t>(n));
  span.attr("bytes", static_cast<std::int64_t>(n * sizeof(float)));
  span.attr("overcurrent_clamps",
            static_cast<std::int64_t>(overcurrent_events_ - oc_before));
  span.attr("negative_clamps",
            static_cast<std::int64_t>(negative_clamp_events_ - neg_before));
  return Capture{t0, spec_.sample_hz, voltage_, std::move(samples), stats};
}

util::Status PowerMonitor::calibrate_against(double reference_ma,
                                             Duration window) {
  if (reference_ma <= 0.0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "reference current must be positive");
  }
  if (capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "cannot calibrate mid-capture");
  }
  if (auto st = start_capture(); !st.ok()) return st;
  sim_.run_for(window);
  auto capture = stop_capture();
  if (!capture.ok()) return capture.error();
  --captures_taken_;  // calibration sweeps are not user captures
  const double measured = capture.value().mean_current_ma();
  if (measured <= 0.0) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no current flowing through the reference load");
  }
  gain_correction_ *= reference_ma / measured;
  metrics_.calibrations->inc();
  return util::Status::ok_status();
}

}  // namespace blab::hw
