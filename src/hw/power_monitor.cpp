#include "hw/power_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace blab::hw {

Capture::Capture(TimePoint t0, double sample_hz, double voltage,
                 std::vector<float> current_ma)
    : t0_{t0},
      sample_hz_{sample_hz},
      voltage_{voltage},
      current_ma_{std::move(current_ma)} {}

double Capture::mean_current_ma() const {
  if (current_ma_.empty()) return 0.0;
  double sum = 0.0;
  for (float s : current_ma_) sum += s;
  return sum / static_cast<double>(current_ma_.size());
}

double Capture::charge_mah() const {
  // Fixed-rate samples: mean * hours.
  const double hours = duration().to_seconds() / 3600.0;
  return mean_current_ma() * hours;
}

util::Cdf Capture::current_cdf(std::size_t stride) const {
  util::Cdf cdf;
  if (stride == 0) stride = 1;
  for (std::size_t i = 0; i < current_ma_.size(); i += stride) {
    cdf.add(current_ma_[i]);
  }
  return cdf;
}

PowerMonitor::PowerMonitor(sim::Simulator& sim, util::Rng rng, MonsoonSpec spec)
    : sim_{sim}, rng_{std::move(rng)}, spec_{spec} {}

void PowerMonitor::set_mains(bool on) {
  if (mains_ == on) return;
  mains_ = on;
  if (!on && capturing_) {
    BLAB_WARN("monsoon", "mains lost mid-capture; capture aborted");
    capturing_ = false;
  }
  if (!on) voltage_ = 0.0;  // output stage resets on power loss
}

void PowerMonitor::connect_load(const Load* load) { load_ = load; }

util::Status PowerMonitor::set_voltage(double volts) {
  if (!mains_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "monitor has no mains power");
  }
  if (volts != 0.0 &&
      (volts < spec_.min_voltage || volts > spec_.max_voltage)) {
    return util::make_error(
        util::ErrorCode::kInvalidArgument,
        "voltage " + std::to_string(volts) + "V outside [" +
            std::to_string(spec_.min_voltage) + ", " +
            std::to_string(spec_.max_voltage) + "]");
  }
  voltage_ = volts;
  return util::Status::ok_status();
}

util::Status PowerMonitor::start_capture() {
  if (!ready()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "monitor not ready (mains + voltage required)");
  }
  if (load_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no load wired to main channel");
  }
  if (capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "capture already running");
  }
  capturing_ = true;
  capture_start_ = sim_.now();
  return util::Status::ok_status();
}

util::Result<Capture> PowerMonitor::stop_capture() {
  if (!capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no capture running");
  }
  capturing_ = false;
  ++captures_taken_;
  const TimePoint t0 = capture_start_;
  const TimePoint t1 = sim_.now();
  const auto n = static_cast<std::size_t>(
      (t1 - t0).to_seconds() * spec_.sample_hz);
  std::vector<float> samples;
  samples.reserve(n);

  const auto segs = load_->current_segments(t0, t1);
  const double dt = 1.0 / spec_.sample_hz;
  std::size_t seg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TimePoint t =
        t0 + Duration::seconds(static_cast<double>(i) * dt);
    while (seg + 1 < segs.size() && segs[seg + 1].first <= t) ++seg;
    const double truth = segs.empty() ? 0.0 : segs[seg].second;
    double measured = truth * spec_.gain * gain_correction_ +
                      rng_.normal(0.0, spec_.noise_sigma_ma);
    if (measured < 0.0) measured = 0.0;
    if (measured > spec_.max_current_ma) {
      measured = spec_.max_current_ma;
      ++overcurrent_events_;
    }
    samples.push_back(static_cast<float>(measured));
  }
  return Capture{t0, spec_.sample_hz, voltage_, std::move(samples)};
}

util::Status PowerMonitor::calibrate_against(double reference_ma,
                                             Duration window) {
  if (reference_ma <= 0.0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "reference current must be positive");
  }
  if (capturing_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "cannot calibrate mid-capture");
  }
  if (auto st = start_capture(); !st.ok()) return st;
  sim_.run_for(window);
  auto capture = stop_capture();
  if (!capture.ok()) return capture.error();
  --captures_taken_;  // calibration sweeps are not user captures
  const double measured = capture.value().mean_current_ma();
  if (measured <= 0.0) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no current flowing through the reference load");
  }
  gain_correction_ *= reference_ma / measured;
  return util::Status::ok_status();
}

}  // namespace blab::hw
