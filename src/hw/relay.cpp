#include "hw/relay.hpp"

#include <algorithm>
#include <map>

namespace blab::hw {

const char* relay_position_name(RelayPosition pos) {
  switch (pos) {
    case RelayPosition::kBattery: return "battery";
    case RelayPosition::kBypass: return "bypass";
  }
  return "?";
}

RelayBoard::RelayBoard(sim::Simulator& sim, GpioController& gpio, int channels,
                       int base_pin, RelayBoardSpec spec)
    : sim_{sim}, gpio_{gpio}, base_pin_{base_pin}, spec_{spec} {
  channels_.resize(static_cast<std::size_t>(channels));
  for (int i = 0; i < channels; ++i) {
    const int pin = base_pin_ + i;
    (void)gpio_.set_mode(pin, PinMode::kOutput);
    gpio_.on_write(pin, [this, i](int, PinLevel level) {
      // The coil needs actuation time before contacts settle.
      const RelayPosition target = (level == PinLevel::kHigh)
                                       ? RelayPosition::kBypass
                                       : RelayPosition::kBattery;
      sim_.schedule_after(spec_.switch_time, [this, i, target] {
        auto& ch = channels_[static_cast<std::size_t>(i)];
        if (ch.position == target) return;
        ch.position = target;
        ch.position_history.set(
            sim_.now(), target == RelayPosition::kBypass ? 1.0 : 0.0);
        ++ch.toggles;
        ch.last_switch = sim_.now();
        switch_events_.push_back(sim_.now());
      }, "relay.settle");
    });
  }
}

util::Status RelayBoard::check_channel(int channel) const {
  if (channel < 0 || channel >= channel_count()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "relay channel " + std::to_string(channel) +
                                " out of range");
  }
  return util::Status::ok_status();
}

util::Status RelayBoard::connect_load(int channel, const Load* load) {
  if (auto st = check_channel(channel); !st.ok()) return st;
  auto& ch = channels_[static_cast<std::size_t>(channel)];
  if (ch.load != nullptr) {
    return util::make_error(util::ErrorCode::kAlreadyExists,
                            "channel already wired");
  }
  ch.load = load;
  return util::Status::ok_status();
}

util::Status RelayBoard::disconnect_load(int channel) {
  if (auto st = check_channel(channel); !st.ok()) return st;
  channels_[static_cast<std::size_t>(channel)].load = nullptr;
  return util::Status::ok_status();
}

util::Status RelayBoard::set_position(int channel, RelayPosition pos) {
  if (auto st = check_channel(channel); !st.ok()) return st;
  return gpio_.write(base_pin_ + channel, pos == RelayPosition::kBypass
                                              ? PinLevel::kHigh
                                              : PinLevel::kLow);
}

util::Result<RelayPosition> RelayBoard::position(int channel) const {
  if (auto st = check_channel(channel); !st.ok()) return st.error();
  return channels_[static_cast<std::size_t>(channel)].position;
}

util::Result<std::uint64_t> RelayBoard::toggles(int channel) const {
  if (auto st = check_channel(channel); !st.ok()) return st.error();
  return channels_[static_cast<std::size_t>(channel)].toggles;
}

bool RelayBoard::any_bypass() const {
  return std::any_of(channels_.begin(), channels_.end(), [](const auto& ch) {
    return ch.position == RelayPosition::kBypass;
  });
}

std::vector<int> RelayBoard::bypass_channels() const {
  std::vector<int> out;
  for (int i = 0; i < channel_count(); ++i) {
    if (channels_[static_cast<std::size_t>(i)].position ==
        RelayPosition::kBypass) {
      out.push_back(i);
    }
  }
  return out;
}

double RelayBoard::transient_at(TimePoint t) const {
  for (auto it = switch_events_.rbegin(); it != switch_events_.rend(); ++it) {
    if (*it > t) continue;
    if (t - *it < spec_.transient_duration) return spec_.transient_extra_ma;
    break;  // events are ordered; older ones are further away
  }
  return 0.0;
}

double RelayBoard::current_ma(TimePoint t) const {
  double total = 0.0;
  for (const auto& ch : channels_) {
    if (ch.bypass_at(t) && ch.load != nullptr) {
      total += ch.load->current_ma(t) * (1.0 + spec_.contact_loss_fraction);
    }
  }
  return total + transient_at(t);
}

std::vector<std::pair<TimePoint, double>> RelayBoard::current_segments(
    TimePoint t0, TimePoint t1) const {
  // Merge the breakpoints of every bypass channel plus transient windows.
  std::map<TimePoint, char> cuts;  // value unused; map gives sorted unique keys
  cuts[t0] = 0;
  for (const auto& ch : channels_) {
    if (ch.load == nullptr) continue;
    // Position flips within the window are cut points via switch_events_;
    // a channel contributes load breakpoints whenever it spent any time in
    // bypass during the window.
    if (!ch.bypass_at(t0) && !ch.bypass_at(t1) && ch.toggles == 0) continue;
    for (const auto& [t, _] : ch.load->current_segments(t0, t1)) cuts[t] = 0;
  }
  for (TimePoint ev : switch_events_) {
    if (ev >= t1) break;
    if (ev + spec_.transient_duration > t0) {
      if (ev >= t0) cuts[ev] = 0;
      const TimePoint end = ev + spec_.transient_duration;
      if (end < t1) cuts[end] = 0;
    }
  }
  std::vector<std::pair<TimePoint, double>> out;
  out.reserve(cuts.size());
  for (const auto& [t, _] : cuts) {
    const double v = current_ma(t);
    if (!out.empty() && out.back().second == v) continue;
    out.emplace_back(t, v);
  }
  if (out.empty()) out.emplace_back(t0, current_ma(t0));
  return out;
}

}  // namespace blab::hw
