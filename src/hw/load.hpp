// Electrical load interface.
//
// Anything that draws supply current (a test device's power input) exposes
// its draw as piecewise-constant segments; the relay board forwards and the
// power monitor samples them.
#pragma once

#include <utility>
#include <vector>

#include "util/time.hpp"

namespace blab::hw {

using util::Duration;
using util::TimePoint;

class Load {
 public:
  virtual ~Load() = default;

  /// Instantaneous supply current in mA at time t.
  virtual double current_ma(TimePoint t) const = 0;

  /// Piecewise segments of supply current over [t0, t1): (start, mA) pairs,
  /// first entry clamped to t0, each value holding until the next entry.
  virtual std::vector<std::pair<TimePoint, double>> current_segments(
      TimePoint t0, TimePoint t1) const = 0;
};

}  // namespace blab::hw
