// Piecewise-constant signal timeline.
//
// Devices publish their current draw as breakpoints (t, value); the power
// monitor synthesizes 5 kHz samples from the segments lazily. This keeps a
// 5-minute capture (1.5 M samples) cheap: the simulator only sees events at
// state *changes*, not at sample boundaries.
#pragma once

#include <utility>
#include <vector>

#include "util/time.hpp"

namespace blab::hw {

using util::Duration;
using util::TimePoint;

class Timeline {
 public:
  /// Record a breakpoint: the signal holds `value` from `t` until the next
  /// breakpoint. Breakpoints must be appended in non-decreasing time order.
  void set(TimePoint t, double value);

  /// Value at time `t` (0 before the first breakpoint).
  double at(TimePoint t) const;
  double last_value() const;
  bool empty() const { return points_.empty(); }
  std::size_t breakpoints() const { return points_.size(); }

  /// Segments overlapping [t0, t1): pairs of (segment start clamped to t0,
  /// value). The final segment extends to t1.
  std::vector<std::pair<TimePoint, double>> segments(TimePoint t0,
                                                     TimePoint t1) const;

  /// Time-weighted mean over [t0, t1).
  double mean(TimePoint t0, TimePoint t1) const;
  /// Integral of value dt over [t0, t1), in value*seconds.
  double integral(TimePoint t0, TimePoint t1) const;

  /// Drop breakpoints strictly before `t` (keeping the boundary value).
  void prune_before(TimePoint t);

 private:
  std::vector<std::pair<TimePoint, double>> points_;
};

}  // namespace blab::hw
