// Relay-based circuit switch (§3.2).
//
// Each SPDT relay channel routes a device's voltage terminal either to its
// own battery ("battery" position) or to the Monsoon's Vout ("bypass"
// position, battery disconnected). Channels are driven from controller GPIO
// pins. Because the relay is SPDT, a channel is never connected to both
// sources — that invariant holds by construction and is property-tested.
//
// The board itself is a Load: the monitor sees the sum of all channels in
// bypass position, with a small contact-resistance loss factor and a brief
// switching transient after each toggle (both deliberately negligible —
// Fig. 2 shows direct vs relay traces coincide).
#pragma once

#include <memory>
#include <vector>

#include "hw/gpio.hpp"
#include "hw/load.hpp"
#include "hw/timeline.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"

namespace blab::hw {

enum class RelayPosition { kBattery, kBypass };

const char* relay_position_name(RelayPosition pos);

struct RelayChannelState {
  RelayPosition position = RelayPosition::kBattery;
  const Load* load = nullptr;
  std::uint64_t toggles = 0;
  TimePoint last_switch = TimePoint::epoch();
  /// Position history (0 = battery, 1 = bypass) so past capture windows
  /// spanning a switch read correctly.
  Timeline position_history;

  bool bypass_at(TimePoint t) const { return position_history.at(t) >= 0.5; }
};

struct RelayBoardSpec {
  double contact_loss_fraction = 0.002;  ///< ~0.2% extra measured current
  Duration transient_duration = Duration::millis(2);
  double transient_extra_ma = 25.0;
  Duration switch_time = Duration::millis(10);  ///< coil actuation delay
};

class RelayBoard : public Load {
 public:
  /// Channels map to GPIO pins [base_pin, base_pin + channels); the pins are
  /// configured as outputs here. HIGH = bypass, LOW = battery.
  RelayBoard(sim::Simulator& sim, GpioController& gpio, int channels,
             int base_pin, RelayBoardSpec spec = {});

  int channel_count() const { return static_cast<int>(channels_.size()); }
  const RelayBoardSpec& spec() const { return spec_; }

  /// Wire a device's power input into a channel.
  util::Status connect_load(int channel, const Load* load);
  util::Status disconnect_load(int channel);

  /// Flip a channel (drives the GPIO pin; position changes after the coil
  /// actuation delay).
  util::Status set_position(int channel, RelayPosition pos);
  util::Result<RelayPosition> position(int channel) const;
  util::Result<std::uint64_t> toggles(int channel) const;
  /// True if any channel currently routes its device to the monitor.
  bool any_bypass() const;
  /// Channels currently in bypass.
  std::vector<int> bypass_channels() const;

  // Load interface: aggregate bypass-side current seen by the monitor.
  double current_ma(TimePoint t) const override;
  std::vector<std::pair<TimePoint, double>> current_segments(
      TimePoint t0, TimePoint t1) const override;

 private:
  util::Status check_channel(int channel) const;
  double transient_at(TimePoint t) const;

  sim::Simulator& sim_;
  GpioController& gpio_;
  int base_pin_;
  RelayBoardSpec spec_;
  std::vector<RelayChannelState> channels_;
  std::vector<TimePoint> switch_events_;
};

}  // namespace blab::hw
