#include "hw/battery.hpp"

#include <algorithm>
#include <cmath>

namespace blab::hw {

Battery::Battery(BatterySpec spec, double initial_soc)
    : spec_{spec}, soc_{std::clamp(initial_soc, 0.0, 1.0)} {}

double Battery::open_circuit_voltage() const {
  // Piecewise Li-ion OCV curve: steep knee below 10%, plateau in the middle,
  // gentle rise to full. Interpolated over anchor points.
  struct Anchor {
    double soc;
    double frac;  // fraction of (full - empty) above empty
  };
  static constexpr Anchor anchors[] = {
      {0.00, 0.00}, {0.05, 0.30}, {0.10, 0.45}, {0.25, 0.58},
      {0.50, 0.70}, {0.75, 0.84}, {0.90, 0.93}, {1.00, 1.00},
  };
  const double span = spec_.full_voltage - spec_.empty_voltage;
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (soc_ <= anchors[i].soc) {
      const auto& a = anchors[i - 1];
      const auto& b = anchors[i];
      const double t = (soc_ - a.soc) / (b.soc - a.soc);
      return spec_.empty_voltage + span * (a.frac + t * (b.frac - a.frac));
    }
  }
  return spec_.full_voltage;
}

double Battery::terminal_voltage(double current_ma) const {
  const double sag = current_ma / 1000.0 * spec_.internal_resistance_ohm;
  return std::max(0.0, open_circuit_voltage() - sag);
}

double Battery::discharge(double current_ma, Duration d) {
  if (current_ma <= 0.0 || d <= Duration::zero()) return 0.0;
  const double requested_mah = current_ma * d.to_seconds() / 3600.0;
  const double available = remaining_mah();
  const double removed = std::min(requested_mah, available);
  soc_ = std::max(0.0, soc_ - removed / spec_.capacity_mah);
  total_discharged_mah_ += removed;
  return removed;
}

void Battery::charge(double mah) {
  if (mah <= 0.0) return;
  soc_ = std::min(1.0, soc_ + mah / spec_.capacity_mah);
}

void Battery::set_soc(double soc) { soc_ = std::clamp(soc, 0.0, 1.0); }

}  // namespace blab::hw
