#include "hw/power_socket.hpp"

#include "hw/power_monitor.hpp"

namespace blab::hw {

PowerSocket::PowerSocket(net::Network& net, std::string host, int port)
    : net_{net}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const net::Message& m) { on_message(m); });
}

PowerSocket::~PowerSocket() { net_.unlisten(addr_); }

void PowerSocket::attach_monitor(PowerMonitor* monitor) {
  monitor_ = monitor;
  if (monitor_ != nullptr) monitor_->set_mains(on_);
}

void PowerSocket::apply(bool on) {
  if (on_ != on) {
    on_ = on;
    ++toggles_;
    if (monitor_ != nullptr) monitor_->set_mains(on_);
  }
}

util::Status PowerSocket::turn_on() {
  apply(true);
  return util::Status::ok_status();
}

util::Status PowerSocket::turn_off() {
  apply(false);
  return util::Status::ok_status();
}

void PowerSocket::on_message(const net::Message& msg) {
  // Tiny Meross-like protocol: payload "on"/"off"/"get"; reply with state.
  if (msg.tag != "meross.set" && msg.tag != "meross.get") return;
  if (msg.tag == "meross.set") {
    if (msg.payload == "on") apply(true);
    if (msg.payload == "off") apply(false);
  }
  net::Message reply;
  reply.src = addr_;
  reply.dst = msg.src;
  reply.tag = "meross.state";
  reply.payload = on_ ? "on" : "off";
  reply.wire_bytes = 96;
  (void)net_.send(std::move(reply));
}

}  // namespace blab::hw
