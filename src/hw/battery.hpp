// Lithium-ion battery model.
//
// Test devices ship with removable batteries (§3.2 recommends them); the
// relay board switches the phone between real-battery operation and the
// "battery bypass" where the Monsoon supplies power. The model tracks state
// of charge, an open-circuit voltage curve, and integrates discharge.
#pragma once

#include "util/result.hpp"
#include "util/time.hpp"

namespace blab::hw {

using util::Duration;

struct BatterySpec {
  double capacity_mah = 3000.0;   ///< Samsung J7 Duo ships a 3000 mAh pack
  double nominal_voltage = 3.85;
  double full_voltage = 4.35;
  double empty_voltage = 3.40;
  double internal_resistance_ohm = 0.10;
  bool removable = true;
};

class Battery {
 public:
  explicit Battery(BatterySpec spec = {}, double initial_soc = 1.0);

  const BatterySpec& spec() const { return spec_; }

  /// State of charge in [0, 1].
  double soc() const { return soc_; }
  double remaining_mah() const { return soc_ * spec_.capacity_mah; }
  bool depleted() const { return soc_ <= 0.0; }

  /// Open-circuit voltage at the current state of charge (monotonic in SoC).
  double open_circuit_voltage() const;
  /// Terminal voltage under a load drawing `current_ma` (sag from internal
  /// resistance).
  double terminal_voltage(double current_ma) const;

  /// Discharge by a constant current for a duration. Returns the charge
  /// actually removed (mAh) — less than requested if the battery empties.
  double discharge(double current_ma, Duration d);
  /// Recharge (e.g. USB between experiments); clamps at full.
  void charge(double mah);
  void set_soc(double soc);

  double total_discharged_mah() const { return total_discharged_mah_; }

 private:
  BatterySpec spec_;
  double soc_;
  double total_discharged_mah_ = 0.0;
};

}  // namespace blab::hw
