// Meross-style WiFi power socket (§3.2).
//
// The controller cannot cut the Monsoon's mains directly, so BatteryLab uses
// a WiFi smart socket with a small HTTP-ish API. The socket is a network
// endpoint ("meross.set"/"meross.get" messages) and also callable in-process;
// toggling it drives the monitor's mains input. A safety job keeps it off
// between experiments.
#pragma once

#include <functional>
#include <string>

#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::hw {

class PowerMonitor;

class PowerSocket {
 public:
  /// Binds the control endpoint at {host, port}.
  PowerSocket(net::Network& net, std::string host, int port = 80);
  ~PowerSocket();
  PowerSocket(const PowerSocket&) = delete;
  PowerSocket& operator=(const PowerSocket&) = delete;

  const net::Address& address() const { return addr_; }

  /// Wire the socket's output to a monitor's mains input.
  void attach_monitor(PowerMonitor* monitor);

  util::Status turn_on();
  util::Status turn_off();
  bool is_on() const { return on_; }
  std::uint64_t toggle_count() const { return toggles_; }

 private:
  void on_message(const net::Message& msg);
  void apply(bool on);

  net::Network& net_;
  net::Address addr_;
  PowerMonitor* monitor_ = nullptr;
  bool on_ = false;
  std::uint64_t toggles_ = 0;
};

}  // namespace blab::hw
