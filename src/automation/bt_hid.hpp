// Bluetooth HID keyboard automation channel (§3.3).
//
// The controller emulates a keyboard the device pairs with; key events ride
// the Bluetooth link, so automation works on cellular and without root, on
// both Android and iOS. The device-side half is device::BtHidService.
// App-state management is deliberately unsupported — the paper keeps those
// operations on ADB, outside the measurement window.
#pragma once

#include "automation/channels.hpp"
#include "device/device.hpp"
#include "device/hid_service.hpp"
#include "net/bluetooth.hpp"
#include "net/network.hpp"

namespace blab::automation {

/// Backward-compatible aliases: the service itself now lives in device/.
using device::BtHidService;
using device::kBtHidPort;

/// Controller-side channel. Requires an HID pairing between the controller's
/// and the device's Bluetooth adapters.
class BtKeyboardChannel : public AutomationChannel {
 public:
  /// Fails (reported by `ready()`) unless the adapters are HID-paired.
  BtKeyboardChannel(net::Network& net, net::BluetoothAdapter& controller_bt,
                    device::AndroidDevice& device);

  util::Status ready() const;

  const char* name() const override { return "bt-keyboard"; }
  util::Status text(const std::string& s) override;
  util::Status key(int keycode) override;
  util::Status swipe(int dy) override;
  util::Status tap(int x, int y) override;
  util::Status launch_app(const std::string& package) override;
  util::Status stop_app(const std::string& package) override;
  util::Status clear_app(const std::string& package) override;
  bool supports_app_management() const override { return false; }

 private:
  util::Status send_event(const std::string& event);

  net::Network& net_;
  net::BluetoothAdapter& controller_bt_;
  device::AndroidDevice& device_;
};

}  // namespace blab::automation
