#include "automation/script.hpp"

#include "device/app.hpp"

namespace blab::automation {

Script& Script::launch(const std::string& package) {
  steps_.push_back({StepKind::kLaunchApp, package, 0, 0, {}});
  return *this;
}

Script& Script::stop(const std::string& package) {
  steps_.push_back({StepKind::kStopApp, package, 0, 0, {}});
  return *this;
}

Script& Script::clear(const std::string& package) {
  steps_.push_back({StepKind::kClearApp, package, 0, 0, {}});
  return *this;
}

Script& Script::type(const std::string& text) {
  steps_.push_back({StepKind::kText, text, 0, 0, {}});
  return *this;
}

Script& Script::key(int keycode) {
  steps_.push_back({StepKind::kKey, "", keycode, 0, {}});
  return *this;
}

Script& Script::press_enter() { return key(device::kKeycodeEnter); }

Script& Script::swipe(int dy) {
  steps_.push_back({StepKind::kSwipe, "", dy, 0, {}});
  return *this;
}

Script& Script::tap(int x, int y) {
  steps_.push_back({StepKind::kTap, "", x, y, {}});
  return *this;
}

Script& Script::wait(util::Duration d) {
  steps_.push_back({StepKind::kWait, "", 0, 0, d});
  return *this;
}

Script& Script::then(util::Duration d) {
  if (!steps_.empty()) steps_.back().delay_after += d;
  return *this;
}

util::Result<ScriptRunStats> run_script(sim::Simulator& sim,
                                        AutomationChannel& channel,
                                        const Script& script,
                                        bool stop_on_error) {
  ScriptRunStats stats;
  const util::TimePoint started = sim.now();
  for (const Step& step : script.steps()) {
    util::Status st = util::Status::ok_status();
    switch (step.kind) {
      case StepKind::kLaunchApp: st = channel.launch_app(step.text); break;
      case StepKind::kStopApp: st = channel.stop_app(step.text); break;
      case StepKind::kClearApp: st = channel.clear_app(step.text); break;
      case StepKind::kText: st = channel.text(step.text); break;
      case StepKind::kKey: st = channel.key(step.a); break;
      case StepKind::kSwipe: st = channel.swipe(step.a); break;
      case StepKind::kTap: st = channel.tap(step.a, step.b); break;
      case StepKind::kWait: break;
    }
    ++stats.steps_executed;
    if (!st.ok()) {
      ++stats.steps_failed;
      if (stop_on_error) {
        stats.elapsed = sim.now() - started;
        return st.error();
      }
    }
    if (step.delay_after > util::Duration::zero()) {
      sim.run_for(step.delay_after);
    }
  }
  stats.elapsed = sim.now() - started;
  return stats;
}

}  // namespace blab::automation
