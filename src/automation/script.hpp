// Automation scripts: declarative step sequences executed over a channel.
//
// Experimenters "write an automation script which instruments a browser to
// load a webpage and interact with it" (§4.2). A Script is a list of steps
// with inter-step delays; the runner executes it at the top level, advancing
// the simulator between steps (so a 6-second page wait really is 6 seconds
// of simulated time with the device drawing power throughout).
#pragma once

#include <string>
#include <vector>

#include "automation/channels.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"

namespace blab::automation {

enum class StepKind {
  kLaunchApp,
  kStopApp,
  kClearApp,
  kText,
  kKey,
  kSwipe,
  kTap,
  kWait,
};

struct Step {
  StepKind kind = StepKind::kWait;
  std::string text;   ///< app package or input text
  int a = 0;          ///< keycode / dy / x
  int b = 0;          ///< y
  util::Duration delay_after = util::Duration::zero();
};

class Script {
 public:
  Script& launch(const std::string& package);
  Script& stop(const std::string& package);
  Script& clear(const std::string& package);
  Script& type(const std::string& text);
  Script& key(int keycode);
  Script& press_enter();
  Script& swipe(int dy);
  Script& tap(int x, int y);
  Script& wait(util::Duration d);
  /// Attach a delay to the most recent step (fluent: .type("x").then(2s)).
  Script& then(util::Duration d);

  const std::vector<Step>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }

 private:
  std::vector<Step> steps_;
};

struct ScriptRunStats {
  std::size_t steps_executed = 0;
  std::size_t steps_failed = 0;
  util::Duration elapsed = util::Duration::zero();
};

/// Execute at top level (never from inside a simulator callback). Failures
/// of individual steps are recorded; `stop_on_error` aborts at the first.
util::Result<ScriptRunStats> run_script(sim::Simulator& sim,
                                        AutomationChannel& channel,
                                        const Script& script,
                                        bool stop_on_error = true);

}  // namespace blab::automation
