// The §4.2 browser energy workload.
//
// "Each browser is instrumented to sequentially load 10 popular news
// websites. After a URL is entered, the automation script waits 6 seconds —
// emulating a typical page load time — and then interacts with the page by
// executing multiple scroll up and scroll down operations. Before the
// beginning of a workload, the browser state is cleaned and the required
// setup is done."
//
// run_browser_energy_test() performs exactly that against a device at a
// vantage point, with active battery monitoring, and returns the capture
// plus the device-CPU distribution (Figs. 3, 4, 6).
#pragma once

#include <optional>
#include <string>

#include "api/batterylab_api.hpp"
#include "automation/script.hpp"
#include "device/browser.hpp"
#include "util/result.hpp"
#include "util/stats.hpp"

namespace blab::automation {

struct BrowserWorkloadOptions {
  int pages = 10;
  int scrolls_per_page = 6;
  util::Duration page_wait = util::Duration::seconds(6);
  util::Duration scroll_gap = util::Duration::seconds(2);
  bool mirroring = false;
  /// Monitor voltage (Samsung J7 Duo nominal pack voltage).
  double voltage = 3.85;
  /// Sampling period for the device CPU CDF.
  util::Duration cpu_sample_period = util::Duration::millis(200);
};

struct BrowserRunResult {
  std::string browser;
  hw::Capture capture;
  double discharge_mah = 0.0;
  double mean_current_ma = 0.0;
  util::Cdf device_cpu;      ///< utilization in [0,1] over the run
  util::Cdf controller_cpu;  ///< Pi utilization over the run (Fig. 5)
  std::uint64_t bytes_fetched = 0;
  std::size_t pages_loaded = 0;
  util::Duration elapsed = util::Duration::zero();
};

/// Build the per-page interaction script (type URL, enter, wait, scrolls).
Script build_browser_page_script(const std::string& url,
                                 const BrowserWorkloadOptions& options);

/// Run the full workload on `serial` with browser `profile`. The browser is
/// installed on demand, its state cleared and first-run completed over ADB
/// while USB is still powered, then the measurement runs over WiFi.
util::Result<BrowserRunResult> run_browser_energy_test(
    api::BatteryLabApi& api, const std::string& serial,
    const device::BrowserProfile& profile,
    const BrowserWorkloadOptions& options = {});

/// Sample a utilization timeline into a CDF over [t0, t1).
util::Cdf sample_timeline_cdf(const hw::Timeline& timeline, util::TimePoint t0,
                              util::TimePoint t1, util::Duration period);

}  // namespace blab::automation
