#include "automation/browser_workload.hpp"

#include <memory>

#include "device/android.hpp"
#include "util/logging.hpp"

namespace blab::automation {

Script build_browser_page_script(const std::string& url,
                                 const BrowserWorkloadOptions& options) {
  Script script;
  script.type(url).then(util::Duration::millis(500));
  script.press_enter().then(options.page_wait);
  for (int s = 0; s < options.scrolls_per_page; ++s) {
    // Alternate scroll down / scroll up, like the paper's interaction.
    script.swipe(s % 2 == 0 ? -600 : 600).then(options.scroll_gap);
  }
  return script;
}

util::Cdf sample_timeline_cdf(const hw::Timeline& timeline, util::TimePoint t0,
                              util::TimePoint t1, util::Duration period) {
  util::Cdf cdf;
  for (util::TimePoint t = t0; t < t1; t += period) {
    cdf.add(timeline.at(t));
  }
  return cdf;
}

util::Result<BrowserRunResult> run_browser_energy_test(
    api::BatteryLabApi& api, const std::string& serial,
    const device::BrowserProfile& profile,
    const BrowserWorkloadOptions& options) {
  auto& vp = api.vantage_point();
  auto& sim = vp.simulator();
  device::AndroidDevice* dev = vp.find_device(serial);
  if (dev == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown device " + serial);
  }
  // Install the browser on demand (sideloaded once per device).
  if (dev->os().app(profile.package) == nullptr) {
    if (auto st = dev->os().install(
            std::make_unique<device::Browser>(*dev, profile));
        !st.ok()) {
      return st.error();
    }
  }

  AdbChannel channel{api, serial};

  // ---- Setup phase: USB still powered, ADB over USB (§3.3) --------------
  Script setup;
  setup.clear(profile.package)
      .launch(profile.package)
      .then(util::Duration::millis(700));
  if (profile.needs_first_run_setup) {
    setup.tap(540, 1700).then(util::Duration::millis(400));
    setup.tap(540, 1700).then(util::Duration::millis(400));
  }
  if (auto r = run_script(sim, channel, setup); !r.ok()) return r.error();
  if (profile.supports_lite_pages) {
    // §4.3: lite pages are turned off to keep tests comparable.
    if (auto r = api.execute_adb(
            serial, "settings put secure chrome_lite_pages 0");
        !r.ok()) {
      return r.error();
    }
  }

  // ---- Mirroring (usability mode) ----------------------------------------
  if (options.mirroring && !api.mirroring_active(serial)) {
    if (auto st = api.device_mirroring(serial, true); !st.ok()) return st.error();
  }

  // ---- Measurement: monitor up, USB cut, automation over WiFi ------------
  if (!api.monitor_powered()) {
    if (auto st = api.power_monitor(); !st.ok()) return st.error();
  }
  if (auto st = api.set_voltage(options.voltage); !st.ok()) return st.error();
  vp.controller().resources().start_sampling(options.cpu_sample_period);
  if (auto st = api.start_monitor(serial); !st.ok()) return st.error();

  const util::TimePoint t0 = sim.now();
  device::Browser* browser =
      static_cast<device::Browser*>(dev->os().app(profile.package));
  const std::uint64_t bytes_before = browser->bytes_fetched();

  const auto& catalog = device::WebCatalog::news_sites();
  for (int p = 0; p < options.pages; ++p) {
    const auto& page = catalog.pages()[static_cast<std::size_t>(p) %
                                       catalog.pages().size()];
    const Script script = build_browser_page_script(page.url, options);
    if (auto r = run_script(sim, channel, script); !r.ok()) {
      (void)api.stop_monitor();
      vp.controller().resources().stop_sampling();
      return r.error();
    }
  }

  auto capture = api.stop_monitor();
  const util::TimePoint t1 = sim.now();
  vp.controller().resources().stop_sampling();
  if (!capture.ok()) return capture.error();

  if (options.mirroring) (void)api.device_mirroring(serial, false);
  (void)channel.stop_app(profile.package);

  BrowserRunResult result;
  result.browser = profile.name;
  result.capture = std::move(capture).take();
  result.discharge_mah = result.capture.charge_mah();
  result.mean_current_ma = result.capture.mean_current_ma();
  result.device_cpu = sample_timeline_cdf(dev->cpu().utilization_timeline(),
                                          t0, t1, options.cpu_sample_period);
  result.controller_cpu =
      sample_timeline_cdf(vp.controller().resources().cpu_timeline(), t0, t1,
                          options.cpu_sample_period);
  result.bytes_fetched = browser->bytes_fetched() - bytes_before;
  result.pages_loaded = browser->pages_loaded();
  result.elapsed = t1 - t0;
  return result;
}

}  // namespace blab::automation
