// Test-automation channels (§3.3).
//
// BatteryLab automates devices three ways, each with its own trade-offs:
//   - ADB (Android): full control; transport USB/WiFi/Bluetooth. USB is cut
//     during measurements, so measurement-time automation rides WiFi.
//   - UI testing (Android/iOS): an instrumented build drives itself — no
//     channel to the Pi at all, but requires app source access.
//   - Bluetooth keyboard (Android/iOS): the controller emulates an HID
//     keyboard; works on cellular and unrooted devices, but cannot manage
//     app state (pm clear et al. stay on ADB outside the measurement).
#pragma once

#include <string>

#include "api/batterylab_api.hpp"
#include "device/browser.hpp"
#include "net/bluetooth.hpp"
#include "util/result.hpp"

namespace blab::automation {

class AutomationChannel {
 public:
  virtual ~AutomationChannel() = default;

  virtual const char* name() const = 0;

  virtual util::Status text(const std::string& s) = 0;
  virtual util::Status key(int keycode) = 0;
  /// Vertical swipe by dy pixels (negative = scroll content down).
  virtual util::Status swipe(int dy) = 0;
  virtual util::Status tap(int x, int y) = 0;

  virtual util::Status launch_app(const std::string& package) = 0;
  virtual util::Status stop_app(const std::string& package) = 0;
  virtual util::Status clear_app(const std::string& package) = 0;
  /// BT keyboard cannot manage app state (§3.3).
  virtual bool supports_app_management() const { return true; }
};

/// ADB-backed channel; transport selection (USB vs WiFi) is the API's.
class AdbChannel : public AutomationChannel {
 public:
  AdbChannel(api::BatteryLabApi& api, std::string device_serial);

  const char* name() const override { return "adb"; }
  util::Status text(const std::string& s) override;
  util::Status key(int keycode) override;
  util::Status swipe(int dy) override;
  util::Status tap(int x, int y) override;
  util::Status launch_app(const std::string& package) override;
  util::Status stop_app(const std::string& package) override;
  util::Status clear_app(const std::string& package) override;

 private:
  util::Status run(const std::string& command);
  api::BatteryLabApi& api_;
  std::string serial_;
};

/// Instrumented-build channel: calls the app surface directly on-device.
class UiTestChannel : public AutomationChannel {
 public:
  explicit UiTestChannel(device::AndroidDevice& device);

  const char* name() const override { return "ui-test"; }
  util::Status text(const std::string& s) override;
  util::Status key(int keycode) override;
  util::Status swipe(int dy) override;
  util::Status tap(int x, int y) override;
  util::Status launch_app(const std::string& package) override;
  util::Status stop_app(const std::string& package) override;
  util::Status clear_app(const std::string& package) override;

 private:
  device::AndroidDevice& device_;
};

}  // namespace blab::automation
