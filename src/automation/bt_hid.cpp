#include "automation/bt_hid.hpp"

#include "device/android.hpp"

namespace blab::automation {

BtKeyboardChannel::BtKeyboardChannel(net::Network& net,
                                     net::BluetoothAdapter& controller_bt,
                                     device::AndroidDevice& device)
    : net_{net}, controller_bt_{controller_bt}, device_{device} {}

util::Status BtKeyboardChannel::ready() const {
  const auto* pairing = controller_bt_.pairing(device_.host());
  if (pairing == nullptr || pairing->profile != net::BtProfile::kHid) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no HID pairing with " + device_.host());
  }
  if (!device_.bluetooth().enabled()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "device Bluetooth is off");
  }
  return util::Status::ok_status();
}

util::Status BtKeyboardChannel::send_event(const std::string& event) {
  if (auto st = ready(); !st.ok()) return st;
  net::Message msg;
  msg.src = net::Address{controller_bt_.host(), kBtHidPort};
  msg.dst = net::Address{device_.host(), kBtHidPort};
  msg.tag = "hid.event";
  msg.payload = event;
  msg.wire_bytes = 48;
  return net_.send(std::move(msg));
}

util::Status BtKeyboardChannel::text(const std::string& s) {
  return send_event("text " + s);
}

util::Status BtKeyboardChannel::key(int keycode) {
  return send_event("key " + std::to_string(keycode));
}

util::Status BtKeyboardChannel::swipe(int dy) {
  return send_event("swipe " + std::to_string(dy));
}

util::Status BtKeyboardChannel::tap(int x, int y) {
  return send_event("tap " + std::to_string(x) + " " + std::to_string(y));
}

util::Status BtKeyboardChannel::launch_app(const std::string& package) {
  return send_event("launch " + package);
}

util::Status BtKeyboardChannel::stop_app(const std::string&) {
  return util::make_error(util::ErrorCode::kUnsupported,
                          "bt-keyboard cannot manage app state (use ADB "
                          "outside the measurement, §3.3)");
}

util::Status BtKeyboardChannel::clear_app(const std::string&) {
  return util::make_error(util::ErrorCode::kUnsupported,
                          "bt-keyboard cannot manage app state (use ADB "
                          "outside the measurement, §3.3)");
}

}  // namespace blab::automation
