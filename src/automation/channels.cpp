#include "automation/channels.hpp"

#include "device/android.hpp"

namespace blab::automation {

AdbChannel::AdbChannel(api::BatteryLabApi& api, std::string device_serial)
    : api_{api}, serial_{std::move(device_serial)} {}

util::Status AdbChannel::run(const std::string& command) {
  auto r = api_.execute_adb(serial_, command);
  return r.ok() ? util::Status::ok_status() : util::Status{r.error()};
}

util::Status AdbChannel::text(const std::string& s) {
  return run("input text " + s);
}

util::Status AdbChannel::key(int keycode) {
  return run("input keyevent " + std::to_string(keycode));
}

util::Status AdbChannel::swipe(int dy) {
  // Swipe through the middle of the screen; end point encodes direction.
  const int x = 540;
  const int y1 = 1200;
  const int y2 = y1 + dy;
  return run("input swipe " + std::to_string(x) + " " + std::to_string(y1) +
             " " + std::to_string(x) + " " + std::to_string(y2));
}

util::Status AdbChannel::tap(int x, int y) {
  return run("input tap " + std::to_string(x) + " " + std::to_string(y));
}

util::Status AdbChannel::launch_app(const std::string& package) {
  return run("am start " + package);
}

util::Status AdbChannel::stop_app(const std::string& package) {
  return run("am force-stop " + package);
}

util::Status AdbChannel::clear_app(const std::string& package) {
  return run("pm clear " + package);
}

UiTestChannel::UiTestChannel(device::AndroidDevice& device)
    : device_{device} {}

util::Status UiTestChannel::text(const std::string& s) {
  return device_.os().input_text(s);
}

util::Status UiTestChannel::key(int keycode) {
  return device_.os().input_keyevent(keycode);
}

util::Status UiTestChannel::swipe(int dy) {
  return device_.os().input_swipe(540, 1200, 540, 1200 + dy);
}

util::Status UiTestChannel::tap(int x, int y) {
  return device_.os().input_tap(x, y);
}

util::Status UiTestChannel::launch_app(const std::string& package) {
  return device_.os().start_activity(package);
}

util::Status UiTestChannel::stop_app(const std::string& package) {
  return device_.os().force_stop(package);
}

util::Status UiTestChannel::clear_app(const std::string& package) {
  return device_.os().clear_data(package);
}

}  // namespace blab::automation
