// Mirroring session: the full remote-access pipeline (§3.2, §4.2).
//
//   browser viewer  ⇄  noVNC (6081)  ⇄  VNC  ⇄  scrcpy receive  ⇄  WiFi  ⇄
//   scrcpy server on the device
//
// Starting a session launches the device-side scrcpy server, registers the
// controller-side services (scrcpy receive, VNC, noVNC) whose CPU follows
// the mirrored content (Fig. 5), and wires the input path used both by
// humans in the browser and by the latency probe.
//
// Latency methodology (§4.2): the paper measures click→first-visual-change
// at 1.44 ± 0.12 s co-located. Here every network leg is carried by the
// simulated network, and each *processing* stage is an explicit, documented
// model constant in MirrorTimings.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "controller/controller.hpp"
#include "mirror/airplay.hpp"
#include "mirror/novnc.hpp"
#include "mirror/scrcpy.hpp"
#include "mirror/vnc.hpp"
#include "obs/span.hpp"
#include "util/result.hpp"

namespace blab::obs {
class Counter;
class Histogram;
}  // namespace blab::obs

namespace blab::mirror {

struct MirrorTimings {
  /// GUI backend: AJAX handling + event translation + control-socket queue.
  util::Duration input_processing = util::Duration::millis(180);
  /// App reacts to the tap and redraws (touch pipeline + render).
  util::Duration app_render = util::Duration::millis(380);
  /// Screen capture + H.264 encode of the changed frame.
  util::Duration capture_encode = util::Duration::millis(150);
  /// VNC framebuffer processing on the loaded Pi.
  util::Duration vnc_update = util::Duration::millis(290);
  /// Browser-side websocket decode + canvas render.
  util::Duration browser_render = util::Duration::millis(460);
  /// Relative sigma applied to each stage independently.
  double jitter_fraction = 0.15;
};

inline constexpr int kFrameSinkPort = 27200;

/// Sampling rate for per-frame spans: keep 1 in this many frame arrivals
/// per trace (weights keep the aggregates exact, see Tracer::set_sampling).
inline constexpr std::uint64_t kFrameSampling = 4;
/// Tail-sampling threshold for frame spans: a trace whose root runs at
/// least this long (sim time) keeps every frame span at full fidelity (see
/// Tracer::set_tail_sampling). Job roots in the DST corpus cluster at
/// 1-3 s; 5 s marks the slow tail (~p95).
inline constexpr std::int64_t kFrameTailThresholdUs = 5'000'000;

class MirroringSession {
 public:
  MirroringSession(controller::Controller& ctrl,
                   device::AndroidDevice& device, EncoderConfig encoder = {},
                   MirrorTimings timings = {});
  ~MirroringSession();
  MirroringSession(const MirroringSession&) = delete;
  MirroringSession& operator=(const MirroringSession&) = delete;

  util::Status start();
  void stop();
  bool active() const { return active_; }

  VncServer& vnc() { return vnc_; }
  NoVncGateway& novnc() { return *novnc_; }
  /// Android sessions stream via scrcpy; iOS sessions via AirPlay (§3.2).
  /// The accessor for the inactive platform returns nullptr.
  ScrcpyServer* scrcpy() { return scrcpy_.get(); }
  AirPlaySender* airplay() { return airplay_.get(); }
  bool is_ios() const;

  /// Viewer management (the experimenter's or tester's browser).
  util::Status attach_viewer(const net::Address& viewer);
  util::Status detach_viewer();

  /// Fire a remote tap from `viewer` and report the end-to-end latency from
  /// click to the frame showing the response being rendered in the browser.
  using LatencyCallback = std::function<void(util::Duration)>;
  void remote_tap(const net::Address& viewer, int x, int y,
                  LatencyCallback on_displayed);
  /// Synchronous helper: pumps the simulator until the probe completes.
  util::Result<util::Duration> measure_latency_sync(
      const net::Address& viewer, int x, int y,
      util::Duration timeout = util::Duration::seconds(30));

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void on_frame(const net::Message& msg);
  /// Instant, sampled "mirror/frame" span under the session span; one per
  /// frame arrival, paired 1:1 with the blab_mirror_frames_total increment.
  void note_frame_span(std::size_t bytes);
  void on_input(const std::string& command);
  util::Duration jittered(util::Duration mean);
  obs::Tracer& tracer();
  /// Context of an in-flight latency probe's span ({0,0} when unknown), so
  /// per-stage spans parent under their probe.
  obs::TraceContext probe_ctx(std::uint64_t probe_id);
  void finish_probe_span(std::uint64_t probe_id);

  controller::Controller& ctrl_;
  device::AndroidDevice& device_;
  EncoderConfig encoder_config_;
  MirrorTimings timings_;
  util::Rng rng_;

  VncServer vnc_;
  std::unique_ptr<NoVncGateway> novnc_;
  std::unique_ptr<ScrcpyServer> scrcpy_;
  std::unique_ptr<AirPlaySender> airplay_;
  net::Address sink_addr_;
  net::Address hid_addr_;  ///< iOS input path: HID events + acks
  bool active_ = false;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  util::TimePoint started_at_;

  /// Registry instruments (ctrl_.simulator().metrics()), cached once.
  struct Metrics {
    obs::Counter* sessions_started = nullptr;
    obs::Counter* sessions_stopped = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* session_seconds = nullptr;
  };
  Metrics metrics_;

  std::uint64_t next_probe_id_ = 1;
  /// Detached mirror/session span covering start() -> stop().
  std::uint64_t session_span_ = 0;
  /// In-flight latency probes: probe id -> detached mirror/probe span. The
  /// probe path hops across sim events (input -> device -> vnc -> browser),
  /// so each stage parents under this span via probe_ctx().
  std::map<std::uint64_t, std::uint64_t> probe_spans_;
};

}  // namespace blab::mirror
