// H.264 encoder model for scrcpy mirroring.
//
// §4.2 sets scrcpy's encoding rate to 1 Mbps; output volume and encoder CPU
// both track how quickly the screen content changes (static home screen is
// nearly free, video playback saturates the rate cap).
#pragma once

namespace blab::mirror {

struct EncoderConfig {
  double bitrate_cap_mbps = 1.0;  ///< paper's setting
  double fps = 60.0;
  /// Bitrate produced per unit of content change before the cap.
  double mbps_per_change = 1.8;
  double keyframe_floor_mbps = 0.08;
};

class H264Encoder {
 public:
  /// Output bitrate (Mbps) at a given content change rate in [0,1].
  static double output_mbps(const EncoderConfig& cfg, double change_rate);

  /// CPU demand of the device-side scrcpy server process (fraction of SoC)
  /// at a given change rate. Calibrated to the paper's "+5% device CPU".
  static double device_cpu_demand(double change_rate);

  /// CPU demand of the controller-side receive/decode path per unit change.
  static double controller_cpu_demand(double change_rate);
};

}  // namespace blab::mirror
