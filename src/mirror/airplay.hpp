// AirPlay screen mirroring — the iOS path (§3.2).
//
// "No equivalent software [to scrcpy] exists for iOS, but a similar
// functionality can be achieved combining AirPlay Screen Mirroring with
// (virtual) keyboard keys." The sender streams H.264 frames from the device
// to an AirPlay receiver on the controller; unlike scrcpy there is NO input
// channel — remote control rides the Bluetooth HID keyboard instead.
#pragma once

#include <cstdint>
#include <string>

#include "device/device.hpp"
#include "device/process.hpp"
#include "mirror/encoder.hpp"
#include "sim/periodic.hpp"
#include "util/result.hpp"

namespace blab::mirror {

class AirPlaySender {
 public:
  AirPlaySender(device::AndroidDevice& device, std::string sink_host,
                int sink_port, EncoderConfig config = {});
  ~AirPlaySender();
  AirPlaySender(const AirPlaySender&) = delete;
  AirPlaySender& operator=(const AirPlaySender&) = delete;

  /// Fails on non-iOS devices (Android uses scrcpy) and powered-off devices.
  util::Status start();
  void stop();
  bool running() const { return running_; }

  const EncoderConfig& config() const { return config_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Emit a probe frame carrying `probe_id` (used by the latency pipeline:
  /// the visual response to an injected HID event rides the next frame).
  void emit_probe_frame(std::uint64_t probe_id);

  static constexpr auto kStreamTick = util::Duration::millis(100);

 private:
  void stream_tick();

  device::AndroidDevice& device_;
  std::string sink_host_;
  int sink_port_;
  EncoderConfig config_;
  device::Pid pid_;
  bool running_ = false;
  sim::PeriodicTask stream_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  double stream_mbps_ = 0.0;
};

}  // namespace blab::mirror
