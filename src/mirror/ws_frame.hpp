// Websocket framing for the noVNC gateway (§3.2).
//
// A real browser talks to noVNC over RFC 6455 websocket frames; this is the
// byte-accurate subset the gateway speaks: FIN/RSV/opcode octet, MASK bit +
// 7/16/64-bit payload length, 4-byte masking key on client frames, payload.
// It is the platform's only parser that consumes raw bytes straight from an
// untrusted viewer (a recruited tester's browser), so the decoder is strict:
// every malformed shape returns a typed error, never UB, and accepted frames
// re-encode byte-identically (the fuzz harness asserts both).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace blab::mirror {

enum class WsOpcode : std::uint8_t {
  kContinuation = 0x0,
  kText = 0x1,
  kBinary = 0x2,
  kClose = 0x8,
  kPing = 0x9,
  kPong = 0xA,
};

bool is_control_opcode(WsOpcode op);
const char* ws_opcode_name(WsOpcode op);

struct WsFrame {
  bool fin = true;
  WsOpcode opcode = WsOpcode::kText;
  bool masked = false;
  std::array<std::uint8_t, 4> mask_key{};  ///< meaningful iff masked
  std::string payload;                     ///< unmasked payload bytes
};

/// Largest payload the gateway accepts in one frame. Real noVNC input events
/// are tens of bytes; 1 MiB leaves room for clipboard pastes while keeping a
/// hostile 2^63-byte length field from ever reaching an allocator.
inline constexpr std::uint64_t kMaxWsPayload = 1 << 20;

/// Serialize a frame (payload is masked on the wire iff frame.masked).
/// Always emits the minimal length encoding, so decode(encode(f)) == f and
/// encode(decode(b)) == b for accepted b.
std::string encode_ws_frame(const WsFrame& frame);

/// Decode one frame from the front of `bytes`; `consumed` (optional)
/// receives how many bytes the frame occupied. Typed kInvalidArgument
/// errors on: truncated input, RSV bits set, reserved opcodes, fragmented
/// or oversized (>125 byte) control frames, non-minimal 16/64-bit length
/// encodings, lengths above kMaxWsPayload or with the sign bit set, and
/// text frames whose unmasked payload is not valid UTF-8.
util::Result<WsFrame> decode_ws_frame(std::string_view bytes,
                                      std::size_t* consumed = nullptr);

/// Decode a whole client->server packet: one or more concatenated frames,
/// each of which MUST be masked (RFC 6455 §5.1 — an unmasked client frame
/// fails the connection). At most `max_frames` frames; trailing garbage
/// after the last frame is an error.
util::Result<std::vector<WsFrame>> decode_client_frames(
    std::string_view bytes, std::size_t max_frames = 16);

/// Convenience for the simulated browser side: one masked text frame
/// carrying `text`, with a mask key derived deterministically from `seed`
/// (the simulation must not burn RNG draws on masking).
std::string encode_client_text(std::string_view text, std::uint64_t seed);

/// Strict UTF-8 validation (rejects overlong encodings, surrogates and
/// code points above U+10FFFF) — RFC 6455 requires text payloads be UTF-8.
bool is_valid_utf8(std::string_view bytes);

}  // namespace blab::mirror
