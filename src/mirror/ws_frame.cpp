#include "mirror/ws_frame.hpp"

namespace blab::mirror {
namespace {

util::Error bad_frame(std::string what) {
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "ws frame: " + std::move(what));
}

void mask_in_place(std::string& payload,
                   const std::array<std::uint8_t, 4>& key) {
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(static_cast<std::uint8_t>(payload[i]) ^
                                   key[i % 4]);
  }
}

}  // namespace

bool is_control_opcode(WsOpcode op) {
  return static_cast<std::uint8_t>(op) >= 0x8;
}

const char* ws_opcode_name(WsOpcode op) {
  switch (op) {
    case WsOpcode::kContinuation: return "continuation";
    case WsOpcode::kText: return "text";
    case WsOpcode::kBinary: return "binary";
    case WsOpcode::kClose: return "close";
    case WsOpcode::kPing: return "ping";
    case WsOpcode::kPong: return "pong";
  }
  return "?";
}

std::string encode_ws_frame(const WsFrame& frame) {
  std::string out;
  out.reserve(frame.payload.size() + 14);
  out.push_back(static_cast<char>((frame.fin ? 0x80 : 0x00) |
                                  static_cast<std::uint8_t>(frame.opcode)));
  const std::uint64_t len = frame.payload.size();
  const std::uint8_t mask_bit = frame.masked ? 0x80 : 0x00;
  if (len <= 125) {
    out.push_back(static_cast<char>(mask_bit | static_cast<std::uint8_t>(len)));
  } else if (len <= 0xFFFF) {
    out.push_back(static_cast<char>(mask_bit | 126));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(len & 0xFF));
  } else {
    out.push_back(static_cast<char>(mask_bit | 127));
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    }
  }
  if (frame.masked) {
    for (const std::uint8_t b : frame.mask_key) {
      out.push_back(static_cast<char>(b));
    }
    std::string masked = frame.payload;
    mask_in_place(masked, frame.mask_key);
    out.append(masked);
  } else {
    out.append(frame.payload);
  }
  return out;
}

util::Result<WsFrame> decode_ws_frame(std::string_view bytes,
                                      std::size_t* consumed) {
  if (bytes.size() < 2) return bad_frame("truncated header");
  const auto b0 = static_cast<std::uint8_t>(bytes[0]);
  const auto b1 = static_cast<std::uint8_t>(bytes[1]);

  WsFrame frame;
  frame.fin = (b0 & 0x80) != 0;
  if ((b0 & 0x70) != 0) return bad_frame("RSV bits set");
  const std::uint8_t op = b0 & 0x0F;
  switch (op) {
    case 0x0: case 0x1: case 0x2: case 0x8: case 0x9: case 0xA:
      frame.opcode = static_cast<WsOpcode>(op);
      break;
    default:
      return bad_frame("reserved opcode");
  }
  frame.masked = (b1 & 0x80) != 0;

  std::uint64_t len = b1 & 0x7F;
  std::size_t pos = 2;
  if (len == 126) {
    if (bytes.size() < pos + 2) return bad_frame("truncated 16-bit length");
    len = (static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[2]))
           << 8) |
          static_cast<std::uint8_t>(bytes[3]);
    if (len <= 125) return bad_frame("non-minimal 16-bit length");
    pos += 2;
  } else if (len == 127) {
    if (bytes.size() < pos + 8) return bad_frame("truncated 64-bit length");
    len = 0;
    for (int i = 0; i < 8; ++i) {
      len = (len << 8) | static_cast<std::uint8_t>(bytes[pos + i]);
    }
    if (len <= 0xFFFF) return bad_frame("non-minimal 64-bit length");
    if ((len >> 63) != 0) return bad_frame("length sign bit set");
    pos += 8;
  }
  if (is_control_opcode(frame.opcode)) {
    if (!frame.fin) return bad_frame("fragmented control frame");
    if (len > 125) return bad_frame("oversized control frame");
  }
  if (len > kMaxWsPayload) return bad_frame("payload exceeds limit");

  if (frame.masked) {
    if (bytes.size() < pos + 4) return bad_frame("truncated mask key");
    for (int i = 0; i < 4; ++i) {
      frame.mask_key[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(i)]);
    }
    pos += 4;
  }
  if (bytes.size() - pos < len) return bad_frame("truncated payload");
  frame.payload.assign(bytes.substr(pos, static_cast<std::size_t>(len)));
  if (frame.masked) mask_in_place(frame.payload, frame.mask_key);
  pos += static_cast<std::size_t>(len);

  if (frame.opcode == WsOpcode::kText && !is_valid_utf8(frame.payload)) {
    return bad_frame("text payload is not valid UTF-8");
  }
  if (consumed != nullptr) *consumed = pos;
  return frame;
}

util::Result<std::vector<WsFrame>> decode_client_frames(
    std::string_view bytes, std::size_t max_frames) {
  std::vector<WsFrame> frames;
  while (!bytes.empty()) {
    if (frames.size() >= max_frames) {
      return bad_frame("too many frames in one packet");
    }
    std::size_t consumed = 0;
    auto frame = decode_ws_frame(bytes, &consumed);
    if (!frame.ok()) return frame.error();
    if (!frame.value().masked) return bad_frame("client frame not masked");
    frames.push_back(std::move(frame).take());
    bytes.remove_prefix(consumed);
  }
  if (frames.empty()) return bad_frame("empty packet");
  return frames;
}

std::string encode_client_text(std::string_view text, std::uint64_t seed) {
  // splitmix64 finalizer: cheap, deterministic, and independent of the
  // simulation RNG so framing never perturbs scenario draw order.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  WsFrame frame;
  frame.opcode = WsOpcode::kText;
  frame.masked = true;
  for (int i = 0; i < 4; ++i) {
    frame.mask_key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(z >> (8 * i));
  }
  frame.payload.assign(text);
  return encode_ws_frame(frame);
}

bool is_valid_utf8(std::string_view bytes) {
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto b0 = static_cast<std::uint8_t>(bytes[i]);
    if (b0 < 0x80) {
      ++i;
      continue;
    }
    int extra = 0;
    std::uint32_t cp = 0;
    if ((b0 & 0xE0) == 0xC0) {
      extra = 1;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      extra = 2;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      extra = 3;
      cp = b0 & 0x07;
    } else {
      return false;  // stray continuation byte or 0xF8..0xFF
    }
    if (bytes.size() - i < static_cast<std::size_t>(extra) + 1) return false;
    for (int k = 1; k <= extra; ++k) {
      const auto bk = static_cast<std::uint8_t>(bytes[i + static_cast<std::size_t>(k)]);
      if ((bk & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (bk & 0x3F);
    }
    // Overlong encodings, UTF-16 surrogates and post-Unicode code points
    // are how classic filter bypasses smuggle bytes past validators.
    if (extra == 1 && cp < 0x80) return false;
    if (extra == 2 && cp < 0x800) return false;
    if (extra == 3 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += static_cast<std::size_t>(extra) + 1;
  }
  return true;
}

}  // namespace blab::mirror
