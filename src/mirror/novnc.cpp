#include "mirror/novnc.hpp"

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace blab::mirror {

NoVncGateway::NoVncGateway(net::Network& net, VncServer& vnc, std::string host,
                           int port)
    : net_{net}, vnc_{vnc}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const net::Message& m) { on_message(m); });
  vnc_token_ = vnc_.subscribe(
      [this](const FramebufferUpdate& u) { on_update(u); });
  bad_frames_counter_ =
      &net_.simulator().metrics().counter("blab_novnc_bad_frames_total");
}

NoVncGateway::~NoVncGateway() {
  vnc_.unsubscribe(vnc_token_);
  net_.unlisten(addr_);
}

util::Status NoVncGateway::connect_viewer(const net::Address& viewer,
                                          const std::string& token) {
  if (token_required() && token != access_token_) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "invalid session token");
  }
  if (viewer_.has_value()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "a viewer is already connected");
  }
  viewer_ = viewer;
  return util::Status::ok_status();
}

util::Status NoVncGateway::disconnect_viewer() {
  if (!viewer_.has_value()) {
    return util::make_error(util::ErrorCode::kNotFound, "no viewer connected");
  }
  viewer_.reset();
  return util::Status::ok_status();
}

void NoVncGateway::set_input_injector(InputInjector injector) {
  injector_ = std::move(injector);
}

void NoVncGateway::on_update(const FramebufferUpdate& update) {
  if (!viewer_.has_value()) return;
  const auto bytes = static_cast<std::size_t>(
      static_cast<double>(update.encoded_bytes) * compression_);
  net::Message frame;
  frame.src = addr_;
  frame.dst = *viewer_;
  frame.tag = "novnc.frame";
  frame.payload = std::to_string(update.sequence);
  frame.wire_bytes = bytes + 16;
  if (net_.send(std::move(frame)).ok()) {
    ++frames_relayed_;
    bytes_to_viewer_ += bytes + 16;
  }
}

void NoVncGateway::on_message(const net::Message& msg) {
  // Browser-side events: "novnc.ws" carries websocket-framed bytes (the
  // real browser wire format); "novnc.input" is the legacy unframed command
  // used by in-process automation; "novnc.connect"/"novnc.disconnect"
  // manage the viewer.
  if (msg.tag == "novnc.connect") {
    // Payload carries the session token (empty for open sessions).
    (void)connect_viewer(msg.src, msg.payload);
    return;
  }
  if (msg.tag == "novnc.disconnect") {
    (void)disconnect_viewer();
    return;
  }
  if (msg.tag == "novnc.input") {
    if (viewer_.has_value() && msg.src == *viewer_ && injector_) {
      injector_(msg.payload);
    }
    return;
  }
  if (msg.tag == "novnc.ws") {
    on_ws_packet(msg);
    return;
  }
}

void NoVncGateway::on_ws_packet(const net::Message& msg) {
  if (!viewer_.has_value() || msg.src != *viewer_) return;
  auto frames = decode_client_frames(msg.payload);
  if (!frames.ok()) {
    // RFC 6455 §7.1.7: a malformed frame fails the websocket connection.
    // Dropping the viewer bounds what a byte-flipping client can probe.
    ++bad_frames_;
    bad_frames_counter_->inc();
    BLAB_WARN_KV("novnc", "dropping viewer on malformed ws packet",
                 {"error", frames.error().message});
    (void)disconnect_viewer();
    return;
  }
  for (const WsFrame& frame : frames.value()) {
    switch (frame.opcode) {
      case WsOpcode::kText:
        if (injector_) injector_(frame.payload);
        break;
      case WsOpcode::kPing: {
        WsFrame pong;
        pong.opcode = WsOpcode::kPong;
        pong.payload = frame.payload;
        net::Message reply;
        reply.src = addr_;
        reply.dst = msg.src;
        reply.tag = "novnc.ws";
        reply.payload = encode_ws_frame(pong);
        reply.wire_bytes = reply.payload.size() + 16;
        if (net_.send(std::move(reply)).ok()) ++pongs_sent_;
        break;
      }
      case WsOpcode::kClose:
        (void)disconnect_viewer();
        return;  // frames after close are ignored
      default:
        // Binary, continuation and pong frames are legal but carry nothing
        // the gateway consumes today.
        break;
    }
  }
}

}  // namespace blab::mirror
