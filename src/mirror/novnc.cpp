#include "mirror/novnc.hpp"

namespace blab::mirror {

NoVncGateway::NoVncGateway(net::Network& net, VncServer& vnc, std::string host,
                           int port)
    : net_{net}, vnc_{vnc}, addr_{std::move(host), port} {
  net_.add_host(addr_.host);
  net_.listen(addr_, [this](const net::Message& m) { on_message(m); });
  vnc_token_ = vnc_.subscribe(
      [this](const FramebufferUpdate& u) { on_update(u); });
}

NoVncGateway::~NoVncGateway() {
  vnc_.unsubscribe(vnc_token_);
  net_.unlisten(addr_);
}

util::Status NoVncGateway::connect_viewer(const net::Address& viewer,
                                          const std::string& token) {
  if (token_required() && token != access_token_) {
    return util::make_error(util::ErrorCode::kPermissionDenied,
                            "invalid session token");
  }
  if (viewer_.has_value()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "a viewer is already connected");
  }
  viewer_ = viewer;
  return util::Status::ok_status();
}

util::Status NoVncGateway::disconnect_viewer() {
  if (!viewer_.has_value()) {
    return util::make_error(util::ErrorCode::kNotFound, "no viewer connected");
  }
  viewer_.reset();
  return util::Status::ok_status();
}

void NoVncGateway::set_input_injector(InputInjector injector) {
  injector_ = std::move(injector);
}

void NoVncGateway::on_update(const FramebufferUpdate& update) {
  if (!viewer_.has_value()) return;
  const auto bytes = static_cast<std::size_t>(
      static_cast<double>(update.encoded_bytes) * compression_);
  net::Message frame;
  frame.src = addr_;
  frame.dst = *viewer_;
  frame.tag = "novnc.frame";
  frame.payload = std::to_string(update.sequence);
  frame.wire_bytes = bytes + 16;
  if (net_.send(std::move(frame)).ok()) {
    ++frames_relayed_;
    bytes_to_viewer_ += bytes + 16;
  }
}

void NoVncGateway::on_message(const net::Message& msg) {
  // Browser-side events: "novnc.input" carries an input command from the
  // interactive area; "novnc.connect"/"novnc.disconnect" manage the viewer.
  if (msg.tag == "novnc.connect") {
    // Payload carries the session token (empty for open sessions).
    (void)connect_viewer(msg.src, msg.payload);
    return;
  }
  if (msg.tag == "novnc.disconnect") {
    (void)disconnect_viewer();
    return;
  }
  if (msg.tag == "novnc.input") {
    if (viewer_.has_value() && msg.src == *viewer_ && injector_) {
      injector_(msg.payload);
    }
    return;
  }
}

}  // namespace blab::mirror
