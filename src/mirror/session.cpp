#include "mirror/session.hpp"

#include "device/hid_service.hpp"
#include "mirror/ws_frame.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace blab::mirror {
namespace {

constexpr char kProbeMarker[] = "#probe";

/// Extract a "#probe<id>" marker from an input command, if present. Input
/// commands reach this via the viewer-facing websocket, so a marker that is
/// not followed by a clean decimal id is simply "no probe" — never a throw.
std::uint64_t probe_id_of(const std::string& command) {
  const auto pos = command.rfind(kProbeMarker);
  if (pos == std::string::npos) return 0;
  return util::parse_u64(
             std::string_view{command}.substr(pos + sizeof(kProbeMarker) - 1))
      .value_or(0);
}

}  // namespace

MirroringSession::MirroringSession(controller::Controller& ctrl,
                                   device::AndroidDevice& device,
                                   EncoderConfig encoder,
                                   MirrorTimings timings)
    : ctrl_{ctrl},
      device_{device},
      encoder_config_{encoder},
      timings_{timings},
      rng_{util::fnv1a("mirror-session/" + device.serial())},
      sink_addr_{ctrl.host(), kFrameSinkPort},
      hid_addr_{ctrl.host(), kFrameSinkPort + 2} {
  obs::MetricsRegistry& m = ctrl_.simulator().metrics();
  metrics_.sessions_started = &m.counter("blab_mirror_sessions_started_total");
  metrics_.sessions_stopped = &m.counter("blab_mirror_sessions_stopped_total");
  metrics_.frames = &m.counter("blab_mirror_frames_total");
  metrics_.bytes = &m.counter("blab_mirror_bytes_total");
  metrics_.session_seconds = &m.histogram(
      "blab_mirror_session_seconds", {1.0, 10.0, 60.0, 300.0, 900.0, 3600.0});
  // Frame arrivals are the hottest span family in the tree (one per stream
  // tick); tail-sample them 1-in-kFrameSampling per trace, keeping slow
  // traces (root >= kFrameTailThresholdUs) at full fidelity. Kept spans
  // carry the dropped ones' weight, so weighted frame counts stay exact
  // against blab_mirror_frames_total modulo the undecided pending buffer
  // (the span-conservation DST oracle checks kept + pending == counter).
  tracer().set_tail_sampling("mirror", "frame", kFrameSampling,
                             kFrameTailThresholdUs);
}

bool MirroringSession::is_ios() const {
  return device_.spec().platform == device::Platform::kIos;
}

obs::Tracer& MirroringSession::tracer() { return ctrl_.simulator().tracer(); }

obs::TraceContext MirroringSession::probe_ctx(std::uint64_t probe_id) {
  const auto it = probe_spans_.find(probe_id);
  if (it == probe_spans_.end()) return {};
  return tracer().context_of(it->second);
}

void MirroringSession::finish_probe_span(std::uint64_t probe_id) {
  const auto it = probe_spans_.find(probe_id);
  if (it == probe_spans_.end()) return;
  tracer().end(it->second);
  probe_spans_.erase(it);
}

MirroringSession::~MirroringSession() { stop(); }

util::Duration MirroringSession::jittered(util::Duration mean) {
  const double k = rng_.normal(1.0, timings_.jitter_fraction);
  return mean * std::max(0.2, k);
}

util::Status MirroringSession::start() {
  if (active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "mirroring already active");
  }
  if (is_ios()) {
    // iOS: AirPlay carries frames; input rides the Bluetooth HID keyboard
    // (§3.2–3.3). Probe timing is anchored on the HID injection ack.
    airplay_ = std::make_unique<AirPlaySender>(device_, ctrl_.host(),
                                               kFrameSinkPort,
                                               encoder_config_);
    if (auto st = airplay_->start(); !st.ok()) {
      airplay_.reset();
      return st;
    }
    ctrl_.network().listen(hid_addr_, [this](const net::Message& m) {
      if (m.tag != "hid.ack") return;
      const std::uint64_t id = probe_id_of(m.payload);
      if (id == 0) return;
      const std::uint64_t frame_span =
          tracer().begin_detached("mirror", "probe_frame", probe_ctx(id));
      const auto delay =
          jittered(timings_.app_render) + jittered(timings_.capture_encode);
      device_.simulator().schedule_after(delay, [this, id, frame_span] {
        tracer().end(frame_span);
        if (airplay_) airplay_->emit_probe_frame(id);
      }, "mirror.probe-frame");
    });
  } else {
    scrcpy_ = std::make_unique<ScrcpyServer>(device_, ctrl_.host(),
                                             kFrameSinkPort, encoder_config_);
    if (auto st = scrcpy_->start(); !st.ok()) {
      scrcpy_.reset();
      return st;
    }
    scrcpy_->set_control_hook([this](const std::string& command) {
      const std::uint64_t id = probe_id_of(command);
      if (id == 0) return;
      const std::uint64_t frame_span =
          tracer().begin_detached("mirror", "probe_frame", probe_ctx(id));
      // The app reacts and redraws, then the changed frame is captured and
      // encoded; the probe frame then travels the real uplink.
      const auto delay =
          jittered(timings_.app_render) + jittered(timings_.capture_encode);
      device_.simulator().schedule_after(delay, [this, id, frame_span] {
        const double change = device_.screen().content_change_rate();
        const double mbps = H264Encoder::output_mbps(encoder_config_, change);
        net::Message frame;
        frame.src = net::Address{device_.host(), kScrcpyControlPort + 1};
        frame.dst = sink_addr_;
        frame.tag = "scrcpy.frame.probe";
        frame.payload = std::to_string(id);
        frame.wire_bytes = static_cast<std::size_t>(
            mbps * 1e6 / 8.0 * ScrcpyServer::kStreamTick.to_seconds()) + 32;
        tracer().set_attr(frame_span, "bytes",
                          static_cast<std::int64_t>(frame.wire_bytes));
        tracer().end(frame_span);
        (void)device_.network().send(std::move(frame));
      }, "mirror.probe-frame");
    });
  }

  ctrl_.network().listen(sink_addr_,
                         [this](const net::Message& m) { on_frame(m); });
  novnc_ = std::make_unique<NoVncGateway>(ctrl_.network(), vnc_, ctrl_.host());
  novnc_->set_input_injector(
      [this](const std::string& command) { on_input(command); });

  // Controller-side pipeline services; their CPU follows what the mirrored
  // screen is doing (Fig. 5's load shape).
  auto change_now = [this] { return device_.screen().content_change_rate(); };
  controller::ServiceDemand recv;
  recv.dynamic_cpu = [change_now] {
    return H264Encoder::controller_cpu_demand(change_now());
  };
  recv.cpu_jitter = 0.15;
  recv.ram_mb = 18.0;
  ctrl_.resources().register_service("scrcpy-recv", recv);

  controller::ServiceDemand vnc_svc;
  vnc_svc.dynamic_cpu = [change_now] { return 0.09 + 0.26 * change_now(); };
  vnc_svc.cpu_jitter = 0.18;
  vnc_svc.ram_mb = 32.0;
  // Framebuffer bursts (full-frame updates, keyframes) occasionally peg the
  // Pi — the paper sees ~10% of samples above 95% CPU.
  vnc_svc.spike_probability = 0.17;
  vnc_svc.spike_cpu = 0.38;
  ctrl_.resources().register_service("vnc", vnc_svc);

  controller::ServiceDemand novnc_svc;
  novnc_svc.dynamic_cpu = [change_now] { return 0.055 + 0.16 * change_now(); };
  novnc_svc.cpu_jitter = 0.15;
  novnc_svc.ram_mb = 24.0;
  ctrl_.resources().register_service("novnc", novnc_svc);

  active_ = true;
  started_at_ = ctrl_.simulator().now();
  // The session outlives this call by design, so its span is detached; when
  // started from inside a job it joins the job's trace via the open run_job
  // span's context.
  session_span_ = tracer().begin_detached("mirror", "session",
                                          tracer().current());
  tracer().set_attr(session_span_, "device", device_.serial());
  metrics_.sessions_started->inc();
  BLAB_INFO_KV("mirror", "session started", {"device", device_.serial()});
  return util::Status::ok_status();
}

void MirroringSession::stop() {
  if (!active_) return;
  active_ = false;
  metrics_.sessions_stopped->inc();
  metrics_.session_seconds->observe(
      (ctrl_.simulator().now() - started_at_).to_seconds(),
      obs::Exemplar{tracer().context_of(session_span_).trace,
                    ctrl_.simulator().now().us()});
  // Abandoned probes (viewer gone, timeout) must not leave spans open.
  for (const auto& [id, span] : probe_spans_) tracer().end(span);
  probe_spans_.clear();
  tracer().set_attr(session_span_, "frames",
                    static_cast<std::int64_t>(frames_received_));
  tracer().set_attr(session_span_, "bytes",
                    static_cast<std::int64_t>(bytes_received_));
  tracer().end(session_span_);
  session_span_ = 0;
  ctrl_.resources().unregister_service("scrcpy-recv");
  ctrl_.resources().unregister_service("vnc");
  ctrl_.resources().unregister_service("novnc");
  ctrl_.network().unlisten(sink_addr_);
  ctrl_.network().unlisten(hid_addr_);
  novnc_.reset();
  if (scrcpy_) scrcpy_->stop();
  scrcpy_.reset();
  if (airplay_) airplay_->stop();
  airplay_.reset();
}

util::Status MirroringSession::attach_viewer(const net::Address& viewer) {
  if (!active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "session not active");
  }
  return novnc_->connect_viewer(viewer);
}

util::Status MirroringSession::detach_viewer() {
  if (!active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "session not active");
  }
  return novnc_->disconnect_viewer();
}

void MirroringSession::note_frame_span(std::size_t bytes) {
  // Frames only flow while the session listens, so the session span is open
  // and the frame span lands inside its interval (and its trace). Sampling
  // may discard the record at end(); the attr write is wasted then, which
  // is cheaper than special-casing the dropped path here.
  obs::ScopedSpan span{&tracer(), "mirror", "frame",
                       tracer().context_of(session_span_)};
  span.attr("bytes", static_cast<std::int64_t>(bytes));
}

void MirroringSession::on_frame(const net::Message& msg) {
  if (msg.tag == "scrcpy.frame" || msg.tag == "airplay.frame") {
    ++frames_received_;
    bytes_received_ += msg.size();
    metrics_.frames->inc();
    metrics_.bytes->inc(msg.size());
    note_frame_span(msg.size());
    FramebufferUpdate update;
    update.sequence = vnc_.version() + 1;
    update.encoded_bytes = msg.size();
    update.at = ctrl_.simulator().now();
    vnc_.update(update);
    return;
  }
  if (msg.tag == "scrcpy.frame.probe") {
    ++frames_received_;
    bytes_received_ += msg.size();
    metrics_.frames->inc();
    metrics_.bytes->inc(msg.size());
    note_frame_span(msg.size());
    const std::uint64_t id = util::parse_u64(msg.payload).value_or(0);
    if (id == 0) return;  // malformed probe id: drop, never throw
    const std::uint64_t update_span =
        tracer().begin_detached("mirror", "vnc_update", probe_ctx(id));
    tracer().set_attr(update_span, "bytes",
                      static_cast<std::int64_t>(msg.size()));
    // VNC processes the update, then the gateway relays it to the viewer.
    ctrl_.simulator().schedule_after(
        jittered(timings_.vnc_update),
        [this, id, update_span, bytes = msg.size()] {
          tracer().end(update_span);
          if (!active_ || !novnc_ || !novnc_->has_viewer()) return;
          net::Message frame;
          frame.src = novnc_->address();
          frame.dst = *novnc_->viewer();
          frame.tag = "novnc.frame.probe";
          frame.payload = std::to_string(id);
          frame.wire_bytes = static_cast<std::size_t>(
              static_cast<double>(bytes) * NoVncGateway::kCompressionRatio);
          (void)ctrl_.network().send(std::move(frame));
        },
        "mirror.vnc-update");
    return;
  }
}

void MirroringSession::on_input(const std::string& command) {
  // GUI backend translates the browser event, then the command travels the
  // real controller→device leg: scrcpy's control socket on Android, the
  // Bluetooth HID keyboard on iOS ("input tap X Y" → HID "tap X Y").
  const std::uint64_t input_span = tracer().begin_detached(
      "mirror", "input_processing", probe_ctx(probe_id_of(command)));
  tracer().set_attr(input_span, "bytes",
                    static_cast<std::int64_t>(command.size()));
  ctrl_.simulator().schedule_after(
      jittered(timings_.input_processing),
      [this, command, input_span] {
        tracer().end(input_span);
        if (!active_) return;
        net::Message control;
        if (is_ios()) {
          std::string event = command;
          if (util::starts_with(event, "input ")) event = event.substr(6);
          control.src = hid_addr_;
          control.dst = net::Address{device_.host(), device::kBtHidPort};
          control.tag = "hid.event";
          control.payload = event;
          control.wire_bytes = 48 + event.size();
        } else {
          control.src = net::Address{ctrl_.host(), kFrameSinkPort + 1};
          control.dst = net::Address{device_.host(), kScrcpyControlPort};
          control.tag = "scrcpy.control";
          control.payload = command;
          control.wire_bytes = 96 + command.size();
        }
        (void)ctrl_.network().send(std::move(control));
      },
      "mirror.input-processing");
}

void MirroringSession::remote_tap(const net::Address& viewer, int x, int y,
                                  LatencyCallback on_displayed) {
  const std::uint64_t id = next_probe_id_++;
  const util::TimePoint started = ctrl_.simulator().now();
  auto& net = ctrl_.network();

  // One detached span per probe, covering click injection through browser
  // paint; each pipeline stage parents under it. Inside a job the probe
  // joins the job's trace, otherwise it hangs off the session span.
  obs::TraceContext parent = tracer().current();
  if (!parent.valid()) parent = tracer().context_of(session_span_);
  const std::uint64_t probe_span =
      tracer().begin_detached("mirror", "probe", parent);
  tracer().set_attr(probe_span, "probe", static_cast<std::int64_t>(id));
  tracer().set_attr(probe_span, "x", static_cast<std::int64_t>(x));
  tracer().set_attr(probe_span, "y", static_cast<std::int64_t>(y));
  probe_spans_.emplace(id, probe_span);

  if (novnc_ && !novnc_->has_viewer()) (void)novnc_->connect_viewer(viewer);

  // The probe result returns to the viewer's own address.
  net.listen(viewer, [this, viewer, id, started,
                      cb = std::move(on_displayed)](const net::Message& m) {
    if (m.tag != "novnc.frame.probe" ||
        util::parse_u64(m.payload).value_or(0) != id) {
      return;  // regular frames keep flowing to the same viewer
    }
    ctrl_.network().unlisten(viewer);
    // Browser still has to decode and paint the frame.
    const std::uint64_t render_span = tracer().begin_detached(
        "mirror", "browser_render", probe_ctx(id));
    tracer().set_attr(render_span, "bytes",
                      static_cast<std::int64_t>(m.size()));
    const auto render = jittered(timings_.browser_render);
    ctrl_.simulator().schedule_after(render, [this, id, render_span, started,
                                              cb] {
      tracer().end(render_span);
      finish_probe_span(id);
      cb(ctrl_.simulator().now() - started);
    }, "mirror.browser-render");
  });

  // The click travels exactly as a browser would send it: one masked
  // websocket text frame. The mask key is derived from the probe id, not
  // the session RNG, so framing does not perturb scenario draw order.
  net::Message click;
  click.src = viewer;
  click.dst = novnc_ ? novnc_->address()
                     : net::Address{ctrl_.host(), net::kNoVncPort};
  click.tag = "novnc.ws";
  click.payload = encode_client_text(
      "input tap " + std::to_string(x) + " " + std::to_string(y) + " " +
          kProbeMarker + std::to_string(id),
      id);
  click.wire_bytes = 96;
  (void)net.send(std::move(click));
}

util::Result<util::Duration> MirroringSession::measure_latency_sync(
    const net::Address& viewer, int x, int y, util::Duration timeout) {
  if (!active_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "session not active");
  }
  auto& sim = ctrl_.simulator();
  bool finished = false;
  util::Duration latency = util::Duration::zero();
  remote_tap(viewer, x, y, [&](util::Duration d) {
    finished = true;
    latency = d;
  });
  const util::TimePoint deadline = sim.now() + timeout;
  while (!finished && sim.now() < deadline) {
    if (!sim.step()) break;
  }
  if (!finished) {
    return util::make_error(util::ErrorCode::kTimeout,
                            "latency probe did not complete");
  }
  return latency;
}

}  // namespace blab::mirror
