#include "mirror/encoder.hpp"

#include <algorithm>

namespace blab::mirror {

double H264Encoder::output_mbps(const EncoderConfig& cfg, double change_rate) {
  change_rate = std::clamp(change_rate, 0.0, 1.0);
  const double raw =
      cfg.keyframe_floor_mbps + cfg.mbps_per_change * change_rate;
  return std::min(cfg.bitrate_cap_mbps, raw);
}

double H264Encoder::device_cpu_demand(double change_rate) {
  change_rate = std::clamp(change_rate, 0.0, 1.0);
  // ~2.5% on a static screen, ~8.5% while the frame churns; the average over
  // a browsing session lands at the paper's "+5% CPU".
  return 0.025 + 0.060 * change_rate;
}

double H264Encoder::controller_cpu_demand(double change_rate) {
  change_rate = std::clamp(change_rate, 0.0, 1.0);
  return 0.055 + 0.20 * change_rate;
}

}  // namespace blab::mirror
