#include "mirror/airplay.hpp"

#include "device/android.hpp"
#include "util/strings.hpp"

namespace blab::mirror {
namespace {
constexpr double kInitialStreamMbps = 0.2;
}  // namespace

AirPlaySender::AirPlaySender(device::AndroidDevice& device,
                             std::string sink_host, int sink_port,
                             EncoderConfig config)
    : device_{device},
      sink_host_{std::move(sink_host)},
      sink_port_{sink_port},
      config_{config},
      stream_{device.simulator(), kStreamTick, [this] { stream_tick(); }} {}

AirPlaySender::~AirPlaySender() { stop(); }

util::Status AirPlaySender::start() {
  if (running_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "AirPlay already streaming");
  }
  if (device_.spec().platform != device::Platform::kIos) {
    return util::make_error(util::ErrorCode::kUnsupported,
                            "AirPlay mirroring is the iOS path; Android "
                            "devices mirror via scrcpy");
  }
  if (!device_.powered_on()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "device is off");
  }
  running_ = true;
  // mediaserverd does the capture + encode work on iOS.
  pid_ = device_.processes().spawn(
      "mediaserverd",
      H264Encoder::device_cpu_demand(device_.screen().content_change_rate()),
      0.20);
  device_.set_encoder_active(true);
  stream_mbps_ = kInitialStreamMbps;
  device_.wifi().begin_activity(stream_mbps_);
  device_.recompute_power();
  stream_.start_after(kStreamTick);
  device_.os().log("AirPlay", "screen mirroring started");
  return util::Status::ok_status();
}

void AirPlaySender::stop() {
  if (!running_) return;
  running_ = false;
  stream_.stop();
  device_.processes().kill(pid_);
  pid_ = device::Pid{};
  device_.set_encoder_active(false);
  device_.wifi().end_activity(stream_mbps_);
  device_.recompute_power();
}

void AirPlaySender::stream_tick() {
  if (!device_.powered_on()) return;
  const double change = device_.screen().content_change_rate();
  if (auto* p = device_.processes().find(pid_)) {
    p->base_demand = H264Encoder::device_cpu_demand(change);
  }
  const double mbps = H264Encoder::output_mbps(config_, change);
  // The uplink's duty cycle follows the actual stream rate.
  device_.wifi().end_activity(stream_mbps_);
  stream_mbps_ = mbps;
  device_.wifi().begin_activity(stream_mbps_);
  const auto bytes = static_cast<std::size_t>(
      mbps * 1e6 / 8.0 * kStreamTick.to_seconds());
  net::Message frame;
  frame.src = net::Address{device_.host(), sink_port_};
  frame.dst = net::Address{sink_host_, sink_port_};
  frame.tag = "airplay.frame";
  frame.payload = std::to_string(frames_sent_) + ":" +
                  util::format_double(change, 3);
  frame.wire_bytes = bytes + 32;
  if (device_.network().send(std::move(frame)).ok()) {
    ++frames_sent_;
    bytes_sent_ += bytes + 32;
  }
  device_.recompute_power();
}

void AirPlaySender::emit_probe_frame(std::uint64_t probe_id) {
  if (!running_) return;
  const double change = device_.screen().content_change_rate();
  const double mbps = H264Encoder::output_mbps(config_, change);
  net::Message frame;
  frame.src = net::Address{device_.host(), sink_port_};
  frame.dst = net::Address{sink_host_, sink_port_};
  frame.tag = "scrcpy.frame.probe";  // the session's sink speaks one dialect
  frame.payload = std::to_string(probe_id);
  frame.wire_bytes = static_cast<std::size_t>(
      mbps * 1e6 / 8.0 * kStreamTick.to_seconds()) + 32;
  (void)device_.network().send(std::move(frame));
}

}  // namespace blab::mirror
