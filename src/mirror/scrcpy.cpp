#include "mirror/scrcpy.hpp"

#include "device/android.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace blab::mirror {
namespace {
/// Initial radio activity registered for the uplink; each stream tick
/// re-registers the encoder's actual output rate.
constexpr double kInitialStreamMbps = 0.2;
}  // namespace

ScrcpyServer::ScrcpyServer(device::AndroidDevice& device, std::string sink_host,
                           int sink_port, EncoderConfig config)
    : device_{device},
      sink_host_{std::move(sink_host)},
      sink_port_{sink_port},
      config_{config},
      stream_{device.simulator(), kStreamTick, [this] { stream_tick(); }},
      control_addr_{device.host(), kScrcpyControlPort} {}

ScrcpyServer::~ScrcpyServer() { stop(); }

util::Status ScrcpyServer::start() {
  if (running_) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "scrcpy already running");
  }
  if (device_.spec().platform != device::Platform::kAndroid) {
    return util::make_error(util::ErrorCode::kUnsupported,
                            "scrcpy runs atop ADB and is Android-only; iOS "
                            "devices mirror via AirPlay (§3.2)");
  }
  if (device_.spec().api_level < 21) {
    return util::make_error(
        util::ErrorCode::kUnsupported,
        "device mirroring requires API >= 21 (Android 5.0); device has API " +
            std::to_string(device_.spec().api_level));
  }
  if (!device_.powered_on()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "device is off");
  }
  running_ = true;
  pid_ = device_.processes().spawn(
      "scrcpy-server",
      H264Encoder::device_cpu_demand(device_.screen().content_change_rate()),
      0.20);
  device_.set_encoder_active(true);
  stream_mbps_ = kInitialStreamMbps;
  device_.wifi().begin_activity(stream_mbps_);
  device_.network().listen(control_addr_,
                           [this](const net::Message& m) { on_control(m); });
  device_.recompute_power();
  stream_.start_after(kStreamTick);
  device_.os().log("scrcpy", "server started (bitrate cap " +
                                 util::format_double(config_.bitrate_cap_mbps,
                                                     1) +
                                 " Mbps)");
  return util::Status::ok_status();
}

void ScrcpyServer::stop() {
  if (!running_) return;
  running_ = false;
  stream_.stop();
  device_.network().unlisten(control_addr_);
  device_.processes().kill(pid_);
  pid_ = device::Pid{};
  device_.set_encoder_active(false);
  device_.wifi().end_activity(stream_mbps_);
  device_.recompute_power();
}

void ScrcpyServer::stream_tick() {
  if (!device_.powered_on()) return;
  const double change = device_.screen().content_change_rate();
  // The encoder's CPU share follows what the frame is doing right now.
  if (auto* p = device_.processes().find(pid_)) {
    p->base_demand = H264Encoder::device_cpu_demand(change);
  }
  const double mbps = H264Encoder::output_mbps(config_, change);
  // The uplink's duty cycle follows the actual stream rate.
  device_.wifi().end_activity(stream_mbps_);
  stream_mbps_ = mbps;
  device_.wifi().begin_activity(stream_mbps_);
  const auto bytes = static_cast<std::size_t>(
      mbps * 1e6 / 8.0 * kStreamTick.to_seconds());
  net::Message frame;
  frame.src = net::Address{device_.host(), kScrcpyControlPort + 1};
  frame.dst = net::Address{sink_host_, sink_port_};
  frame.tag = "scrcpy.frame";
  frame.payload = std::to_string(frames_sent_) + ":" +
                  util::format_double(change, 3);
  frame.wire_bytes = bytes + 32;
  if (device_.network().send(std::move(frame)).ok()) {
    ++frames_sent_;
    bytes_sent_ += bytes + 32;
  }
  device_.recompute_power();
}

void ScrcpyServer::on_control(const net::Message& msg) {
  if (msg.tag != "scrcpy.control" || !running_) return;
  // Payload is an input command in `adb shell input` syntax.
  auto result = device_.os().execute_shell(msg.payload);
  if (!result.ok()) {
    BLAB_WARN("scrcpy", "control injection failed: " << result.error().str());
  }
  if (control_hook_) control_hook_(msg.payload);
}

}  // namespace blab::mirror
