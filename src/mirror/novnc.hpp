// noVNC gateway (§3.2): browser access to the VNC session on port 6081.
//
// Subscribes to the VNC server, compresses updates (the paper observed the
// 1 Mbps scrcpy stream shrinking from a 50 MB upper bound to ~32 MB on the
// wire — ratio ~0.61) and relays them to the connected browser client over a
// websocket. Also accepts input events from the client and forwards them to
// a registered injector (the mirroring session's control path).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "mirror/vnc.hpp"
#include "mirror/ws_frame.hpp"
#include "net/network.hpp"
#include "util/result.hpp"

namespace blab::obs {
class Counter;
}  // namespace blab::obs

namespace blab::mirror {

class NoVncGateway {
 public:
  NoVncGateway(net::Network& net, VncServer& vnc, std::string host,
               int port = net::kNoVncPort);
  ~NoVncGateway();
  NoVncGateway(const NoVncGateway&) = delete;
  NoVncGateway& operator=(const NoVncGateway&) = delete;

  const net::Address& address() const { return addr_; }

  /// Default compression the websocket layer applies on top of H.264
  /// payloads (the paper's 32 MB observed vs 50 MB upper bound).
  static constexpr double kCompressionRatio = 0.61;
  double compression_ratio() const { return compression_; }
  void set_compression_ratio(double ratio) { compression_ = ratio; }

  /// Optional session token: when set, viewers must present it to connect
  /// (the one-time invite link shared with recruited testers carries it).
  void set_access_token(std::string token) { access_token_ = std::move(token); }
  bool token_required() const { return !access_token_.empty(); }

  /// Only one viewer at a time (the experimenter, or a recruited tester the
  /// experimenter shared the session page with).
  util::Status connect_viewer(const net::Address& viewer,
                              const std::string& token = {});
  util::Status disconnect_viewer();
  bool has_viewer() const { return viewer_.has_value(); }
  const std::optional<net::Address>& viewer() const { return viewer_; }

  /// Whether the toolbar is rendered for the viewer (§3.2: the experimenter
  /// controls its presence when sharing with testers).
  void set_toolbar_visible(bool visible) { toolbar_visible_ = visible; }
  bool toolbar_visible() const { return toolbar_visible_; }

  /// Input events arriving from the viewer ("input tap 540 1200" etc.).
  using InputInjector = std::function<void(const std::string& command)>;
  void set_input_injector(InputInjector injector);

  std::uint64_t bytes_to_viewer() const { return bytes_to_viewer_; }
  std::uint64_t frames_relayed() const { return frames_relayed_; }
  /// Malformed websocket packets dropped (and, per RFC 6455, the number of
  /// times the offending viewer was disconnected).
  std::uint64_t bad_frames() const { return bad_frames_; }
  std::uint64_t pongs_sent() const { return pongs_sent_; }

 private:
  void on_update(const FramebufferUpdate& update);
  void on_message(const net::Message& msg);
  /// The browser side of the wire: a "novnc.ws" payload is one or more
  /// RFC 6455 client frames. Text frames feed the input injector, pings are
  /// answered, close disconnects; any malformed byte fails the connection.
  void on_ws_packet(const net::Message& msg);

  net::Network& net_;
  VncServer& vnc_;
  net::Address addr_;
  int vnc_token_ = 0;
  double compression_ = kCompressionRatio;
  std::string access_token_;
  std::optional<net::Address> viewer_;
  bool toolbar_visible_ = true;
  InputInjector injector_;
  std::uint64_t bytes_to_viewer_ = 0;
  std::uint64_t frames_relayed_ = 0;
  std::uint64_t bad_frames_ = 0;
  std::uint64_t pongs_sent_ = 0;
  obs::Counter* bad_frames_counter_ = nullptr;
};

}  // namespace blab::mirror
