// VNC server on the controller (tigervnc in the paper, §3.2).
//
// Holds the session framebuffer state fed by the scrcpy receive path and
// fans updates out to subscribers (the noVNC gateway). Update processing has
// a controller CPU cost registered by the mirroring session.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.hpp"

namespace blab::mirror {

struct FramebufferUpdate {
  std::uint64_t sequence = 0;
  std::size_t encoded_bytes = 0;
  double change_rate = 0.0;
  util::TimePoint at;
};

class VncServer {
 public:
  using Subscriber = std::function<void(const FramebufferUpdate&)>;

  /// Feed one decoded scrcpy frame into the session framebuffer.
  void update(const FramebufferUpdate& update);

  int subscribe(Subscriber fn);
  void unsubscribe(int token);
  std::size_t subscriber_count() const;

  std::uint64_t version() const { return version_; }
  std::uint64_t updates_processed() const { return updates_; }
  const FramebufferUpdate& latest() const { return latest_; }

 private:
  std::uint64_t version_ = 0;
  std::uint64_t updates_ = 0;
  FramebufferUpdate latest_;
  std::vector<std::pair<int, Subscriber>> subscribers_;
  int next_token_ = 1;
};

}  // namespace blab::mirror
