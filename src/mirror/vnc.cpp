#include "mirror/vnc.hpp"

#include <algorithm>

namespace blab::mirror {

void VncServer::update(const FramebufferUpdate& update) {
  ++version_;
  ++updates_;
  latest_ = update;
  for (const auto& [_, fn] : subscribers_) fn(update);
}

int VncServer::subscribe(Subscriber fn) {
  const int token = next_token_++;
  subscribers_.emplace_back(token, std::move(fn));
  return token;
}

void VncServer::unsubscribe(int token) {
  std::erase_if(subscribers_,
                [token](const auto& p) { return p.first == token; });
}

std::size_t VncServer::subscriber_count() const { return subscribers_.size(); }

}  // namespace blab::mirror
