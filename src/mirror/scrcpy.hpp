// scrcpy server model — the device-side half of mirroring (§3.2).
//
// Runs atop ADB (Android >= 5.0 / API 21), captures the screen, encodes
// H.264 at a capped bitrate and streams frames to the controller over the
// device's data radio. Also exposes scrcpy's control channel, through which
// the controller injects taps/swipes/keys during remote sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "device/device.hpp"
#include "device/process.hpp"
#include "mirror/encoder.hpp"
#include "sim/periodic.hpp"
#include "util/result.hpp"

namespace blab::mirror {

inline constexpr int kScrcpyControlPort = 27183;

class ScrcpyServer {
 public:
  /// Frames are streamed to {sink_host, sink_port} on the controller.
  ScrcpyServer(device::AndroidDevice& device, std::string sink_host,
               int sink_port, EncoderConfig config = {});
  ~ScrcpyServer();
  ScrcpyServer(const ScrcpyServer&) = delete;
  ScrcpyServer& operator=(const ScrcpyServer&) = delete;

  /// Fails on devices below API 21 (§3.2) or when the device is off.
  util::Status start();
  void stop();
  bool running() const { return running_; }

  const EncoderConfig& config() const { return config_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Invoked after a control command has been injected into the device;
  /// the mirroring session uses it to time the visual response pipeline.
  using ControlHook = std::function<void(const std::string& command)>;
  void set_control_hook(ControlHook hook) { control_hook_ = std::move(hook); }

  /// Stream tick period — scrcpy batches encoded output on this granularity.
  static constexpr auto kStreamTick = util::Duration::millis(100);

 private:
  void stream_tick();
  void on_control(const net::Message& msg);

  device::AndroidDevice& device_;
  std::string sink_host_;
  int sink_port_;
  EncoderConfig config_;
  device::Pid pid_;
  bool running_ = false;
  sim::PeriodicTask stream_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  double stream_mbps_ = 0.0;
  net::Address control_addr_;
  ControlHook control_hook_;
};

}  // namespace blab::mirror
