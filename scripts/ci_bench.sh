#!/usr/bin/env bash
# Bench-smoke lane: Release build of the core hot-path benches, JSON output,
# and the perf-regression gate against the pinned BENCH_core.json baseline.
# The merged artifact (pinned + current rates) lands in
# $BUILD_DIR/BENCH_core.json for CI to upload.
#
# Absolute rates vary across CI machines, so the gate floor is deliberately
# loose (>30% regression fails); the pinned baseline documents the reference
# machine alongside the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target micro_core scenario_e2e store_throughput store_persist \
           flame_aggregate health_rollup

"$BUILD_DIR"/bench/micro_core \
  --benchmark_format=json \
  --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  > "$BUILD_DIR/bench_micro.json"
"$BUILD_DIR"/bench/scenario_e2e --jobs=1 --seeds=24 --rounds=5 \
  --metrics-out="$BUILD_DIR/BENCH_metrics.prom" \
  --trace-out="$BUILD_DIR/BENCH_trace.json" \
  > "$BUILD_DIR/bench_e2e.json"
"$BUILD_DIR"/bench/store_throughput > "$BUILD_DIR/bench_store.json"
"$BUILD_DIR"/bench/store_persist > "$BUILD_DIR/bench_persist.json"
# Trace-analytics fold throughput; --out archives the BENCH_flame.json
# artifact next to BENCH_core.json for CI to upload.
"$BUILD_DIR"/bench/flame_aggregate \
  --out="$BUILD_DIR/BENCH_flame.json" > "$BUILD_DIR/bench_flame.json"
# Fleet-health rollup throughput (the GET /rollup read path); --out archives
# the BENCH_health.json artifact next to BENCH_core.json for CI to upload.
"$BUILD_DIR"/bench/health_rollup \
  --out="$BUILD_DIR/BENCH_health.json" > "$BUILD_DIR/bench_health.json"

# Determinism-window kernel sweep: the same scenario corpus at three sizes,
# serial and 4-way parallel. Parallel speedup here is only trustworthy
# because the DST oracle pins serial == --jobs=4 digests — the sweep is the
# perf face of that correctness invariant, archived as BENCH_sweep.json so a
# scaling regression (e.g. contention that only shows at 160 seeds) is
# visible in CI history even though it is not gated.
SWEEP_RUNS=()
for seeds in 10 40 160; do
  for jobs in 1 4; do
    out="$BUILD_DIR/bench_sweep_${seeds}x${jobs}.json"
    "$BUILD_DIR"/bench/scenario_e2e --jobs="$jobs" --seeds="$seeds" \
      --rounds=3 > "$out"
    SWEEP_RUNS+=("$seeds" "$jobs" "$out")
  done
done
python3 - "$BUILD_DIR/BENCH_sweep.json" "${SWEEP_RUNS[@]}" <<'PYEOF'
import json, sys
out, rest = sys.argv[1], sys.argv[2:]
runs = []
for seeds, jobs, path in zip(rest[0::3], rest[1::3], rest[2::3]):
    with open(path) as f:
        result = json.load(f)
    runs.append({"seeds": int(seeds), "jobs": int(jobs), "result": result})
with open(out, "w") as f:
    json.dump({"schema": "blab-bench-sweep-v1", "runs": runs}, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(runs)} sweep points)")
PYEOF

python3 scripts/bench_gate.py \
  --baseline BENCH_core.json \
  --micro "$BUILD_DIR/bench_micro.json" \
  --e2e "$BUILD_DIR/bench_e2e.json" \
  --store "$BUILD_DIR/bench_store.json" \
  --persist "$BUILD_DIR/bench_persist.json" \
  --flame "$BUILD_DIR/bench_flame.json" \
  --health "$BUILD_DIR/bench_health.json" \
  --out "$BUILD_DIR/BENCH_core.json"

# Telemetry drift gate: the bench corpus is deterministic, so its merged
# counter snapshot only moves when the workload itself changes — --strict
# fails the lane on any counter drifting past the threshold. Series with a
# legitimate reason to move get an --allow prefix (with a comment saying
# why) instead of loosening the gate. The artifacts
# ($BUILD_DIR/BENCH_metrics.prom, $BUILD_DIR/BENCH_trace.json) upload
# alongside BENCH_core.json either way.
#
# Allowlist:
#   blab_sim_lazy_cancel_skips_total — lazy-cancel skip counts depend on
#     heap interleaving, which is sensitive to event arena sizing tweaks
#     that do not change the workload itself.
python3 scripts/metrics_diff.py \
  --baseline BENCH_metrics.prom \
  --current "$BUILD_DIR/BENCH_metrics.prom" \
  --threshold 10 \
  --strict \
  --allow blab_sim_lazy_cancel_skips_total
