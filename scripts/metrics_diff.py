#!/usr/bin/env python3
"""Diff two Prometheus-text telemetry snapshots from scenario_e2e.

Compares the counter series of a bench run's metrics artifact against the
pinned baseline and flags any counter whose value moved by more than the
threshold (percent). The scenario corpus is deterministic, so counters are
expected to be *identical* run-to-run on the same source tree; a drift means
the workload itself changed (new events, different retries, altered job
mix) — exactly the kind of silent behavioural shift a wall-clock-only gate
misses.

Informational by default (exit 0, report on stdout); --strict exits 1 when
any counter exceeds the threshold. Gauges and histogram buckets are ignored:
gauges are point-in-time residue and bucket placement is a tuning choice,
while counters are the event ledger.

Usage:
  metrics_diff.py --baseline BENCH_metrics.prom --current out.prom \
      [--threshold 10] [--strict] [--allow PREFIX ...]

--allow demotes matching series (prefix match on the series key) from
flagged to informational — the escape hatch for counters that are known to
move when the workload legitimately changes under --strict.
"""

import argparse
import sys


def parse_counters(path):
    """Return {series_key: value} for counter-typed series in a prom file."""
    types = {}
    values = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) >= 4:
                    types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            # OpenMetrics exemplars trail the value as " # {...} v"; strip
            # the suffix so the value really is the last token.
            line = line.split(" # ", 1)[0].rstrip()
            # "name{labels} value" or "name value"; value is the last token.
            key, _, value = line.rpartition(" ")
            if not key:
                continue
            name = key.split("{", 1)[0]
            if types.get(name) != "counter":
                continue
            try:
                values[key] = float(value)
            except ValueError:
                continue
    return values


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag counters that moved more than this percent")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 if any counter exceeds the threshold")
    ap.add_argument("--allow", action="append", default=[],
                    metavar="PREFIX",
                    help="series-key prefix to demote from flagged to "
                         "informational (repeatable)")
    args = ap.parse_args()

    base = parse_counters(args.baseline)
    cur = parse_counters(args.current)

    flagged = []
    info = []

    def allowed(key):
        return any(key.startswith(prefix) for prefix in args.allow)

    for key in sorted(set(base) | set(cur)):
        b = base.get(key)
        c = cur.get(key)
        if b is None:
            info.append(f"  new counter: {key} = {c:g}")
            continue
        if c is None:
            line = f"  counter vanished: {key} (baseline {b:g})"
            (info if allowed(key) else flagged).append(line)
            continue
        if b == c:
            continue
        pct = abs(c - b) / b * 100.0 if b != 0 else float("inf")
        line = f"  {key}: {b:g} -> {c:g} ({pct:+.1f}%)"
        if pct > args.threshold and not allowed(key):
            flagged.append(line)
        else:
            info.append(line)

    print(f"metrics_diff: {len(base)} baseline / {len(cur)} current counter "
          f"series, threshold {args.threshold:g}%")
    if info:
        print(f"within threshold ({len(info)}):")
        for line in info:
            print(line)
    if flagged:
        print(f"FLAGGED — moved more than {args.threshold:g}% "
              f"({len(flagged)}):")
        for line in flagged:
            print(line)
        if args.strict:
            return 1
        print("(informational: pass --strict to fail the lane on this)")
    else:
        print("no counters above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
