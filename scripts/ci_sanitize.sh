#!/usr/bin/env bash
# Sanitizer lane: build with ASan+UBSan (BLAB_SANITIZE=ON) and run the DST,
# capture-store and telemetry suites, then the store throughput bench. DST
# digests must come out identical under sanitizers — instrumentation that
# changes behavior is itself a bug. The obs suite rides along because its
# concurrency smokes (pooled corpus, multi-thread logging/counters) are
# exactly what sanitizers are for.
#
# The lane ends with a fuzz smoke: every wire-surface harness (fuzz/) replays
# the checked-in corpus, then runs FUZZ_RUNS bounded mutation rounds, all
# under the same sanitizers. With a Clang toolchain the harnesses use real
# libFuzzer; under GCC the bundled driver accepts the same CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-asan}"
FUZZ_RUNS="${FUZZ_RUNS:-10000}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBLAB_SANITIZE=ON -DBLAB_FUZZ=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target blab_dst store_test persist_test failure_test obs_test \
           health_test store_throughput rest_backend_fuzz trace_io_fuzz \
           store_codec_fuzz novnc_fuzz persist_fuzz
ctest --test-dir "$BUILD_DIR" -L 'dst|store|obs|fuzz' --output-on-failure
"$BUILD_DIR"/bench/store_throughput

# Crash-recovery oracle, explicitly and at full width: kill-restart every
# corpus scenario under the sanitizers (the ctest lane above already runs it
# once through gtest discovery; this run pins the worker-pool width so ASan
# sees the concurrent recovery path).
"$BUILD_DIR"/tests/blab_dst --jobs=4 --gtest_filter='DstPersistence.*'

# Retry-chain + span-conservation oracles at full width: the retry corpus
# resubmits failed/aborted jobs (cross-trace links) while sampled span
# families keep weighted aggregates exact; pinning --jobs=4 makes ASan see
# the pooled path here too. (The new aggregation tests ride the obs label in
# the ctest lane above.)
"$BUILD_DIR"/tests/blab_dst --jobs=4 --gtest_filter='DstRetry*'

# Fleet-health oracle lane at full width: health-enabled corpus runs with the
# rollup-accuracy oracle live, GET /rollup and GET /health byte-compared
# serial vs pooled under the sanitizers. (health_test itself rides the obs
# label in the ctest lane above.)
"$BUILD_DIR"/tests/blab_dst --jobs=4 --gtest_filter='DstHealth.*'

# Fuzz smoke: corpus replay + bounded deterministic mutation per harness.
for target in rest_backend_fuzz trace_io_fuzz store_codec_fuzz novnc_fuzz \
              persist_fuzz; do
  "$BUILD_DIR"/fuzz/"$target" -runs="$FUZZ_RUNS" "tests/fuzz_corpus/$target"
done
