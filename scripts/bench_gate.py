#!/usr/bin/env python3
"""Perf-regression gate over the core hot-path benchmarks.

Reads the pinned baseline (BENCH_core.json at the repo root), the fresh
measurement JSONs produced by scripts/ci_bench.sh (google-benchmark output
from micro_core, plus the scenario_e2e, store_throughput, store_persist and
flame_aggregate emitters), writes
a merged BENCH_core.json artifact with the current rates next to the pinned
ones, and exits non-zero if any gated throughput falls below
floor_fraction * baseline (default 0.7, i.e. a >30% regression).

Rates are throughputs (items/s, events/s, samples/s): bigger is better, so
the gate is one-sided — a faster run never fails, it just shows up in the
artifact as an improvement to consider re-pinning.

Usage:
  bench_gate.py --baseline BENCH_core.json --micro micro.json \
      --e2e e2e.json --store store.json --persist persist.json \
      --flame flame.json --out artifact.json

Re-pin mode (deliberate baseline updates only):
  bench_gate.py ... --repin --repin-out BENCH_core.json \
      --require store_synth_samples_per_s=1.8 \
      --require 'BM_MonsoonCaptureSynthesis/10_items_per_s=1.8' \
      --note 'why the baseline moved'

--repin refuses to write a new baseline unless every --require metric
improved by at least its stated factor over the old pin. A re-pin that
cannot demonstrate its claimed win is a no-op with a non-zero exit: the
point of the pin is that it only ever moves on purpose, with the
justification recorded in the artifact's note.
"""

import argparse
import datetime
import json
import sys


def median_items_per_second(micro):
    """google-benchmark JSON -> {bench name: median items_per_second}."""
    out = {}
    for entry in micro.get("benchmarks", []):
        # Benches that never call SetItemsProcessed carry no items_per_second
        # and are not part of the gate.
        if "items_per_second" not in entry:
            continue
        # With --benchmark_report_aggregates_only the run_name field holds
        # the plain bench name and aggregate_name tags mean/median/stddev.
        if entry.get("aggregate_name") == "median":
            out[entry["run_name"]] = entry["items_per_second"]
        elif "aggregate_name" not in entry:
            # Repetition-less runs: single entry per bench, no aggregates.
            out[entry["name"]] = entry["items_per_second"]
    return out


def collect_current(micro, e2e, store, persist, flame, health):
    rates = {}
    for name, value in median_items_per_second(micro).items():
        rates[f"{name}_items_per_s"] = value
    rates["scenario_e2e_events_per_s"] = e2e["events_per_s"]
    rates["scenario_e2e_scenarios_per_s"] = e2e["scenarios_per_s"]
    rates["store_sim_events_per_s"] = store["sim_events_per_s"]
    rates["store_synth_samples_per_s"] = store["synth_samples_per_s"]
    rates["persist_append_samples_per_s"] = persist[
        "persist_append_samples_per_s"
    ]
    rates["persist_cold_query_samples_per_s"] = persist[
        "persist_cold_query_samples_per_s"
    ]
    rates["persist_recovery_records_per_s"] = persist[
        "persist_recovery_records_per_s"
    ]
    if flame is not None:
        rates["flame_spans_per_s"] = flame["flame_spans_per_s"]
    if health is not None:
        rates["rollup_captures_per_s"] = health["rollup_captures_per_s"]
    return rates


def parse_requirement(spec):
    """'metric_name=1.8' -> (metric_name, 1.8), with loud failures."""
    name, sep, factor = spec.rpartition("=")
    if not sep or not name:
        raise SystemExit(f"--require expects NAME=FACTOR, got {spec!r}")
    try:
        value = float(factor)
    except ValueError:
        raise SystemExit(f"--require factor must be numeric, got {spec!r}")
    if value <= 1.0:
        raise SystemExit(
            f"--require factor must exceed 1.0 (a re-pin must improve "
            f"something), got {spec!r}"
        )
    return name, value


def repin_baseline(baseline, current, requirements, note):
    """Build the replacement baseline, or return (None, failures)."""
    failures = []
    for name, factor in requirements:
        pinned = baseline["metrics"].get(name)
        if pinned is None:
            failures.append(f"{name}: not a pinned metric")
            continue
        got = current.get(name)
        if got is None:
            failures.append(f"{name}: no measurement produced")
            continue
        ratio = got / pinned["baseline"]
        if ratio < factor:
            failures.append(
                f"{name}: {got:.3e} is only {ratio:.2f}x of the pinned "
                f"{pinned['baseline']:.3e}; re-pin requires >= {factor:.2f}x"
            )
    if failures:
        return None, failures
    metrics = {}
    for name, pinned in baseline["metrics"].items():
        got = current.get(name)
        if got is None:
            failures.append(f"{name}: no measurement produced")
            continue
        # Keep three significant figures: the pin documents a magnitude on a
        # reference machine, not a nanosecond-exact number.
        metrics[name] = {
            "baseline": float(f"{got:.3g}"),
            "pre_pr": pinned["baseline"],
        }
    if failures:
        return None, failures
    new_baseline = dict(baseline)
    new_baseline["metrics"] = metrics
    new_baseline["pinned_date"] = datetime.date.today().isoformat()
    if note is not None:
        new_baseline["note"] = note
    return new_baseline, []


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--micro", required=True)
    parser.add_argument("--e2e", required=True)
    parser.add_argument("--store", required=True)
    parser.add_argument("--persist", required=True)
    parser.add_argument(
        "--flame",
        help="flame_aggregate emitter JSON (optional until the analytics "
        "bench exists in the build being gated)",
    )
    parser.add_argument(
        "--health",
        help="health_rollup emitter JSON (optional until the fleet-health "
        "bench exists in the build being gated)",
    )
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--repin",
        action="store_true",
        help="rewrite the pinned baseline from this run's measurements",
    )
    parser.add_argument(
        "--repin-out",
        help="path for the new baseline (default: overwrite --baseline)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME=FACTOR",
        help="re-pin only if NAME improved by >= FACTOR over the old pin "
        "(repeatable; at least one is mandatory with --repin)",
    )
    parser.add_argument(
        "--note",
        help="replacement note recording why the baseline moved",
    )
    args = parser.parse_args()
    if args.repin and not args.require:
        parser.error(
            "--repin needs at least one --require NAME=FACTOR: a baseline "
            "update must state the improvement that justifies it"
        )

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.micro) as f:
        micro = json.load(f)
    with open(args.e2e) as f:
        e2e = json.load(f)
    with open(args.store) as f:
        store = json.load(f)
    with open(args.persist) as f:
        persist = json.load(f)
    flame = None
    if args.flame:
        with open(args.flame) as f:
            flame = json.load(f)
    health = None
    if args.health:
        with open(args.health) as f:
            health = json.load(f)

    floor = baseline.get("floor_fraction", 0.7)
    current = collect_current(micro, e2e, store, persist, flame, health)

    failures = []
    report = []
    for name, pinned in sorted(baseline["metrics"].items()):
        pinned_rate = pinned["baseline"]
        got = current.get(name)
        if got is None:
            failures.append(f"{name}: no measurement produced")
            continue
        ratio = got / pinned_rate
        status = "ok" if ratio >= floor else "REGRESSION"
        report.append((name, pinned_rate, got, ratio, status))
        if ratio < floor:
            failures.append(
                f"{name}: {got:.3e} is {ratio:.2f}x of the pinned "
                f"{pinned_rate:.3e} (floor {floor:.2f}x)"
            )

    width = max(len(r[0]) for r in report) if report else 0
    for name, pinned_rate, got, ratio, status in report:
        print(
            f"{name:<{width}}  pinned {pinned_rate:>11.3e}/s  "
            f"now {got:>11.3e}/s  {ratio:5.2f}x  {status}"
        )

    artifact = {
        "schema": baseline.get("schema", "blab-bench-core-v1"),
        "floor_fraction": floor,
        "note": baseline.get("note", ""),
        "metrics": {
            name: dict(pinned, current=current.get(name))
            for name, pinned in baseline["metrics"].items()
        },
    }
    with open(args.out, "w") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: all rates >= {floor:.2f}x of baseline")

    if args.repin:
        requirements = [parse_requirement(spec) for spec in args.require]
        new_baseline, repin_failures = repin_baseline(
            baseline, current, requirements, args.note
        )
        if repin_failures:
            print("\nre-pin REFUSED (baseline left untouched):",
                  file=sys.stderr)
            for failure in repin_failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        repin_out = args.repin_out or args.baseline
        with open(repin_out, "w") as f:
            json.dump(new_baseline, f, indent=2)
            f.write("\n")
        print(f"\nre-pinned baseline -> {repin_out}")
        for name, factor in requirements:
            old = baseline["metrics"][name]["baseline"]
            print(
                f"  {name}: {old:.3e} -> {current[name]:.3e} "
                f"({current[name] / old:.2f}x, required {factor:.2f}x)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
