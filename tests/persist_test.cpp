// Durable capture store: CRC32C, WAL framing and torn-tail tolerance,
// segment/manifest formats, the PersistEngine recovery path (WAL replay,
// manifest installs, compaction, retention), and the CaptureStore
// integration (archive-through appends, transparent cold queries).
//
// The exhaustive torn-write sweeps live here rather than in the fuzz lane:
// truncating and byte-flipping a small fixture at *every* offset is cheap
// and pins the "restore or cleanly drop, never wrong data" contract.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hw/power_monitor.hpp"
#include "obs/metrics.hpp"
#include "store/capture_store.hpp"
#include "store/chunked_capture.hpp"
#include "store/persist/crc32c.hpp"
#include "store/persist/engine.hpp"
#include "store/persist/formats.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
namespace persist = blab::store::persist;
using blab::hw::Capture;
using blab::store::CaptureId;
using blab::store::CaptureSource;
using blab::store::CaptureStore;
using blab::store::ChunkedCapture;
using blab::store::RetentionPolicy;
using blab::util::Duration;
using blab::util::TimePoint;

std::vector<float> walk_samples(std::uint64_t seed, std::size_t n) {
  blab::util::Rng rng{seed};
  std::vector<float> samples;
  samples.reserve(n);
  double v = 300.0;
  for (std::size_t i = 0; i < n; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return samples;
}

Capture make_capture(std::uint64_t seed, std::size_t n) {
  return Capture{TimePoint::epoch(), 5000.0, 3.85, walk_samples(seed, n)};
}

std::string capture_bytes(std::uint64_t seed, std::size_t n) {
  return ChunkedCapture::encode(make_capture(seed, n)).serialize();
}

/// Fresh per-test scratch directory (removed by the test on success).
std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "blab-persist-" + tag + "-" +
                          std::to_string(::getpid());
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

std::vector<persist::WalRecord> make_wal_fixture() {
  std::vector<persist::WalRecord> records;
  persist::WalRecord a;
  a.op = persist::WalOp::kAppend;
  a.id = {"vp-oslo", 3};
  a.name = "DEV-1";
  a.stored_at = TimePoint::from_micros(1'500'000);
  a.capture = capture_bytes(11, 120);
  records.push_back(a);
  persist::WalRecord b;
  b.op = persist::WalOp::kDropRaw;
  b.id = {"vp-oslo", 3};
  records.push_back(b);
  persist::WalRecord c;
  c.op = persist::WalOp::kAppend;
  c.id = {"vp-rio", 7};
  c.name = "DEV-2";
  c.stored_at = TimePoint::from_micros(2'750'000);
  c.capture = capture_bytes(12, 64);
  records.push_back(c);
  persist::WalRecord d;
  d.op = persist::WalOp::kErase;
  d.id = {"vp-rio", 2};
  records.push_back(d);
  return records;
}

// ------------------------------------------------------------------------
// CRC32C.
// ------------------------------------------------------------------------

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 appendix B test vector.
  EXPECT_EQ(persist::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(persist::crc32c(""), 0u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(persist::crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, ChainsIncrementally) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto whole = persist::crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const auto first = persist::crc32c(data.substr(0, cut));
    EXPECT_EQ(persist::crc32c(data.substr(cut), first), whole) << cut;
  }
}

// ------------------------------------------------------------------------
// WAL framing: round-trip plus the exhaustive torn-write sweeps.
// ------------------------------------------------------------------------

TEST(WalFormat, RoundTripsEveryOpKind) {
  const auto records = make_wal_fixture();
  std::string image;
  for (const auto& r : records) persist::append_wal_record(image, r);
  const persist::WalReplay replay = persist::parse_wal(image);
  EXPECT_EQ(replay.clean_bytes, image.size());
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(replay.records[i] == records[i]) << "record " << i;
    // capture_offset lets the engine re-read payloads lazily.
    EXPECT_EQ(image.substr(replay.records[i].capture_offset,
                           replay.records[i].capture.size()),
              records[i].capture)
        << "record " << i;
  }
}

TEST(WalFormat, TruncationAtEveryOffsetKeepsAnExactPrefix) {
  const auto records = make_wal_fixture();
  std::string image;
  std::vector<std::size_t> boundaries;  // clean prefix sizes
  for (const auto& r : records) {
    persist::append_wal_record(image, r);
    boundaries.push_back(image.size());
  }
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const persist::WalReplay replay = persist::parse_wal(image.substr(0, cut));
    EXPECT_EQ(replay.clean_bytes + replay.dropped_bytes, cut);
    // The recovered records are exactly those whose frame fits the cut.
    std::size_t expected = 0;
    while (expected < boundaries.size() && boundaries[expected] <= cut) {
      ++expected;
    }
    ASSERT_EQ(replay.records.size(), expected) << "cut " << cut;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_TRUE(replay.records[i] == records[i])
          << "cut " << cut << " record " << i;
    }
  }
}

TEST(WalFormat, ByteFlipAtEveryOffsetNeverYieldsWrongData) {
  const auto records = make_wal_fixture();
  std::string image;
  for (const auto& r : records) persist::append_wal_record(image, r);
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string tampered = image;
    tampered[pos] ^= 0x41;
    const persist::WalReplay replay = persist::parse_wal(tampered);
    EXPECT_EQ(replay.clean_bytes + replay.dropped_bytes, tampered.size());
    // Never aborts, never invents: whatever survives is a byte-exact prefix.
    ASSERT_LE(replay.records.size(), records.size()) << "pos " << pos;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_TRUE(replay.records[i] == records[i])
          << "pos " << pos << " record " << i;
    }
  }
}

// ------------------------------------------------------------------------
// Segment format.
// ------------------------------------------------------------------------

std::vector<persist::SegmentRecord> make_segment_fixture() {
  return {
      {{"vp-oslo", 1}, "DEV-1", TimePoint::from_micros(100), capture_bytes(21, 90)},
      {{"vp-oslo", 4}, "DEV-2", TimePoint::from_micros(200), capture_bytes(22, 30)},
      {{"vp-rio", 2}, "DEV-3", TimePoint::from_micros(300), capture_bytes(23, 150)},
  };
}

TEST(SegmentFormat, BuildParseRoundTripIsCanonical) {
  const auto records = make_segment_fixture();
  const std::string image = persist::build_segment(persist::kTierRaw, records);
  const auto parsed = persist::parse_segment_index(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  EXPECT_EQ(parsed.value().tier, persist::kTierRaw);
  ASSERT_EQ(parsed.value().entries.size(), records.size());
  std::vector<persist::SegmentRecord> rebuilt;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& e = parsed.value().entries[i];
    EXPECT_EQ(e.id, records[i].id);
    EXPECT_EQ(e.name, records[i].name);
    const auto payload = persist::segment_capture_bytes(image, e);
    ASSERT_TRUE(payload.ok()) << payload.error().str();
    EXPECT_EQ(payload.value(), records[i].capture);
    rebuilt.push_back({e.id, e.name, e.stored_at,
                       std::string{payload.value()}});
  }
  EXPECT_EQ(persist::build_segment(parsed.value().tier, rebuilt), image);
}

TEST(SegmentFormat, FooterFlipAtEveryOffsetFailsCleanOrChecksums) {
  // Flip every byte of the index + trailer region (the "footer"): the parse
  // either rejects the image, or the per-entry CRCs still police every
  // payload read — corrupted bytes can never surface as sample data.
  const auto records = make_segment_fixture();
  const std::string image = persist::build_segment(persist::kTierSummary,
                                                   records);
  const auto clean = persist::parse_segment_index(image);
  ASSERT_TRUE(clean.ok());
  const std::size_t footer_begin =
      static_cast<std::size_t>(clean.value().entries.back().offset +
                               clean.value().entries.back().length);
  for (std::size_t pos = footer_begin; pos < image.size(); ++pos) {
    std::string tampered = image;
    tampered[pos] ^= 0x5A;
    const auto parsed = persist::parse_segment_index(tampered);
    if (!parsed.ok()) continue;  // clean rejection
    for (const auto& e : parsed.value().entries) {
      const auto payload = persist::segment_capture_bytes(tampered, e);
      if (payload.ok()) {
        EXPECT_EQ(persist::crc32c(payload.value()), e.crc) << "pos " << pos;
      }
    }
  }
}

TEST(SegmentFormat, PayloadFlipIsCaughtByEntryCrc) {
  const auto records = make_segment_fixture();
  const std::string image = persist::build_segment(persist::kTierRaw, records);
  const auto parsed = persist::parse_segment_index(image);
  ASSERT_TRUE(parsed.ok());
  for (const auto& e : parsed.value().entries) {
    for (std::uint64_t delta = 0; delta < e.length;
         delta += std::max<std::uint64_t>(1, e.length / 7)) {
      std::string tampered = image;
      tampered[e.offset + delta] ^= 0x01;
      // The index itself is untouched, so parsing still succeeds...
      const auto reparsed = persist::parse_segment_index(tampered);
      ASSERT_TRUE(reparsed.ok());
      // ...but the flipped entry's payload read must fail its CRC.
      const auto payload = persist::segment_capture_bytes(tampered, e);
      EXPECT_FALSE(payload.ok()) << e.id.str() << " delta " << delta;
    }
  }
}

TEST(SegmentFormat, RejectsNonDenseTiling) {
  // Hand-build an image with a gap between payloads by lying in the index:
  // easiest route is truncating/permuting a real build — here we just check
  // a segment built from records reparses only as-is, and that inserting a
  // byte into the payload region breaks the tiling checks.
  const auto records = make_segment_fixture();
  std::string image = persist::build_segment(persist::kTierRaw, records);
  image.insert(persist::kSegmentMagic.size() + 1 + 5, 1, '\x00');
  EXPECT_FALSE(persist::parse_segment_index(image).ok());
}

// ------------------------------------------------------------------------
// Manifest format.
// ------------------------------------------------------------------------

TEST(ManifestFormat, RoundTripsAndDetectsCorruption) {
  persist::Manifest manifest;
  manifest.version = 12;
  manifest.next_seq = 99;
  manifest.shards = {
      {{"seg-r-1.blsg", persist::kTierRaw},
       {"seg-s-2.blsg", persist::kTierSummary}},
      {},
      {{"seg-r-3.blsg", persist::kTierRaw}},
  };
  const std::string image = persist::encode_manifest(manifest);
  const auto parsed = persist::parse_manifest(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error().str();
  EXPECT_TRUE(parsed.value() == manifest);
  EXPECT_EQ(persist::encode_manifest(parsed.value()), image);
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string tampered = image;
    tampered[pos] ^= 0x80;
    const auto bad = persist::parse_manifest(tampered);
    // The trailing CRC covers every byte, so any single flip is detected.
    EXPECT_FALSE(bad.ok()) << "pos " << pos;
  }
}

// ------------------------------------------------------------------------
// PersistEngine: recovery, checkpointing, compaction, retention.
// ------------------------------------------------------------------------

TEST(PersistEngine, ShardingIsConsistentAndCovering) {
  const std::string dir = scratch_dir("shard");
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  EXPECT_EQ(engine.shard_count(), 4u);
  std::vector<std::size_t> hits(engine.shard_count(), 0);
  for (int i = 0; i < 64; ++i) {
    const std::string ws = "vp-" + std::to_string(i);
    const std::size_t shard = engine.shard_of(ws);
    ASSERT_LT(shard, engine.shard_count());
    EXPECT_EQ(engine.shard_of(ws), shard) << "unstable hash for " << ws;
    ++hits[shard];
  }
  // The ring must actually spread workspaces around.
  std::size_t used = 0;
  for (const std::size_t h : hits) used += h > 0 ? 1 : 0;
  EXPECT_GE(used, 2u);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, WalOnlyRecoveryRestoresEverything) {
  const std::string dir = scratch_dir("walrec");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(31, 500));
  {
    persist::PersistEngine engine{dir};
    ASSERT_TRUE(engine.open().ok());
    ASSERT_TRUE(engine
                    .append({"vp-a", 1}, "DEV-1",
                            TimePoint::from_micros(1000), cc)
                    .ok());
    ASSERT_TRUE(engine
                    .append({"vp-b", 2}, "DEV-2",
                            TimePoint::from_micros(2000), cc)
                    .ok());
    EXPECT_EQ(engine.stats().wal_appends, 2u);
    // No checkpoint: everything lives in the WALs when the engine dies.
  }
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  EXPECT_EQ(engine.size(), 2u);
  EXPECT_EQ(engine.stats().recovered_records, 2u);
  EXPECT_EQ(engine.next_seq(), 3u);
  ASSERT_TRUE(engine.contains({"vp-a", 1}));
  const auto info = engine.info({"vp-a", 1});
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "DEV-1");
  EXPECT_EQ(info->stored_at.us(), 1000);
  EXPECT_FALSE(info->raw_dropped);
  auto loaded = engine.load({"vp-b", 2});
  ASSERT_TRUE(loaded.ok()) << loaded.error().str();
  EXPECT_EQ(loaded.value().serialize(), cc.serialize());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, CheckpointInstallsManifestAndSurvivesRestart) {
  const std::string dir = scratch_dir("ckpt");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(32, 400));
  {
    persist::PersistEngine engine{dir};
    ASSERT_TRUE(engine.open().ok());
    for (std::uint64_t s = 1; s <= 6; ++s) {
      ASSERT_TRUE(engine
                      .append({"vp-" + std::to_string(s % 3), s}, "DEV",
                              TimePoint::from_micros(1000 * s), cc)
                      .ok());
    }
    ASSERT_TRUE(engine.note_drop_raw({"vp-1", 1}).ok());
    ASSERT_TRUE(engine.checkpoint().ok());
    EXPECT_GE(engine.stats().segment_flushes, 1u);
    EXPECT_GE(engine.stats().checkpoints, 1u);
    // The WALs are truncated: a second checkpoint with nothing pending is
    // a no-op (no new manifest version).
  }
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  EXPECT_EQ(engine.size(), 6u);
  EXPECT_EQ(engine.stats().torn_tail_bytes, 0u);
  EXPECT_EQ(engine.next_seq(), 7u);
  const auto dropped = engine.info({"vp-1", 1});
  ASSERT_TRUE(dropped.has_value());
  EXPECT_TRUE(dropped->raw_dropped);
  auto loaded = engine.load({"vp-1", 1});
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().raw_available());
  auto intact = engine.load({"vp-2", 2});
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ(intact.value().serialize(), cc.serialize());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, CheckpointCausesAreCountedAndLabeled) {
  const std::string dir = scratch_dir("cause");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(60, 200));
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  blab::obs::MetricsRegistry registry;
  engine.attach_metrics(&registry);

  ASSERT_TRUE(engine.append({"vp-a", 1}, "DEV", TimePoint::from_micros(1), cc)
                  .ok());
  ASSERT_TRUE(engine.checkpoint(persist::CheckpointCause::kScheduled).ok());
  ASSERT_TRUE(engine.append({"vp-a", 2}, "DEV", TimePoint::from_micros(2), cc)
                  .ok());
  ASSERT_TRUE(engine.checkpoint().ok());  // default: manual

  const auto& by_cause = engine.stats().checkpoints_by_cause;
  EXPECT_EQ(by_cause[static_cast<std::size_t>(
                persist::CheckpointCause::kScheduled)],
            1u);
  EXPECT_EQ(by_cause[static_cast<std::size_t>(
                persist::CheckpointCause::kManual)],
            1u);
  EXPECT_EQ(engine.stats().checkpoints, 2u);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value_or("blab_persist_checkpoints_total",
                          {{"cause", "scheduled"}}),
            1.0);
  EXPECT_EQ(snap.value_or("blab_persist_checkpoints_total",
                          {{"cause", "manual"}}),
            1.0);
  EXPECT_STREQ(
      persist::checkpoint_cause_name(persist::CheckpointCause::kRetention),
      "retention");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, ScanCatalogVisitsWindowAscendingById) {
  const std::string dir = scratch_dir("scancat");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(61, 100));
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  // Insert out of id order with distinct stored_at stamps.
  ASSERT_TRUE(engine.append({"vp-b", 2}, "DEV",
                            TimePoint::from_micros(2000), cc).ok());
  ASSERT_TRUE(engine.append({"vp-a", 1}, "DEV",
                            TimePoint::from_micros(1000), cc).ok());
  ASSERT_TRUE(engine.append({"vp-c", 3}, "DEV",
                            TimePoint::from_micros(3000), cc).ok());

  std::vector<CaptureId> seen;
  engine.scan_catalog(TimePoint::from_micros(0), TimePoint::max(),
                      [&](const persist::PersistEngine::EntryInfo& e) {
                        seen.push_back(e.id);
                      });
  EXPECT_EQ(seen, (std::vector<CaptureId>{
                      {"vp-a", 1}, {"vp-b", 2}, {"vp-c", 3}}));

  // [t0, t1) half-open window on stored_at.
  seen.clear();
  engine.scan_catalog(TimePoint::from_micros(1000),
                      TimePoint::from_micros(3000),
                      [&](const persist::PersistEngine::EntryInfo& e) {
                        seen.push_back(e.id);
                      });
  EXPECT_EQ(seen, (std::vector<CaptureId>{{"vp-a", 1}, {"vp-b", 2}}));
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, CrashBetweenWalAndCheckpointReplaysIdempotently) {
  const std::string dir = scratch_dir("idem");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(33, 200));
  {
    persist::PersistEngine engine{dir};
    ASSERT_TRUE(engine.open().ok());
    ASSERT_TRUE(engine
                    .append({"vp-x", 1}, "DEV",
                            TimePoint::from_micros(500), cc)
                    .ok());
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  // Simulate "crash between manifest install and WAL truncation": re-append
  // the same record to the WAL behind the engine's back.
  {
    persist::PersistEngine probe{dir};
    ASSERT_TRUE(probe.open().ok());
    const std::size_t shard = probe.shard_of("vp-x");
    char name[32];
    std::snprintf(name, sizeof name, "shard-%03zu", shard);
    persist::WalRecord dup;
    dup.op = persist::WalOp::kAppend;
    dup.id = {"vp-x", 1};
    dup.name = "DEV";
    dup.stored_at = TimePoint::from_micros(500);
    dup.capture = cc.serialize();
    std::string frame;
    persist::append_wal_record(frame, dup);
    std::ofstream out{fs::path{dir} / name / "wal.log",
                      std::ios::binary | std::ios::app};
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  EXPECT_EQ(engine.size(), 1u);  // the duplicate replay was a no-op
  auto loaded = engine.load({"vp-x", 1});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().serialize(), cc.serialize());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, CorruptSegmentTrailerDropsOnlyThatSegment) {
  const std::string dir = scratch_dir("seggone");
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(34, 100));
  std::string victim_ws;
  {
    persist::PersistEngine engine{dir};
    ASSERT_TRUE(engine.open().ok());
    // Two workspaces on different shards, so they land in different files.
    victim_ws = "vp-a";
    std::string other = "vp-b";
    for (int i = 0; engine.shard_of(other) == engine.shard_of(victim_ws);
         ++i) {
      other = "vp-" + std::to_string(i);
    }
    ASSERT_TRUE(engine
                    .append({victim_ws, 1}, "DEV",
                            TimePoint::from_micros(100), cc)
                    .ok());
    ASSERT_TRUE(engine
                    .append({other, 2}, "DEV", TimePoint::from_micros(200),
                            cc)
                    .ok());
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  // Smash the victim shard's segment trailer.
  {
    persist::PersistEngine probe{dir};
    ASSERT_TRUE(probe.open().ok());
    char name[32];
    std::snprintf(name, sizeof name, "shard-%03zu",
                  probe.shard_of(victim_ws));
    for (const auto& entry :
         fs::directory_iterator(fs::path{dir} / name)) {
      if (entry.path().extension() != ".blsg") continue;
      std::fstream f{entry.path(),
                     std::ios::binary | std::ios::in | std::ios::out};
      f.seekp(-4, std::ios::end);
      f.write("XXXX", 4);
    }
  }
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());  // recovery proceeds, with a loss report
  EXPECT_EQ(engine.stats().segments_dropped, 1u);
  EXPECT_FALSE(engine.contains({victim_ws, 1}));
  EXPECT_EQ(engine.size(), 1u);  // the other shard's record is untouched
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistEngine, RetentionDemotesThenErasesAndReclaimsBytes) {
  const std::string dir = scratch_dir("ttl");
  RetentionPolicy policy;
  policy.raw_ttl = Duration::minutes(30);
  policy.summary_ttl = Duration::minutes(240);
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(35, 2000));
  ASSERT_TRUE(
      engine.append({"vp-old", 1}, "DEV", TimePoint::epoch(), cc).ok());
  ASSERT_TRUE(engine
                  .append({"vp-new", 2}, "DEV",
                          TimePoint::epoch() + Duration::minutes(200), cc)
                  .ok());
  ASSERT_TRUE(engine.checkpoint().ok());
  const std::uint64_t before = engine.disk_usage_bytes();

  // vp-old is 210 minutes past its raw TTL; vp-new is only 10 minutes old.
  const TimePoint t1 = TimePoint::epoch() + Duration::minutes(210);
  const std::uint64_t reclaimed1 = engine.run_retention(t1, policy);
  EXPECT_GT(reclaimed1, 0u);
  EXPECT_LT(engine.disk_usage_bytes(), before);
  ASSERT_TRUE(engine.contains({"vp-old", 1}));
  auto demoted = engine.load({"vp-old", 1});
  ASSERT_TRUE(demoted.ok());
  EXPECT_FALSE(demoted.value().raw_available());
  auto fresh = engine.load({"vp-new", 2});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh.value().raw_available());

  // Past the summary TTL: vp-old disappears entirely.
  const TimePoint t2 = TimePoint::epoch() + Duration::minutes(241);
  (void)engine.run_retention(t2, policy);
  EXPECT_FALSE(engine.contains({"vp-old", 1}));
  EXPECT_TRUE(engine.contains({"vp-new", 2}));
  EXPECT_GE(engine.stats().retention_bytes_reclaimed, reclaimed1);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ------------------------------------------------------------------------
// CaptureStore integration: archive-through, cold queries, source_of.
// ------------------------------------------------------------------------

TEST(PersistentStore, ColdQueriesAnswerIdenticallyAfterRestart) {
  const std::string dir = scratch_dir("cold");
  const Capture original = make_capture(41, 1200);
  std::string warm_answers;
  CaptureId id;
  {
    persist::PersistEngine engine{dir};
    ASSERT_TRUE(engine.open().ok());
    CaptureStore store;
    store.attach_persistence(&engine);
    id = store.append("vp-q", "DEV-9", original, TimePoint::epoch());
    auto range = store.range(id, TimePoint::epoch(), TimePoint::max());
    ASSERT_TRUE(range.ok());
    ASSERT_EQ(range.value().sample_count(), original.sample_count());
    auto mean = store.mean_ma(id);
    auto energy = store.energy_mwh(id);
    ASSERT_TRUE(mean.ok());
    ASSERT_TRUE(energy.ok());
    warm_answers = std::to_string(mean.value()) + "|" +
                   std::to_string(energy.value());
    auto src = store.source_of(id);
    ASSERT_TRUE(src.ok());
    EXPECT_EQ(src.value(), CaptureSource::kMemory);
  }
  // Restart: a fresh engine + store on the same directory. The record is
  // cold (disk-only) until a query warms it.
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  CaptureStore store;
  store.attach_persistence(&engine);
  EXPECT_TRUE(store.contains(id));
  EXPECT_EQ(store.find(id), nullptr);  // warm lookup misses
  auto src = store.source_of(id);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src.value(), CaptureSource::kDisk);
  ASSERT_EQ(store.list("vp-q").size(), 1u);
  EXPECT_EQ(store.workspaces(), std::vector<std::string>{"vp-q"});
  EXPECT_EQ(store.name_of(id).value_or(""), "DEV-9");

  auto range = store.range(id, TimePoint::epoch(), TimePoint::max());
  ASSERT_TRUE(range.ok()) << range.error().str();
  EXPECT_EQ(range.value().samples_ma(), original.samples_ma());
  auto mean = store.mean_ma(id);
  auto energy = store.energy_mwh(id);
  ASSERT_TRUE(mean.ok());
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ(std::to_string(mean.value()) + "|" +
                std::to_string(energy.value()),
            warm_answers);
  EXPECT_EQ(store.stats().disk_loads, 1u);  // one cold load served them all
  // Warmed now: the record is resident again.
  auto src2 = store.source_of(id);
  ASSERT_TRUE(src2.ok());
  EXPECT_EQ(src2.value(), CaptureSource::kMemory);
  // And the sequence counter resumed past the persisted record.
  const CaptureId id2 =
      store.append("vp-q", "DEV-9", make_capture(42, 10), TimePoint::epoch());
  EXPECT_GT(id2.seq, id.seq);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(PersistentStore, SourceOfReportsTierAfterRawDrop) {
  const std::string dir = scratch_dir("tier");
  persist::PersistEngine engine{dir};
  ASSERT_TRUE(engine.open().ok());
  CaptureStore store;
  store.attach_persistence(&engine);
  const CaptureId id =
      store.append("vp-t", "DEV", make_capture(43, 300), TimePoint::epoch());
  ASSERT_EQ(store.drop_workspace_raw("vp-t"), 1u);
  auto src = store.source_of(id);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src.value(), CaptureSource::kTier);
  EXPECT_STREQ(blab::store::capture_source_name(src.value()), "tier");
  // The purge was journaled: a restart still has no raw tier.
  persist::PersistEngine engine2{dir};
  ASSERT_TRUE(engine2.open().ok());
  auto loaded = engine2.load(id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().raw_available());
  EXPECT_FALSE(store.source_of({"vp-t", 999}).ok());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
